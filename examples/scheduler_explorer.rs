//! Explore the whole scheduling design space on one game: every quad
//! grouping × tile order × assignment mode, reporting L2 accesses, load
//! balance and FPS under both barrier modes.
//!
//! ```text
//! cargo run --release --example scheduler_explorer [game-alias]
//! ```

use dtexl::CLOCK_HZ;
use dtexl_pipeline::{BarrierMode, FrameSim, PipelineConfig};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::{AssignMode, QuadGrouping, ScheduleConfig, TileOrder};

const W: u32 = 980;
const H: u32 = 384;

fn main() {
    let alias = std::env::args().nth(1).unwrap_or_else(|| "TRu".into());
    let game = Game::ALL
        .into_iter()
        .find(|g| g.alias().eq_ignore_ascii_case(&alias))
        .unwrap_or(Game::TempleRun);
    let scene = game.scene(&SceneSpec::new(W, H, 0));
    let config = PipelineConfig::default();

    println!(
        "Scheduler design space for {} at {W}x{H} (half resolution)\n",
        game.alias()
    );
    println!(
        "{:38} {:>10} {:>8} {:>9} {:>9}",
        "schedule", "L2 acc", "dev %", "fps(cpl)", "fps(dec)"
    );

    let orders = [
        TileOrder::Scanline,
        TileOrder::SOrder,
        TileOrder::ZOrder,
        TileOrder::HILBERT8,
        TileOrder::Spiral,
    ];
    let modes = [AssignMode::Const, AssignMode::Flip1, AssignMode::Flip2];
    let groupings = [
        QuadGrouping::FgXShift2,
        QuadGrouping::CgYRect,
        QuadGrouping::CgSquare,
    ];

    let mut best: Option<(String, f64)> = None;
    for grouping in groupings {
        for order in orders {
            for assignment in modes {
                let sched = ScheduleConfig {
                    grouping,
                    order,
                    assignment,
                };
                let r = FrameSim::run_with_resolution(&scene, &sched, &config, W, H);
                let fps_c = CLOCK_HZ / r.total_cycles(BarrierMode::Coupled) as f64;
                let fps_d = CLOCK_HZ / r.total_cycles(BarrierMode::Decoupled) as f64;
                println!(
                    "{:38} {:>10} {:>8.1} {:>9.1} {:>9.1}",
                    sched.label(),
                    r.total_l2_accesses(),
                    r.mean_quad_deviation(),
                    fps_c,
                    fps_d,
                );
                if best.as_ref().is_none_or(|(_, f)| fps_d > *f) {
                    best = Some((sched.label(), fps_d));
                }
            }
        }
        println!();
    }
    if let Some((label, fps)) = best {
        println!("Best decoupled configuration: {label} at {fps:.1} fps");
    }
}
