//! Characterize all ten Table I workloads and their DTexL outcomes.
//!
//! ```text
//! cargo run --release --example game_showcase
//! ```

use dtexl::{SimConfig, Simulator};
use dtexl_scene::{Game, SceneSpec};

fn main() {
    println!(
        "{:5} {:>9} {:>7} {:>8} {:>8} {:>10} {:>9} {:>9} {:>8}",
        "game", "foot MiB", "draws", "tris", "quads", "L2 base", "fps base", "fps DTexL", "speedup"
    );
    for game in Game::ALL {
        let scene = game.scene(&SceneSpec::table2(0));
        let base = Simulator::simulate(&SimConfig::baseline(game));
        let dtexl = Simulator::simulate(&SimConfig::dtexl(game));
        println!(
            "{:5} {:>9.2} {:>7} {:>8} {:>8} {:>10} {:>9.1} {:>9.1} {:>7.3}x",
            game.alias(),
            scene.texture_footprint_bytes() as f64 / (1024.0 * 1024.0),
            scene.draws.len(),
            scene.triangle_count(),
            base.quads_shaded,
            base.l2_accesses,
            base.fps,
            dtexl.fps,
            base.cycles as f64 / dtexl.cycles as f64,
        );
    }
    println!("\n(Table II resolution 1960x768; 'foot' targets Table I's texture footprints.)");
}
