//! Multi-frame simulation: average DTexL's gains over an animated
//! gameplay sequence, the way the paper's FPS numbers average over
//! real gameplay.
//!
//! ```text
//! cargo run --release --example animated_sequence [game-alias] [frames]
//! ```

use dtexl::{SimConfig, Simulator};
use dtexl_scene::Game;

fn main() {
    let alias = std::env::args().nth(1).unwrap_or_else(|| "SoD".into());
    let frames: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let game = Game::ALL
        .into_iter()
        .find(|g| g.alias().eq_ignore_ascii_case(&alias))
        .unwrap_or(Game::SonicDash);

    // Half resolution keeps an 8-frame sequence around a second.
    let base_cfg = SimConfig::baseline(game).with_resolution(980, 384);
    let dtexl_cfg = SimConfig::dtexl(game).with_resolution(980, 384);

    println!("Simulating {frames} frames of {}…\n", game.alias());
    let base = Simulator::simulate_sequence(&base_cfg, frames);
    let dtexl = Simulator::simulate_sequence(&dtexl_cfg, frames);

    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "frame", "base cyc", "DTexL cyc", "speedup"
    );
    for f in 0..base.frames() {
        println!(
            "{:>6} {:>12} {:>12} {:>8.3}x",
            f,
            base.cycles[f],
            dtexl.cycles[f],
            base.cycles[f] as f64 / dtexl.cycles[f] as f64
        );
    }
    println!(
        "\nsequence: {:.1} → {:.1} fps ({:.3}x), energy {:.3} → {:.3} mJ (−{:.1}%)",
        base.mean_fps(),
        dtexl.mean_fps(),
        dtexl.mean_fps() / base.mean_fps(),
        base.total_energy_mj(),
        dtexl.total_energy_mj(),
        100.0 * (1.0 - dtexl.total_energy_mj() / base.total_energy_mj()),
    );
}
