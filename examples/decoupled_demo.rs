//! Visualize what barrier decoupling does: per-tile fragment-stage
//! durations per shader core, and how the coupled vs decoupled
//! compositions differ on the same functional run.
//!
//! ```text
//! cargo run --release --example decoupled_demo
//! ```

use dtexl::report::tile_imbalance_heatmap;
use dtexl_pipeline::{compose_frame, BarrierMode, FrameSim, PipelineConfig};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::ScheduleConfig;

fn main() {
    let (w, h) = (512u32, 256u32);
    let scene = Game::TempleRun.scene(&SceneSpec::new(w, h, 0));
    let cfg = PipelineConfig::default();
    let r = FrameSim::run_with_resolution(&scene, &ScheduleConfig::dtexl(), &cfg, w, h);

    println!("{}", tile_imbalance_heatmap(&r));

    println!("Per-tile fragment durations (cycles) per SC, DTexL schedule, TRu {w}x{h}:\n");
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "tile", "SC0", "SC1", "SC2", "SC3", "max/avg"
    );
    let mut shown = 0;
    for (i, t) in r.tiles.iter().enumerate() {
        let c = t.frag_cycles;
        let max = *c.iter().max().unwrap() as f64;
        let avg = c.iter().sum::<u64>() as f64 / 4.0;
        if avg > 0.0 && shown < 16 {
            println!(
                "{:>5} {:>9} {:>9} {:>9} {:>9} {:>9.2}",
                i,
                c[0],
                c[1],
                c[2],
                c[3],
                max / avg
            );
            shown += 1;
        }
    }

    let coupled = compose_frame(&r.durations, BarrierMode::Coupled);
    let decoupled = compose_frame(&r.durations, BarrierMode::Decoupled);
    println!("\nRaster-phase composition of the SAME functional run:");
    println!("  coupled barriers   : {coupled:>12} cycles");
    println!("  decoupled barriers : {decoupled:>12} cycles");
    println!(
        "  decoupling recovers {:.1}% of the frame time",
        100.0 * (1.0 - decoupled as f64 / coupled as f64)
    );
    println!(
        "\nWhy: with per-tile barriers every stage waits for its slowest unit\n\
         each tile (the 'max/avg' column above); decoupling lets each unit\n\
         chain its own subtiles, amortizing the imbalance across the frame."
    );
}
