//! Render a game frame to a PPM image and verify that the output is
//! identical under the baseline scheduler and under DTexL — the
//! paper's correctness requirement made visible.
//!
//! ```text
//! cargo run --release --example render_frame [game-alias] [out.ppm]
//! ```

use dtexl_pipeline::{PipelineConfig, Renderer};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::ScheduleConfig;
use std::fs::File;
use std::io::BufWriter;

fn main() -> std::io::Result<()> {
    let alias = std::env::args().nth(1).unwrap_or_else(|| "SoD".into());
    let out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "frame.ppm".into());
    let game = Game::ALL
        .into_iter()
        .find(|g| g.alias().eq_ignore_ascii_case(&alias))
        .unwrap_or(Game::SonicDash);

    let (w, h) = (980u32, 384u32);
    let scene = game.scene(&SceneSpec::new(w, h, 0));
    let cfg = PipelineConfig::default();

    println!("Rendering {} at {w}x{h}…", game.alias());
    let base = Renderer::render(&scene, &ScheduleConfig::baseline(), &cfg, w, h);
    let dtexl = Renderer::render(&scene, &ScheduleConfig::dtexl(), &cfg, w, h);

    println!("baseline image digest: {:016x}", base.digest());
    println!("DTexL    image digest: {:016x}", dtexl.digest());
    assert_eq!(
        base.digest(),
        dtexl.digest(),
        "scheduling must never change the rendered image"
    );
    println!("✔ identical output under both schedulers");

    base.write_ppm(BufWriter::new(File::create(&out_path)?))?;
    println!("wrote {out_path}");
    Ok(())
}
