//! Quickstart: simulate one game under the baseline scheduler and under
//! DTexL, and compare the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart [game-alias]
//! ```

use dtexl::{SimConfig, Simulator};
use dtexl_pipeline::BarrierMode;
use dtexl_scene::Game;

fn main() {
    let alias = std::env::args().nth(1).unwrap_or_else(|| "GTr".into());
    let game = Game::ALL
        .into_iter()
        .find(|g| g.alias().eq_ignore_ascii_case(&alias))
        .unwrap_or_else(|| {
            eprintln!(
                "unknown game '{alias}', using GTr; known: CCS SoD TRu SWa CRa RoK DDS Snp Mze GTr"
            );
            Game::GravityTetris
        });

    println!("Simulating {} ({})\n", game.info().title, game.alias());

    let base = Simulator::simulate(&SimConfig::baseline(game));
    let dtexl = Simulator::simulate(&SimConfig::dtexl(game));

    println!("{:28} {:>14} {:>14}", "", "baseline", "DTexL");
    println!(
        "{:28} {:>14} {:>14}",
        "scheduler",
        base.config.schedule.label(),
        dtexl.config.schedule.label()
    );
    println!(
        "{:28} {:>14?} {:>14?}",
        "barriers", base.config.barrier, dtexl.config.barrier
    );
    println!("{:28} {:>14} {:>14}", "cycles", base.cycles, dtexl.cycles);
    println!(
        "{:28} {:>14.2} {:>14.2}",
        "frames per second", base.fps, dtexl.fps
    );
    println!(
        "{:28} {:>14} {:>14}",
        "L2 accesses", base.l2_accesses, dtexl.l2_accesses
    );
    println!(
        "{:28} {:>14.3} {:>14.3}",
        "energy (mJ)",
        base.energy.total_mj(),
        dtexl.energy.total_mj()
    );

    println!();
    println!(
        "DTexL speedup:        {:.3}x",
        base.cycles as f64 / dtexl.cycles as f64
    );
    println!(
        "L2 access decrease:   {:.1}%",
        100.0 * (1.0 - dtexl.l2_accesses as f64 / base.l2_accesses as f64)
    );
    println!(
        "Energy decrease:      {:.1}%",
        100.0 * (1.0 - dtexl.energy.total_pj() / base.energy.total_pj())
    );
    println!(
        "Decoupling alone:     {:.3}x",
        base.cycles as f64 / base.frame.total_cycles(BarrierMode::Decoupled) as f64
    );
}
