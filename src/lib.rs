//! Workspace root package for the DTexL reproduction.
//!
//! This crate only exists to host the repository-level `examples/` and
//! `tests/` directories; it re-exports the member crates for convenience.
//!
//! See the [`dtexl`] crate for the simulator's public API.

pub use dtexl;
pub use dtexl_gmath as gmath;
pub use dtexl_mem as mem;
pub use dtexl_pipeline as pipeline;
pub use dtexl_scene as scene;
pub use dtexl_sched as sched;
pub use dtexl_texture as texture;
