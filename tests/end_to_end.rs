//! Cross-crate integration tests: scene generation → geometry → tiling
//! → raster → shading → metrics, exercised end to end.

use dtexl::{SimConfig, Simulator};
use dtexl_pipeline::{BarrierMode, FrameSim, PipelineConfig};
use dtexl_scene::{Game, Scene, SceneSpec};
use dtexl_sched::{NamedMapping, ScheduleConfig};

const W: u32 = 384;
const H: u32 = 192;

fn sim(game: Game, sched: &ScheduleConfig) -> dtexl_pipeline::FrameResult {
    let scene = game.scene(&SceneSpec::new(W, H, 0));
    FrameSim::run_with_resolution(&scene, sched, &PipelineConfig::default(), W, H)
}

#[test]
fn every_game_runs_under_every_named_mapping() {
    for game in Game::ALL {
        for mapping in NamedMapping::FIG16 {
            let r = sim(game, &mapping.config());
            assert!(
                r.total_quads_shaded() > 0,
                "{} under {} shaded nothing",
                game.alias(),
                mapping.name()
            );
            assert!(r.total_cycles(BarrierMode::Coupled) > 0);
        }
    }
}

#[test]
fn quad_conservation_across_stages() {
    for game in [Game::CandyCrush, Game::SonicDash, Game::Maze] {
        let r = sim(game, &ScheduleConfig::baseline());
        let rasterized: u64 = r
            .tiles
            .iter()
            .map(|t| {
                t.quads_rasterized
                    .iter()
                    .map(|&q| u64::from(q))
                    .sum::<u64>()
            })
            .sum();
        let shaded = r.total_quads_shaded();
        assert!(shaded <= rasterized, "{}", game.alias());
        assert!(shaded > 0);
        // Shader stats agree with per-tile records.
        assert_eq!(r.shader.quads, shaded, "{}", game.alias());
    }
}

#[test]
fn l2_flow_conservation() {
    let r = sim(Game::Sniper3d, &ScheduleConfig::dtexl());
    let h = &r.hierarchy;
    assert_eq!(h.l1_misses(), h.l2.accesses);
    assert_eq!(h.l2.misses, h.dram_accesses);
    assert!(r.total_l2_accesses() >= h.l2.accesses);
}

#[test]
fn frame_time_composition_is_order_sound() {
    // The frame can never be faster than its slowest single component.
    let r = sim(Game::CityRacing, &ScheduleConfig::baseline());
    let frag_per_unit: [u64; 4] = {
        let mut acc = [0u64; 4];
        for d in &r.durations.fragment {
            for u in 0..4 {
                acc[u] += d[u];
            }
        }
        acc
    };
    let lower_bound = *frag_per_unit.iter().max().unwrap();
    for mode in [BarrierMode::Coupled, BarrierMode::Decoupled] {
        assert!(
            r.total_cycles(mode) >= lower_bound,
            "{mode:?}: {} < fragment lower bound {lower_bound}",
            r.total_cycles(mode)
        );
    }
}

#[test]
fn simulator_facade_matches_manual_pipeline() {
    let cfg = SimConfig::baseline(Game::GravityTetris).with_resolution(W, H);
    let report = Simulator::simulate(&cfg);
    let manual = sim(Game::GravityTetris, &ScheduleConfig::baseline());
    assert_eq!(report.cycles, manual.total_cycles(BarrierMode::Coupled));
    assert_eq!(report.l2_accesses, manual.total_l2_accesses());
}

#[test]
fn animation_changes_work_but_not_structure() {
    let f0 = Game::SonicDash.scene(&SceneSpec::new(W, H, 0));
    let f9 = Game::SonicDash.scene(&SceneSpec::new(W, H, 9));
    assert_eq!(f0.textures.len(), f9.textures.len(), "same assets");
    assert_ne!(f0, f9, "camera moved");
    let r0 = FrameSim::run_with_resolution(
        &f0,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        W,
        H,
    );
    let r9 = FrameSim::run_with_resolution(
        &f9,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        W,
        H,
    );
    assert_ne!(
        r0.total_cycles(BarrierMode::Coupled),
        r9.total_cycles(BarrierMode::Coupled),
        "different frames take different time"
    );
}

#[test]
fn empty_scene_is_handled() {
    let scene = Scene::default();
    let r = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    );
    assert_eq!(r.total_quads_shaded(), 0);
    assert_eq!(r.hierarchy.l2.accesses, 0);
    // Fixed per-tile costs (fetch, flush) still accrue.
    assert!(r.total_cycles(BarrierMode::Coupled) > 0);
}

#[test]
fn upper_bound_mode_end_to_end() {
    let scene = Game::RiseOfKingdoms.scene(&SceneSpec::new(W, H, 0));
    let cfg = PipelineConfig {
        upper_bound: true,
        ..PipelineConfig::default()
    };
    let ub = FrameSim::run_with_resolution(&scene, &ScheduleConfig::baseline(), &cfg, W, H);
    let split = sim(Game::RiseOfKingdoms, &ScheduleConfig::baseline());
    assert!(ub.hierarchy.l2.accesses < split.hierarchy.l2.accesses);
    assert_eq!(
        ub.total_quads_shaded(),
        split.total_quads_shaded(),
        "same functional work"
    );
}

#[test]
fn barrier_modes_share_functional_results() {
    let r = sim(Game::DerbyDestruction, &ScheduleConfig::dtexl());
    // One functional pass serves both compositions, so all functional
    // metrics are identical by construction; the test guards that the
    // API keeps it that way.
    let coupled = r.total_cycles(BarrierMode::Coupled);
    let decoupled = r.total_cycles(BarrierMode::Decoupled);
    assert!(decoupled <= coupled);
    assert_eq!(
        r.energy_events(BarrierMode::Coupled).l2_accesses,
        r.energy_events(BarrierMode::Decoupled).l2_accesses
    );
}
