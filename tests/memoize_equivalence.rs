//! Memoized vs fresh simulation equivalence.
//!
//! `SweepJob::simulate_with(Some(cache))` reuses one schedule-
//! independent [`FramePrefix`] across every leg that shares a
//! `prefix_key`; `simulate_with(None)` (== `simulate()`) recomputes
//! the whole frame from scratch. These tests pin the tentpole
//! guarantee: the two paths are **bit-identical** on every reported
//! metric — across both schedules, ragged resolutions, thread counts
//! and active fault plans — and that the cache key separates exactly
//! the configurations whose prefixes may not be shared.

use dtexl::sweep::{PrefixCache, SweepJob};
use dtexl_pipeline::{BarrierMode, FaultPlan, LaneStall, PipelineConfig};
use dtexl_scene::Game;
use dtexl_sched::ScheduleConfig;

/// Ragged resolutions (partial edge tiles in both axes) plus one
/// tile-aligned shape.
const RESOLUTIONS: [(u32, u32); 3] = [(100, 50), (65, 31), (96, 64)];

fn job(game: Game, schedule: ScheduleConfig, w: u32, h: u32) -> SweepJob {
    SweepJob::new(game, schedule, false, w, h, 0)
}

/// Assert every metric the sweep reports (and some it doesn't) agrees
/// between a fresh run and a cache-mediated run of `job`.
fn assert_equivalent(job: &SweepJob, cache: &PrefixCache) {
    let fresh = job.simulate_with(None).expect("fresh run");
    let memo = job.simulate_with(Some(cache)).expect("memoized run");
    let ctx = job.key();
    for mode in [
        BarrierMode::Coupled,
        BarrierMode::Decoupled,
        BarrierMode::DecoupledBounded { tiles_ahead: 2 },
    ] {
        assert_eq!(
            fresh.total_cycles(mode),
            memo.total_cycles(mode),
            "cycles diverge under {mode:?}: {ctx}"
        );
        assert_eq!(
            fresh.energy_events(mode),
            memo.energy_events(mode),
            "energy events diverge under {mode:?}: {ctx}"
        );
    }
    assert_eq!(
        fresh.total_l2_accesses(),
        memo.total_l2_accesses(),
        "L2: {ctx}"
    );
    assert_eq!(fresh.hierarchy, memo.hierarchy, "hierarchy stats: {ctx}");
}

#[test]
fn memoized_matches_fresh_across_schedules_and_resolutions() {
    for game in [Game::CandyCrush, Game::GravityTetris, Game::Maze] {
        for (w, h) in RESOLUTIONS {
            // One cache per (game, resolution): the FG and CG legs
            // share its single prefix entry, exactly as a sweep does.
            let cache = PrefixCache::new(None);
            for schedule in [ScheduleConfig::baseline(), ScheduleConfig::dtexl()] {
                assert_equivalent(&job(game, schedule, w, h), &cache);
            }
            let stats = cache.stats();
            assert_eq!(stats.misses, 1, "legs must share one prefix: {game:?}");
            assert!(stats.hits >= 1, "second leg must hit: {game:?}");
        }
    }
}

#[test]
fn memoized_matches_fresh_across_thread_counts() {
    // Thread count is normalized out of the prefix key: a serial and a
    // 4-thread job share the cache entry, and both match their fresh
    // runs (which exercise the threaded lane path independently).
    let cache = PrefixCache::new(None);
    for threads in [1, 4] {
        for schedule in [ScheduleConfig::baseline(), ScheduleConfig::dtexl()] {
            let mut j = job(Game::CandyCrush, schedule, 100, 50);
            j.pipeline = PipelineConfig {
                threads,
                ..j.pipeline
            };
            assert_equivalent(&j, &cache);
        }
    }
    assert_eq!(
        cache.stats().misses,
        1,
        "threads {{1,4}} × both schedules must share one prefix"
    );
}

#[test]
fn memoized_matches_fresh_with_active_fault_plan() {
    let fault = FaultPlan {
        seed: 7,
        lane_stall: Some(LaneStall {
            lane: 2,
            cycles: 5_000,
        }),
        ..FaultPlan::default()
    };
    let cache = PrefixCache::new(None);
    for schedule in [ScheduleConfig::baseline(), ScheduleConfig::dtexl()] {
        let mut j = job(Game::TempleRun, schedule, 100, 50);
        j.pipeline = PipelineConfig {
            fault,
            ..j.pipeline
        };
        assert_equivalent(&j, &cache);
    }
}

#[test]
fn fault_plans_key_separately() {
    // The fault plan is part of the prefix key: a faulty job must never
    // reuse (or poison) the pristine job's cache entry.
    let clean = job(Game::TempleRun, ScheduleConfig::dtexl(), 100, 50);
    let mut faulty = clean;
    faulty.pipeline.fault = FaultPlan {
        seed: 9,
        lane_stall: Some(LaneStall {
            lane: 1,
            cycles: 1_000,
        }),
        ..FaultPlan::default()
    };
    assert_ne!(
        clean.prefix_key(),
        faulty.prefix_key(),
        "fault plan must be keyed into the prefix hash"
    );

    // Different resolutions and games separate too; schedules must NOT.
    let mut other_res = clean;
    other_res.width = 65;
    other_res.height = 31;
    assert_ne!(clean.prefix_key(), other_res.prefix_key());
    let mut other_game = clean;
    other_game.game = Game::Maze;
    assert_ne!(clean.prefix_key(), other_game.prefix_key());
    let mut other_sched = clean;
    other_sched.schedule = ScheduleConfig::baseline();
    assert_eq!(
        clean.prefix_key(),
        other_sched.prefix_key(),
        "the prefix is schedule-independent by design"
    );
}

#[test]
fn tiny_budget_rejects_insertion_but_stays_correct() {
    // A cache whose budget can't hold even one prefix must simply keep
    // simulating fresh — never evict-thrash, never corrupt results.
    let cache = PrefixCache::new(Some(1024));
    for _ in 0..2 {
        assert_equivalent(
            &job(Game::GravityTetris, ScheduleConfig::dtexl(), 100, 50),
            &cache,
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.hits, 0, "nothing can fit, so nothing can hit");
    assert_eq!(stats.bytes, 0, "over-budget prefixes are dropped");
    assert!(
        stats.rejected >= 1,
        "insertion must be rejected, not evict-thrash"
    );
}
