//! End-to-end resilience of the `sweep dispatch` fleet supervisor
//! (`dtexl::dispatch`), driving the real `dtexl` binary as shard
//! children:
//!
//! * kill -9 one shard mid-sweep → the supervisor restarts it from
//!   its journal and the merged result canonicalizes bit-identically
//!   to a clean unsharded run;
//! * wedge one shard (a fault-plan wall stall with heartbeats off) →
//!   the supervisor detects the silence, kills and restarts the
//!   shard, and after the poison threshold quarantines the job as a
//!   typed `poisoned` journal record while every other job completes.

use dtexl::dispatch::{dispatch_fleet, DeathCause, DispatchOptions, FleetSpec, ShardOutcome};
use dtexl::sweep::{latest_entries, shard_of, SweepJob};
use dtexl_scene::Game;
use dtexl_sched::ScheduleConfig;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const W: u32 = 192;
const H: u32 = 96;
const GAMES_CSV: &str = "CCS,GTr,TRu";
const SCHEDULES_CSV: &str = "baseline,dtexl";

/// The `dtexl` binary, resolved from the test executable's location
/// (`target/<profile>/deps/<test>` → `target/<profile>/dtexl`). The
/// root test package does not depend on the CLI crate, so there is no
/// `CARGO_BIN_EXE_dtexl`; the workspace build produces the binary
/// before any test runs.
fn dtexl_bin() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join("dtexl");
    assert!(
        bin.exists(),
        "dtexl binary not found at {} (build the workspace first)",
        bin.display()
    );
    bin
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtexl_dispatch_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The job list both the supervisor and the children build from the
/// same axes, with the stall hook applied exactly as the CLI does.
fn jobs_with_stall(stall_key: Option<&str>, stall_ms: u64) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    for game in [Game::CandyCrush, Game::GravityTetris, Game::TempleRun] {
        for schedule in [ScheduleConfig::baseline(), ScheduleConfig::dtexl()] {
            let mut job = SweepJob::new(game, schedule, false, W, H, 0);
            if let Some(pat) = stall_key {
                if job.key().contains(pat) {
                    job.pipeline.fault.wall_stall_ms = stall_ms;
                }
            }
            jobs.push(job);
        }
    }
    jobs
}

/// The forwarded child sweep arguments matching [`jobs_with_stall`].
fn sweep_args(heartbeat_ms: u64, stall_key: Option<&str>, stall_ms: u64) -> Vec<String> {
    let mut args: Vec<String> = [
        "sweep",
        "--games",
        GAMES_CSV,
        "--schedules",
        SCHEDULES_CSV,
        "--res",
        "192x96",
        "--threads",
        "1",
        "--keep-going",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    args.push("--heartbeat-ms".into());
    args.push(heartbeat_ms.to_string());
    if let Some(key) = stall_key {
        args.push("--stall-key".into());
        args.push(key.into());
        args.push("--stall-ms".into());
        args.push(stall_ms.to_string());
    }
    args
}

/// Run a clean, unsharded `dtexl sweep` into `journal` with the same
/// axes (and stall hook, so config hashes line up).
fn clean_sweep(journal: &PathBuf, stall_key: Option<&str>, stall_ms: u64) {
    let mut cmd = Command::new(dtexl_bin());
    cmd.args(sweep_args(1_000, stall_key, stall_ms))
        .arg("--journal")
        .arg(journal);
    let out = cmd.output().expect("run clean sweep");
    assert!(
        out.status.success(),
        "clean sweep failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// `dtexl sweep canon <journal>` — the volatile-field-free canonical
/// form CI diffs on.
fn canon(journal: &PathBuf) -> String {
    let out = Command::new(dtexl_bin())
        .arg("sweep")
        .arg("canon")
        .arg(journal)
        .output()
        .expect("run sweep canon");
    assert!(
        out.status.success(),
        "canon failed on {}",
        journal.display()
    );
    String::from_utf8(out.stdout).expect("canon output is utf-8")
}

fn kill9(pid: u32) {
    let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
}

/// Extract `pid` from a `dispatch: shard i/N pid P spawned …` line.
fn spawned_pid(line: &str, shard_index: u32) -> Option<u32> {
    let rest = line.strip_prefix(&format!("dispatch: shard {shard_index}/2 pid "))?;
    let (pid, rest) = rest.split_once(' ')?;
    rest.starts_with("spawned").then(|| pid.parse().ok())?
}

static KILL_LOG: Mutex<Vec<String>> = Mutex::new(Vec::new());
fn kill_log(line: &str) {
    KILL_LOG.lock().unwrap().push(line.to_string());
}

/// kill -9 one shard while a stalled job guarantees it is mid-sweep:
/// the supervisor classifies the death as a crash, restarts the shard
/// from its journal, and the merged journal canonicalizes
/// bit-identically to a clean unsharded run of the same axes.
#[test]
fn killed_shard_restarts_from_journal_and_canon_matches_clean_run() {
    let dir = scratch_dir("kill");
    // A 2.5 s wall stall on one job holds its shard open long enough
    // to kill deterministically; heartbeats stay on, so the stall is
    // NOT a wedge (the watchdog keeps beating through it).
    let stall_key = "TRu|CG";
    let stall_ms = 2_500;
    let jobs = jobs_with_stall(Some(stall_key), stall_ms);
    let victim_key = jobs
        .iter()
        .map(|j| j.key())
        .find(|k| k.contains(stall_key))
        .expect("stalled job exists");
    let victim_shard = shard_of(&victim_key, 2);

    let clean = dir.join("clean.jsonl");
    clean_sweep(&clean, Some(stall_key), stall_ms);

    let spec = FleetSpec {
        program: dtexl_bin(),
        sweep_args: sweep_args(1_000, Some(stall_key), stall_ms),
        jobs,
        shards: 2,
    };
    let opts = DispatchOptions {
        wedge_timeout: Duration::from_secs(120),
        max_restarts: 3,
        restart_backoff: Duration::from_millis(50),
        poison_threshold: 2,
        poll: Duration::from_millis(20),
        workdir: dir.clone(),
        log: kill_log,
        ..DispatchOptions::default()
    };

    let fleet = std::thread::spawn(move || dispatch_fleet(&spec, &opts).expect("fleet runs"));

    // Watch the supervisor log for the victim shard's first spawn,
    // give it a beat to get into the sweep (the stalled job pins the
    // shard open for >= 2.5 s), then kill -9 it.
    let deadline = Instant::now() + Duration::from_secs(30);
    let pid = loop {
        assert!(Instant::now() < deadline, "victim shard never spawned");
        let found = KILL_LOG
            .lock()
            .unwrap()
            .iter()
            .find_map(|l| spawned_pid(l, victim_shard));
        if let Some(pid) = found {
            break pid;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    std::thread::sleep(Duration::from_millis(600));
    kill9(pid);

    let report = fleet.join().expect("fleet thread");
    let victim = &report.shards[victim_shard as usize];
    assert!(victim.restarts >= 1, "killed shard restarted: {:?}", victim);
    assert!(
        victim
            .deaths
            .iter()
            .any(|d| matches!(d, DeathCause::Crashed { .. })),
        "kill -9 classifies as a crash: {:?}",
        victim.deaths
    );
    assert!(
        report
            .shards
            .iter()
            .all(|s| matches!(s.outcome, ShardOutcome::Completed { .. })),
        "every shard completed: {:?}",
        report.shards
    );
    assert_eq!(report.exit_code(), 0, "{}", report.summary());
    assert_eq!(report.ok, 6);
    assert!(report.poisoned.is_empty(), "one death never poisons");

    // The paper-facing acceptance bar: merged canon == clean canon,
    // byte for byte.
    let merged_canon = canon(&report.merged_journal);
    let clean_canon = canon(&clean);
    assert!(!merged_canon.is_empty());
    assert_eq!(merged_canon, clean_canon, "recovery is bit-identical");
    std::fs::remove_dir_all(&dir).ok();
}

static WEDGE_LOG: Mutex<Vec<String>> = Mutex::new(Vec::new());
fn wedge_log(line: &str) {
    WEDGE_LOG.lock().unwrap().push(line.to_string());
}

/// A job that wall-stalls with heartbeats disabled silences its
/// shard's progress stream: the supervisor must detect the wedge
/// within the timeout, restart the shard, and — once the job has
/// killed its shard twice — quarantine it as `poisoned` while every
/// other job completes.
#[test]
fn wedged_shard_is_restarted_and_its_job_poisoned() {
    let dir = scratch_dir("wedge");
    // The stall (60 s) dwarfs the wedge timeout (1.5 s); with
    // `--heartbeat-ms 0` nothing beats through it, so the stream goes
    // silent and the supervisor must act.
    let stall_key = "TRu|CG";
    let stall_ms = 60_000;
    let jobs = jobs_with_stall(Some(stall_key), stall_ms);
    let victim_key = jobs
        .iter()
        .map(|j| j.key())
        .find(|k| k.contains(stall_key))
        .expect("stalled job exists");
    let victim_shard = shard_of(&victim_key, 2);

    let spec = FleetSpec {
        program: dtexl_bin(),
        sweep_args: sweep_args(0, Some(stall_key), stall_ms),
        jobs,
        shards: 2,
    };
    let opts = DispatchOptions {
        wedge_timeout: Duration::from_millis(1_500),
        max_restarts: 3,
        restart_backoff: Duration::from_millis(50),
        poison_threshold: 2,
        poll: Duration::from_millis(20),
        workdir: dir.clone(),
        log: wedge_log,
        ..DispatchOptions::default()
    };
    let report = dispatch_fleet(&spec, &opts).expect("fleet runs");

    let victim = &report.shards[victim_shard as usize];
    assert!(
        victim.restarts >= 2,
        "two wedges before quarantine: {:?}",
        victim
    );
    assert!(
        victim
            .deaths
            .iter()
            .filter(|d| matches!(d, DeathCause::Wedged { .. }))
            .count()
            >= 2,
        "both deaths are wedges: {:?}",
        victim.deaths
    );
    assert_eq!(
        victim.outcome,
        ShardOutcome::Completed { code: 2 },
        "the shard finishes past the quarantine with a failed job"
    );
    assert_eq!(report.exit_code(), 2, "{}", report.summary());
    assert_eq!(report.poisoned, vec![victim_key.clone()]);
    assert_eq!(report.ok, 5, "every healthy job completed");
    assert_eq!(report.failed, 1);
    assert!(report.missing.is_empty());

    // The merged journal carries the typed quarantine record.
    let merged = std::fs::read_to_string(&report.merged_journal).unwrap();
    let latest = latest_entries(&merged);
    let entry = &latest[&victim_key];
    assert_eq!(entry.status, "failed");
    assert_eq!(entry.error_kind.as_deref(), Some("poisoned"));
    assert_eq!(entry.attempts, 2, "blamed for two deaths");

    // Healthy jobs are untouched by the injection (their fault plans
    // — and so config hashes — never changed): canon of the merged
    // journal equals a clean, stall-free run's canon minus the
    // poisoned key's line.
    let clean = dir.join("clean.jsonl");
    clean_sweep(&clean, None, 0);
    let clean_minus_victim: String = canon(&clean)
        .lines()
        .filter(|l| !l.contains(&victim_key))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(canon(&report.merged_journal), clean_minus_victim);

    // The supervisor narrated the recovery in greppable form.
    let log = WEDGE_LOG.lock().unwrap().join("\n");
    assert!(log.contains("wedged (no progress events for"), "{log}");
    assert!(log.contains("poisoned job"), "{log}");
    std::fs::remove_dir_all(&dir).ok();
}
