//! Determinism of the observability event streams.
//!
//! The probes (`dtexl-obs`) record sim-time events only: raster stats
//! while tiles are binned, memory counters at L2-replay time, and
//! busy/wait spans when frame time is composed from `StageDurations`.
//! None of that may depend on how many worker threads traced the
//! fragment stage — these tests pin bit-identity of the *entire* event
//! stream (and of the exported Chrome trace) across thread counts,
//! schedules and a ragged resolution, plus a golden stall-attribution
//! table for one small scene.
//!
//! If an intentional model change moves the goldens, re-baseline via
//! `dtexl profile --game GTr --res 96x64 --csv` and re-check
//! EXPERIMENTS.md as with tests/calibration_golden.rs.

use dtexl::obs::EventSink;
use dtexl::profile::FrameProfile;
use dtexl::SimConfig;
use dtexl_pipeline::{FrameSim, PipelineConfig};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::ScheduleConfig;

fn probed_events(
    game: Game,
    schedule: &ScheduleConfig,
    threads: usize,
    w: u32,
    h: u32,
) -> (Vec<dtexl::obs::Event>, u64) {
    let scene = game.scene(&SceneSpec::new(w, h, 0));
    let pipeline = PipelineConfig {
        threads,
        ..PipelineConfig::default()
    };
    let mut sink = EventSink::new();
    FrameSim::try_run_probed(&scene, schedule, &pipeline, w, h, &mut sink).expect("valid scene");
    (sink.to_vec(), sink.dropped())
}

#[test]
fn event_stream_is_bit_identical_across_thread_counts() {
    // 100x50 is ragged in both axes: edge tiles are partial, so the
    // subtile split is maximally irregular.
    for schedule in [ScheduleConfig::baseline(), ScheduleConfig::dtexl()] {
        let (serial, dropped1) = probed_events(Game::CandyCrush, &schedule, 1, 100, 50);
        let (parallel, dropped4) = probed_events(Game::CandyCrush, &schedule, 4, 100, 50);
        assert_eq!(dropped1, 0);
        assert_eq!(dropped4, 0);
        assert_eq!(
            serial,
            parallel,
            "probe streams diverge between 1 and 4 threads under {}",
            schedule.label()
        );
        assert!(!serial.is_empty());
    }
}

#[test]
fn chrome_trace_is_bit_identical_across_thread_counts() {
    let mut serial = SimConfig::dtexl(Game::CandyCrush).with_resolution(100, 50);
    serial.pipeline.threads = 1;
    let mut parallel = serial;
    parallel.pipeline.threads = 4;
    let a = FrameProfile::capture(&serial).expect("valid config");
    let b = FrameProfile::capture(&parallel).expect("valid config");
    assert_eq!(
        a.chrome_trace(),
        b.chrome_trace(),
        "exported trace must not encode the host thread count"
    );
    // Thread count is not part of the profiled identity anywhere else
    // either: spans, samples and cycles all agree.
    assert_eq!(a.mem, b.mem);
    assert_eq!(a.raster, b.raster);
    assert_eq!(a.coupled, b.coupled);
    assert_eq!(a.decoupled, b.decoupled);
    assert_eq!(a.coupled_cycles, b.coupled_cycles);
    assert_eq!(a.decoupled_cycles, b.decoupled_cycles);
}

/// Golden stall attribution for GTr at 96x64 under the DTexL schedule.
/// Exact sim-time cycle totals per unit; `d-barrier` is structurally
/// zero under pure decoupled composition. Re-baselined together with
/// `tests/calibration_golden.rs` (line-aligned texture bases and the
/// libm-free trig module — see that file's header).
#[test]
fn golden_stall_attribution_for_gtr_96x64() {
    let cfg = SimConfig::dtexl(Game::GravityTetris).with_resolution(96, 64);
    let p = FrameProfile::capture(&cfg).expect("valid config");
    assert_eq!(p.coupled_cycles, 133_807);
    assert_eq!(p.decoupled_cycles, 106_462);
    assert_eq!(p.dropped, 0);

    let t = p.stall_table();
    let cell = |row: &str, col: &str| {
        t.get(row, col)
            .unwrap_or_else(|| panic!("missing cell {row}/{col}")) as u64
    };
    assert_eq!(cell("fetch", "busy"), 2_520);
    assert_eq!(cell("raster", "busy"), 2_173);
    assert_eq!(cell("early_z/SC0", "busy"), 3_126);
    assert_eq!(cell("fragment/SC0", "busy"), 105_406);
    assert_eq!(cell("fragment/SC1", "c-barrier"), 77_927);
    assert_eq!(cell("fragment/SC3", "busy"), 85_194);
    assert_eq!(cell("blend/SC2", "c-upstream"), 130_825);
    assert_eq!(cell("blend/SC1", "d-upstream"), 54_227);
    for sc in 0..4 {
        for stage in ["early_z", "fragment", "blend"] {
            assert_eq!(
                cell(&format!("{stage}/SC{sc}"), "d-barrier"),
                0,
                "pure decoupled composition never blocks {stage}/SC{sc} at a barrier"
            );
        }
    }

    // The trace spans are self-consistent with the table: summed
    // fragment busy spans equal the table's fragment busy row total.
    let table_busy: u64 = (0..4)
        .map(|sc| cell(&format!("fragment/SC{sc}"), "busy"))
        .sum();
    let span_busy: u64 = p
        .coupled
        .iter()
        .filter(|s| s.stage == dtexl::obs::Stage::Fragment && s.kind == dtexl::obs::SpanKind::Busy)
        .map(dtexl::obs::Span::cycles)
        .sum();
    assert_eq!(table_busy, span_busy);
}

/// Per-track timestamps in the exported trace are monotonic: spans on
/// one (pid, stage, sc) track never overlap, under either composition.
#[test]
fn trace_tracks_are_monotonic() {
    let cfg = SimConfig::dtexl(Game::GravityTetris).with_resolution(96, 64);
    let p = FrameProfile::capture(&cfg).expect("valid config");
    for spans in [&p.coupled, &p.decoupled] {
        let mut last: std::collections::BTreeMap<(dtexl::obs::Stage, u8), u64> =
            std::collections::BTreeMap::new();
        for s in spans {
            let prev = last.entry((s.stage, s.sc)).or_insert(0);
            assert!(
                s.start >= *prev && s.end >= s.start,
                "span regresses on track {:?}/SC{}: [{}, {}) after {}",
                s.stage,
                s.sc,
                s.start,
                s.end,
                prev
            );
            *prev = s.end;
        }
    }
}
