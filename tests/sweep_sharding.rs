//! Acceptance pins for sharded sweeps and per-job memory budgets:
//! the union of all shard journals must equal the unsharded journal
//! (bit-identical metrics per key), a job exceeding its memory budget
//! must fail typed + journaled and complete under a raised budget on
//! resume, and shard assignment must be stable when the job list
//! grows.

use dtexl::sweep::{
    merge_journals, parse_journal_line, run_sweep, shard_of, JobError, JobMetrics, JobStatus,
    RetryPolicy, Shard, SweepJob, SweepOptions,
};
use dtexl_scene::Game;
use dtexl_sched::ScheduleConfig;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

const W: u32 = 192;
const H: u32 = 96;

fn jobs() -> Vec<SweepJob> {
    let mut out = Vec::new();
    for game in [Game::CandyCrush, Game::GravityTetris, Game::TempleRun] {
        for schedule in [ScheduleConfig::baseline(), ScheduleConfig::dtexl()] {
            out.push(SweepJob::new(game, schedule, false, W, H, 0));
        }
    }
    out
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtexl_shard_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sweep_to_journal(jobs: &[SweepJob], journal: &Path, shard: Option<Shard>) {
    let opts = SweepOptions {
        keep_going: true,
        journal: Some(journal.to_path_buf()),
        shard,
        ..SweepOptions::default()
    };
    let report = run_sweep(jobs, &opts, |_, _| {}).unwrap();
    assert!(report.is_success(), "{}", report.summary());
}

/// The stable, order-independent content of a journal: for every key,
/// the latest record's status, config hash and metrics. Volatile
/// fields (elapsed, peak alloc, shard stamp) are exactly the ones a
/// sharded run may legitimately differ on.
fn canonical(journal: &Path) -> BTreeMap<String, (String, Option<u64>, Option<JobMetrics>)> {
    let text = std::fs::read_to_string(journal).unwrap();
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if let Some(e) = parse_journal_line(line) {
            out.insert(e.key, (e.status, e.config_hash, e.metrics));
        }
    }
    out
}

/// Pin (a): for N ∈ {2, 3}, running every shard `i/N` into its own
/// journal and merging yields exactly the unsharded journal's record
/// set, with bit-identical metrics per key.
#[test]
fn shard_union_equals_unsharded_journal() {
    let dir = scratch_dir("union");
    let jobs = jobs();

    let unsharded = dir.join("unsharded.jsonl");
    sweep_to_journal(&jobs, &unsharded, None);
    let expected = canonical(&unsharded);
    assert_eq!(expected.len(), jobs.len(), "every job journaled");

    for count in [2u32, 3] {
        let mut shard_paths = Vec::new();
        for index in 0..count {
            let path = dir.join(format!("shard_{index}_of_{count}.jsonl"));
            sweep_to_journal(&jobs, &path, Some(Shard::new(index, count).unwrap()));
            shard_paths.push(path);
        }
        let merged = dir.join(format!("merged_{count}.jsonl"));
        let stats = merge_journals(&shard_paths, &merged).unwrap();
        assert_eq!(stats.journals, count as usize);
        assert_eq!(stats.records, jobs.len(), "union covers every job");
        assert_eq!(stats.superseded, 0, "shards are disjoint");
        assert_eq!(
            canonical(&merged),
            expected,
            "merged {count}-way shard journals must match the unsharded run bit-for-bit"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Pin (b): a job whose allocation spike exceeds `job_mem_budget`
/// fails with the typed [`JobError::MemBudget`], is never retried at
/// the same budget, lands in the journal with its `error_kind`, and a
/// `resume` run with a raised budget completes it.
#[test]
fn mem_budget_failure_is_typed_journaled_and_resumable() {
    let dir = scratch_dir("budget");
    let journal = dir.join("journal.jsonl");

    let mut hungry = SweepJob::new(Game::CandyCrush, ScheduleConfig::dtexl(), false, W, H, 0);
    hungry.pipeline.fault.alloc_spike_mb = 64;
    let healthy = SweepJob::new(
        Game::GravityTetris,
        ScheduleConfig::baseline(),
        false,
        W,
        H,
        0,
    );
    let jobs = vec![hungry, healthy];

    let opts = SweepOptions {
        keep_going: true,
        journal: Some(journal.clone()),
        job_mem_budget: Some(16 * 1024 * 1024),
        retry: RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(1),
        },
        ..SweepOptions::default()
    };
    let report = run_sweep(&jobs, &opts, |_, _| {}).unwrap();
    assert!(!report.is_success());
    let failed = report.failed();
    assert_eq!(failed.len(), 1);
    let record = failed[0];
    assert_eq!(record.key, hungry.key());
    let (used, budget) = match &record.error {
        Some(JobError::MemBudget { used, budget }) => (*used, *budget),
        other => panic!("expected MemBudget, got {other:?}"),
    };
    assert_eq!(budget, 16 * 1024 * 1024);
    assert!(used > budget, "used {used} must exceed budget {budget}");
    assert_eq!(
        record.attempts, 1,
        "a budget overrun is deterministic: never retried at the same budget"
    );

    let text = std::fs::read_to_string(&journal).unwrap();
    let entry = text
        .lines()
        .filter_map(parse_journal_line)
        .find(|e| e.key == hungry.key())
        .unwrap();
    assert_eq!(entry.status, "failed");
    assert_eq!(entry.error_kind.as_deref(), Some("mem_budget"));

    // Raise the budget and resume: only the budget-failed job runs,
    // and it now completes.
    let opts = SweepOptions {
        resume: true,
        job_mem_budget: Some(256 * 1024 * 1024),
        ..opts
    };
    let report = run_sweep(&jobs, &opts, |_, _| {}).unwrap();
    assert!(report.is_success(), "{}", report.summary());
    let by_key: BTreeMap<_, _> = report
        .records
        .iter()
        .map(|r| (r.key.clone(), r.status))
        .collect();
    assert_eq!(by_key[&hungry.key()], JobStatus::Ok);
    assert_eq!(by_key[&healthy.key()], JobStatus::Skipped);
    let ok_entry = std::fs::read_to_string(&journal)
        .unwrap()
        .lines()
        .filter_map(parse_journal_line)
        .rfind(|e| e.key == hungry.key())
        .unwrap();
    assert_eq!(ok_entry.status, "ok");
    assert!(
        ok_entry.peak_alloc_bytes.unwrap() > 64 * 1024 * 1024,
        "the spike is metered: {:?}",
        ok_entry.peak_alloc_bytes
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Pin (c): shard assignment hashes the job *key*, so appending jobs
/// to the list never moves an existing job to a different shard, and
/// every key lands in exactly one shard.
#[test]
fn shard_assignment_is_stable_under_job_list_append() {
    let mut jobs = jobs();
    for count in [2u32, 3, 5] {
        let before: Vec<u32> = jobs.iter().map(|j| shard_of(&j.key(), count)).collect();

        let mut grown = jobs.clone();
        grown.push(SweepJob::new(
            Game::TempleRun,
            ScheduleConfig::dtexl(),
            true,
            W,
            H,
            7,
        ));
        let after: Vec<u32> = grown.iter().map(|j| shard_of(&j.key(), count)).collect();
        assert_eq!(
            before,
            after[..before.len()],
            "appending a job must not reshuffle existing assignments (N = {count})"
        );

        // Partition: each key is owned by exactly one shard.
        for job in &grown {
            let owners: Vec<u32> = (0..count)
                .filter(|&i| Shard::new(i, count).unwrap().contains(&job.key()))
                .collect();
            assert_eq!(owners.len(), 1, "{} (N = {count})", job.key());
            assert_eq!(owners[0], shard_of(&job.key(), count));
        }
    }

    // Out-of-shard jobs leave no trace: a sharded run journals only
    // its own slice, never `not_run` placeholders for the rest.
    let dir = scratch_dir("stable");
    let journal = dir.join("slice.jsonl");
    jobs.truncate(4);
    sweep_to_journal(&jobs, &journal, Some(Shard::new(0, 2).unwrap()));
    let mine: Vec<String> = jobs
        .iter()
        .map(SweepJob::key)
        .filter(|k| shard_of(k, 2) == 0)
        .collect();
    let journaled = canonical(&journal);
    assert_eq!(
        journaled.keys().cloned().collect::<Vec<_>>(),
        mine,
        "exactly the shard's own keys are journaled"
    );
    std::fs::remove_dir_all(&dir).ok();
}
