//! Negative-space tests: malformed inputs must fail loudly (with the
//! documented panics/errors), and extreme-but-legal inputs must not
//! wedge the simulator.

use dtexl::gmath::{Mat4, Vec2, Vec3};
use dtexl::texture::TextureDesc;
use dtexl_pipeline::{
    BarrierMode, DramSpike, FaultPlan, FrameSim, LaneStall, PipelineConfig, SimError,
};
use dtexl_scene::{
    DepthMode, DrawCommand, Game, Scene, SceneSpec, ShaderProfile, Vertex, TEXTURE_BASE_ADDR,
};
use dtexl_sched::ScheduleConfig;

fn one_tri_scene() -> Scene {
    Scene {
        textures: vec![TextureDesc::new(0, 64, 64, TEXTURE_BASE_ADDR)],
        vertices: vec![
            Vertex::new(Vec3::new(4.0, 4.0, -1.0), Vec2::new(0.0, 0.0)),
            Vertex::new(Vec3::new(60.0, 4.0, -1.0), Vec2::new(1.0, 0.0)),
            Vertex::new(Vec3::new(4.0, 60.0, -1.0), Vec2::new(0.0, 1.0)),
        ],
        draws: vec![DrawCommand {
            first_vertex: 0,
            vertex_count: 3,
            texture: 0,
            shader: ShaderProfile::standard(),
            transform: Mat4::orthographic(0.0, 64.0, 64.0, 0.0, 0.1, 10.0),
            opaque: true,
            uv_scale: 1.0,
            depth_mode: DepthMode::Early,
        }],
    }
}

#[test]
// lint: typed-sibling(dangling_texture_is_a_scene_error)
#[should_panic(expected = "invalid scene")]
fn scene_with_dangling_texture_panics() {
    let mut scene = one_tri_scene();
    scene.draws[0].texture = 99;
    let _ = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    );
}

#[test]
// lint: typed-sibling(odd_tile_size_is_a_config_error)
#[should_panic(expected = "invalid pipeline configuration")]
fn odd_tile_size_panics() {
    let cfg = PipelineConfig {
        tile_size: 31,
        ..PipelineConfig::default()
    };
    let _ =
        FrameSim::run_with_resolution(&one_tri_scene(), &ScheduleConfig::baseline(), &cfg, 64, 64);
}

#[test]
// lint: typed-sibling(sparse_texture_ids_are_a_typed_error)
#[should_panic(expected = "texture ids must be dense")]
fn sparse_texture_ids_panic() {
    let mut scene = one_tri_scene();
    // Texture with id 5 at position 0: ids are no longer dense.
    scene.textures = vec![TextureDesc::new(5, 64, 64, TEXTURE_BASE_ADDR)];
    scene.draws[0].texture = 5;
    let _ = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    );
}

// --- typed-error parity: every panic above has a `try_*` sibling ---

#[test]
fn dangling_texture_is_a_scene_error() {
    let mut scene = one_tri_scene();
    scene.draws[0].texture = 99;
    let err = FrameSim::try_run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    )
    .unwrap_err();
    assert!(matches!(err, SimError::Scene(_)));
    assert!(err.to_string().starts_with("invalid scene"));
}

#[test]
fn odd_tile_size_is_a_config_error() {
    let cfg = PipelineConfig {
        tile_size: 31,
        ..PipelineConfig::default()
    };
    let err = FrameSim::try_run_with_resolution(
        &one_tri_scene(),
        &ScheduleConfig::baseline(),
        &cfg,
        64,
        64,
    )
    .unwrap_err();
    assert!(matches!(err, SimError::Config(_)));
    assert!(err
        .to_string()
        .starts_with("invalid pipeline configuration"));
}

#[test]
fn sparse_texture_ids_are_a_typed_error() {
    let mut scene = one_tri_scene();
    scene.textures = vec![TextureDesc::new(5, 64, 64, TEXTURE_BASE_ADDR)];
    scene.draws[0].texture = 5;
    let err = FrameSim::try_run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    )
    .unwrap_err();
    assert_eq!(err, SimError::SparseTextureIds { index: 0, id: 5 });
    assert!(err.to_string().contains("texture ids must be dense"));
}

#[test]
// lint: typed-sibling(zero_resolution_spec_is_a_typed_error)
#[should_panic(expected = "non-zero")]
fn zero_resolution_spec_panics() {
    let _ = SceneSpec::new(0, 64, 0);
}

#[test]
fn zero_resolution_spec_is_a_typed_error() {
    let err = SceneSpec::try_new(0, 64, 0).unwrap_err();
    assert!(err.contains("non-zero"));
    assert!(SceneSpec::try_new(64, 64, 0).is_ok());
}

#[test]
fn invalid_fault_plan_is_a_fault_error() {
    let cfg = PipelineConfig {
        fault: FaultPlan {
            lane_stall: Some(LaneStall {
                lane: 7,
                cycles: 100,
            }),
            ..FaultPlan::default()
        },
        ..PipelineConfig::default()
    };
    let err = FrameSim::try_run_with_resolution(
        &one_tri_scene(),
        &ScheduleConfig::baseline(),
        &cfg,
        64,
        64,
    )
    .unwrap_err();
    assert!(matches!(err, SimError::Fault(_)));
    assert!(err.to_string().contains("lane 7"));
}

#[test]
fn degenerate_and_offscreen_geometry_is_dropped_not_crashed() {
    let mut scene = one_tri_scene();
    // A zero-area triangle and a far-offscreen one.
    let base = scene.vertices.len() as u32;
    for p in [
        Vec3::new(1.0, 1.0, -1.0),
        Vec3::new(1.0, 1.0, -1.0),
        Vec3::new(1.0, 1.0, -1.0),
        Vec3::new(9000.0, 9000.0, -1.0),
        Vec3::new(9010.0, 9000.0, -1.0),
        Vec3::new(9000.0, 9010.0, -1.0),
    ] {
        scene.vertices.push(Vertex::new(p, Vec2::ZERO));
    }
    for first in [base, base + 3] {
        scene.draws.push(DrawCommand {
            first_vertex: first,
            vertex_count: 3,
            ..scene.draws[0].clone()
        });
    }
    let r = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    );
    assert_eq!(r.geometry.prims_assembled, 3);
    assert_eq!(
        r.geometry.prims_emitted, 1,
        "only the real triangle survives"
    );
}

#[test]
fn single_pixel_resolution_works() {
    let scene = one_tri_scene();
    let r = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::dtexl(),
        &PipelineConfig::default(),
        2,
        2,
    );
    assert_eq!(r.tiles.len(), 1);
    assert!(r.total_cycles(BarrierMode::Decoupled) > 0);
}

#[test]
fn gigantic_triangle_is_clipped_cheaply() {
    let mut scene = one_tri_scene();
    // Vertices a thousand screens away in every direction.
    scene.vertices = vec![
        Vertex::new(Vec3::new(-60000.0, -60000.0, -1.0), Vec2::new(0.0, 0.0)),
        Vertex::new(Vec3::new(120000.0, -60000.0, -1.0), Vec2::new(500.0, 0.0)),
        Vertex::new(Vec3::new(-60000.0, 120000.0, -1.0), Vec2::new(0.0, 500.0)),
    ];
    let r = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    );
    // The triangle covers the whole 64×64 screen: exactly 32×32 quads.
    assert_eq!(r.total_quads_shaded(), 32 * 32);
}

#[test]
fn zero_alu_shader_is_legal() {
    let mut scene = one_tri_scene();
    scene.draws[0].shader = ShaderProfile {
        alu_ops: 0,
        tex_samples: 1,
        filter: dtexl::texture::Filter::Bilinear,
    };
    let r = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    );
    assert!(r.total_quads_shaded() > 0);
    assert!(r.shader.alu_ops == 0);
    assert!(r.shader.tex_instructions > 0);
}

#[test]
fn extreme_uv_scale_stays_finite() {
    let mut scene = one_tri_scene();
    scene.draws[0].uv_scale = 1.0e4; // absurd texel density → deep mips
    let r = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    );
    assert!(r.total_quads_shaded() > 0);
    assert!(r.hierarchy.l1_accesses() > 0);
}

// --- deterministic fault injection (FaultPlan) ---

fn game_frame(game: Game, fault: FaultPlan) -> dtexl_pipeline::FrameResult {
    let (w, h) = (480, 192);
    let scene = game.scene(&SceneSpec::new(w, h, 0));
    let cfg = PipelineConfig {
        fault,
        ..PipelineConfig::default()
    };
    FrameSim::try_run_with_resolution(&scene, &ScheduleConfig::dtexl(), &cfg, w, h).unwrap()
}

/// The paper's robustness claim, made executable: when one SC lane
/// stalls, coupled barriers propagate the stall through every
/// subsequent tile boundary, while decoupled barriers absorb part of
/// it in the other lanes' slack — so decoupled loses strictly fewer
/// cycles, on multiple games.
#[test]
fn decoupled_absorbs_a_lane_stall_better_than_coupled() {
    for game in [Game::GravityTetris, Game::CandyCrush] {
        let clean = game_frame(game, FaultPlan::default());
        // Stall the least-loaded lane: a coupled pipeline still pays
        // for the stall at every tile barrier, while the decoupled
        // pipeline has the most slack in exactly that lane's chain.
        let mut totals = [0u64; 4];
        for frag in &clean.durations.fragment {
            for (lane, &cycles) in frag.iter().enumerate() {
                totals[lane] += cycles;
            }
        }
        let lane = (0..4).min_by_key(|&l| totals[l]).unwrap();
        let stall_cycles = clean.total_cycles(BarrierMode::Coupled) / 8;
        let stalled = game_frame(
            game,
            FaultPlan {
                seed: 7,
                lane_stall: Some(LaneStall {
                    lane,
                    cycles: stall_cycles,
                }),
                ..FaultPlan::default()
            },
        );
        let loss_coupled =
            stalled.total_cycles(BarrierMode::Coupled) - clean.total_cycles(BarrierMode::Coupled);
        let loss_decoupled = stalled.total_cycles(BarrierMode::Decoupled)
            - clean.total_cycles(BarrierMode::Decoupled);
        assert!(
            loss_coupled > 0,
            "{game:?}: the stall must cost coupled barriers something"
        );
        assert!(
            loss_decoupled < loss_coupled,
            "{game:?}: decoupled lost {loss_decoupled} cycles vs coupled {loss_coupled}"
        );
        // The cache model must be untouched: the stall perturbs timing
        // composition only, so both runs saw identical memory traffic.
        assert_eq!(clean.hierarchy, stalled.hierarchy);
    }
}

/// DRAM latency spikes slow the frame down but do not change *what*
/// is accessed: cache statistics stay bit-identical.
#[test]
fn dram_spikes_cost_cycles_but_not_accesses() {
    let game = Game::TempleRun;
    let clean = game_frame(game, FaultPlan::default());
    let spiked = game_frame(
        game,
        FaultPlan {
            dram_spike: Some(DramSpike {
                period: 2,
                extra_cycles: 400,
            }),
            ..FaultPlan::default()
        },
    );
    assert!(
        spiked.total_cycles(BarrierMode::Decoupled) > clean.total_cycles(BarrierMode::Decoupled),
        "every other DRAM fill paying +400 cycles must slow the frame"
    );
    assert_eq!(clean.hierarchy, spiked.hierarchy);
    assert_eq!(clean.total_quads_shaded(), spiked.total_quads_shaded());
}

/// An injected early-Z stall shows up in the observability trace
/// exactly where it was injected: the wait/busy attribution localizes
/// the fault to the stalled (SC, stage) unit without being told where
/// it is. This is the probes' reason to exist — a timing anomaly in
/// any unit is findable from the trace alone.
#[test]
fn trace_wait_attribution_localizes_an_injected_early_z_stall() {
    use dtexl::obs::{Span, SpanKind, Stage};
    use dtexl::profile::FrameProfile;
    use dtexl::SimConfig;
    use std::collections::BTreeMap;

    let lane = 2usize;
    let stall = 40_000u64;
    let clean_cfg = SimConfig::dtexl(Game::GravityTetris).with_resolution(480, 192);
    let mut faulted_cfg = clean_cfg;
    faulted_cfg.pipeline.fault = FaultPlan {
        seed: 11,
        early_z_stall: Some(LaneStall {
            lane,
            cycles: stall,
        }),
        ..FaultPlan::default()
    };
    let clean = FrameProfile::capture(&clean_cfg).expect("valid config");
    let faulted = FrameProfile::capture(&faulted_cfg).expect("valid config");

    // Busy totals per (stage, SC) unit from the span stream. Busy time
    // is barrier-mode-invariant; use the decoupled composition.
    let busy_totals = |spans: &[Span]| -> BTreeMap<(Stage, u8), u64> {
        let mut m = BTreeMap::new();
        for s in spans.iter().filter(|s| s.kind == SpanKind::Busy) {
            *m.entry((s.stage, s.sc)).or_insert(0) += s.cycles();
        }
        m
    };
    let before = busy_totals(&clean.decoupled);
    let after = busy_totals(&faulted.decoupled);

    // Without being told where the fault is, the largest busy delta
    // names the injected unit — and carries the full injected cost.
    let (culprit, delta) = after
        .iter()
        .map(|(unit, &b)| (*unit, b - before.get(unit).copied().unwrap_or(0)))
        .max_by_key(|&(_, d)| d)
        .unwrap();
    assert_eq!(
        culprit,
        (Stage::EarlyZ, lane as u8),
        "stall must localize to the injected (stage, SC) unit"
    );
    assert_eq!(delta, stall, "the whole injected cost lands in one unit");
    for (unit, b) in &after {
        if *unit != culprit {
            assert_eq!(*b, before[unit], "{unit:?}: untouched units must not move");
        }
    }

    // Coupled barriers turn the stall into sibling waits: the other
    // early-Z units now stand at the tile barrier longer.
    let ez_barrier_wait = |spans: &[Span]| -> u64 {
        spans
            .iter()
            .filter(|s| {
                s.stage == Stage::EarlyZ && s.kind == SpanKind::WaitBarrier && s.sc != lane as u8
            })
            .map(Span::cycles)
            .sum()
    };
    assert!(
        ez_barrier_wait(&faulted.coupled) > ez_barrier_wait(&clean.coupled),
        "coupled siblings must absorb the stall as barrier waits"
    );
}

/// The same fault plan is bit-identical across runs and across the
/// serial/parallel simulator paths.
#[test]
fn fault_injection_is_deterministic_and_thread_invariant() {
    let plan = FaultPlan {
        seed: 42,
        lane_stall: Some(LaneStall {
            lane: 2,
            cycles: 10_000,
        }),
        dram_spike: Some(DramSpike {
            period: 5,
            extra_cycles: 120,
        }),
        ..FaultPlan::default()
    };
    let a = game_frame(Game::Maze, plan);
    let b = game_frame(Game::Maze, plan);
    assert_eq!(a.durations, b.durations, "same plan, same timing");
    assert_eq!(a.hierarchy, b.hierarchy, "same plan, same traffic");

    let scene = Game::Maze.scene(&SceneSpec::new(480, 192, 0));
    let parallel_cfg = PipelineConfig {
        fault: plan,
        threads: 4,
        ..PipelineConfig::default()
    };
    let c = FrameSim::try_run_with_resolution(
        &scene,
        &ScheduleConfig::dtexl(),
        &parallel_cfg,
        480,
        192,
    )
    .unwrap();
    assert_eq!(a.durations, c.durations, "threads must not change timing");
    assert_eq!(a.hierarchy, c.hierarchy, "threads must not change traffic");
}
