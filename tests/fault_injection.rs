//! Negative-space tests: malformed inputs must fail loudly (with the
//! documented panics/errors), and extreme-but-legal inputs must not
//! wedge the simulator.

use dtexl::gmath::{Mat4, Vec2, Vec3};
use dtexl::texture::TextureDesc;
use dtexl_pipeline::{BarrierMode, FrameSim, PipelineConfig};
use dtexl_scene::{DepthMode, DrawCommand, Scene, ShaderProfile, Vertex, TEXTURE_BASE_ADDR};
use dtexl_sched::ScheduleConfig;

fn one_tri_scene() -> Scene {
    Scene {
        textures: vec![TextureDesc::new(0, 64, 64, TEXTURE_BASE_ADDR)],
        vertices: vec![
            Vertex::new(Vec3::new(4.0, 4.0, -1.0), Vec2::new(0.0, 0.0)),
            Vertex::new(Vec3::new(60.0, 4.0, -1.0), Vec2::new(1.0, 0.0)),
            Vertex::new(Vec3::new(4.0, 60.0, -1.0), Vec2::new(0.0, 1.0)),
        ],
        draws: vec![DrawCommand {
            first_vertex: 0,
            vertex_count: 3,
            texture: 0,
            shader: ShaderProfile::standard(),
            transform: Mat4::orthographic(0.0, 64.0, 64.0, 0.0, 0.1, 10.0),
            opaque: true,
            uv_scale: 1.0,
            depth_mode: DepthMode::Early,
        }],
    }
}

#[test]
#[should_panic(expected = "invalid scene")]
fn scene_with_dangling_texture_panics() {
    let mut scene = one_tri_scene();
    scene.draws[0].texture = 99;
    let _ = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    );
}

#[test]
#[should_panic(expected = "invalid pipeline configuration")]
fn odd_tile_size_panics() {
    let cfg = PipelineConfig {
        tile_size: 31,
        ..PipelineConfig::default()
    };
    let _ =
        FrameSim::run_with_resolution(&one_tri_scene(), &ScheduleConfig::baseline(), &cfg, 64, 64);
}

#[test]
#[should_panic(expected = "texture ids must be dense")]
fn sparse_texture_ids_panic() {
    let mut scene = one_tri_scene();
    // Texture with id 5 at position 0: ids are no longer dense.
    scene.textures = vec![TextureDesc::new(5, 64, 64, TEXTURE_BASE_ADDR)];
    scene.draws[0].texture = 5;
    let _ = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    );
}

#[test]
fn degenerate_and_offscreen_geometry_is_dropped_not_crashed() {
    let mut scene = one_tri_scene();
    // A zero-area triangle and a far-offscreen one.
    let base = scene.vertices.len() as u32;
    for p in [
        Vec3::new(1.0, 1.0, -1.0),
        Vec3::new(1.0, 1.0, -1.0),
        Vec3::new(1.0, 1.0, -1.0),
        Vec3::new(9000.0, 9000.0, -1.0),
        Vec3::new(9010.0, 9000.0, -1.0),
        Vec3::new(9000.0, 9010.0, -1.0),
    ] {
        scene.vertices.push(Vertex::new(p, Vec2::ZERO));
    }
    for first in [base, base + 3] {
        scene.draws.push(DrawCommand {
            first_vertex: first,
            vertex_count: 3,
            ..scene.draws[0].clone()
        });
    }
    let r = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    );
    assert_eq!(r.geometry.prims_assembled, 3);
    assert_eq!(
        r.geometry.prims_emitted, 1,
        "only the real triangle survives"
    );
}

#[test]
fn single_pixel_resolution_works() {
    let scene = one_tri_scene();
    let r = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::dtexl(),
        &PipelineConfig::default(),
        2,
        2,
    );
    assert_eq!(r.tiles.len(), 1);
    assert!(r.total_cycles(BarrierMode::Decoupled) > 0);
}

#[test]
fn gigantic_triangle_is_clipped_cheaply() {
    let mut scene = one_tri_scene();
    // Vertices a thousand screens away in every direction.
    scene.vertices = vec![
        Vertex::new(Vec3::new(-60000.0, -60000.0, -1.0), Vec2::new(0.0, 0.0)),
        Vertex::new(Vec3::new(120000.0, -60000.0, -1.0), Vec2::new(500.0, 0.0)),
        Vertex::new(Vec3::new(-60000.0, 120000.0, -1.0), Vec2::new(0.0, 500.0)),
    ];
    let r = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    );
    // The triangle covers the whole 64×64 screen: exactly 32×32 quads.
    assert_eq!(r.total_quads_shaded(), 32 * 32);
}

#[test]
fn zero_alu_shader_is_legal() {
    let mut scene = one_tri_scene();
    scene.draws[0].shader = ShaderProfile {
        alu_ops: 0,
        tex_samples: 1,
        filter: dtexl::texture::Filter::Bilinear,
    };
    let r = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    );
    assert!(r.total_quads_shaded() > 0);
    assert!(r.shader.alu_ops == 0);
    assert!(r.shader.tex_instructions > 0);
}

#[test]
fn extreme_uv_scale_stays_finite() {
    let mut scene = one_tri_scene();
    scene.draws[0].uv_scale = 1.0e4; // absurd texel density → deep mips
    let r = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        64,
        64,
    );
    assert!(r.total_quads_shaded() > 0);
    assert!(r.hierarchy.l1_accesses() > 0);
}
