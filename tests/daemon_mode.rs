//! End-to-end coverage of the spool daemon (`dtexl sweep
//! submit`/`daemon`/`status` plus the `sweep --spool` worker mode),
//! driving the real `dtexl` binary:
//!
//! * submit → daemon → live second submit → drain → SIGTERM: the
//!   terminal status is graceful (`alive:false`) and the live-merged
//!   canon view is bit-identical to a clean one-shot sweep of the
//!   union of both batches;
//! * re-submitting a batch is a reported no-op with exit 0;
//! * `sweep status` renders the status document and `--format json`
//!   passes it through byte-for-byte;
//! * a worker (`sweep --spool`) drains a pre-armed spool directly;
//! * a second daemon on an already-drained spool resumes exactly:
//!   completed jobs are not re-simulated and the final canon still
//!   matches a clean run of the union.

use dtexl::spool::{JobSpec, Spool};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const RES: &str = "96x64";

/// The `dtexl` binary, resolved from the test executable's location
/// (`target/<profile>/deps/<test>` → `target/<profile>/dtexl`). The
/// root test package does not depend on the CLI crate, so there is no
/// `CARGO_BIN_EXE_dtexl`; the workspace build produces the binary
/// before any test runs.
fn dtexl_bin() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join("dtexl");
    assert!(
        bin.exists(),
        "dtexl binary not found at {} (build the workspace first)",
        bin.display()
    );
    bin
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtexl_daemon_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `dtexl sweep submit` for `games` × baseline,dtexl at [`RES`].
fn submit(spool: &Path, games: &str) -> std::process::Output {
    let out = Command::new(dtexl_bin())
        .args(["sweep", "submit", "--spool"])
        .arg(spool)
        .args([
            "--games",
            games,
            "--schedules",
            "baseline,dtexl",
            "--res",
            RES,
        ])
        .output()
        .expect("run sweep submit");
    assert!(
        out.status.success(),
        "submit failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Spawn `dtexl sweep daemon` with fast polling, stderr to a log file.
fn spawn_daemon(spool: &Path, log: &Path) -> Child {
    Command::new(dtexl_bin())
        .args(["sweep", "daemon", "--spool"])
        .arg(spool)
        .args(["--shards", "2", "--poll-ms", "20", "--spool-poll-ms", "20"])
        .stdout(Stdio::null())
        .stderr(std::fs::File::create(log).expect("create daemon log"))
        .spawn()
        .expect("spawn daemon")
}

/// Poll the spool's status document until `pred` holds on its text.
fn wait_for_status(spool: &Path, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let path = spool.join("status.json");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if pred(&text) {
                return text;
            }
        }
        assert!(
            Instant::now() < deadline,
            "status never reached: {what} (last: {:?})",
            std::fs::read_to_string(&path).ok()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn sigterm(pid: u32) {
    let status = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill -TERM {pid} failed");
}

/// Clean one-shot `dtexl sweep` over `games`, canonicalized.
fn clean_canon(dir: &Path, games: &str) -> String {
    let journal = dir.join("clean.jsonl");
    let out = Command::new(dtexl_bin())
        .args(["sweep", "--games", games, "--schedules", "baseline,dtexl"])
        .args(["--res", RES, "--threads", "1", "--keep-going"])
        .arg("--journal")
        .arg(&journal)
        .output()
        .expect("run clean sweep");
    assert!(
        out.status.success(),
        "clean sweep failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    canon(&journal)
}

/// `dtexl sweep canon <journal>`.
fn canon(journal: &Path) -> String {
    let out = Command::new(dtexl_bin())
        .args(["sweep", "canon"])
        .arg(journal)
        .output()
        .expect("run sweep canon");
    assert!(
        out.status.success(),
        "canon failed on {}",
        journal.display()
    );
    String::from_utf8(out.stdout).expect("canon output is utf-8")
}

/// The headline flow: daemon on an empty spool, a batch submitted
/// before and another *while it runs*, drain observed through the
/// status endpoint, graceful SIGTERM, and a bit-identical canon.
#[test]
fn daemon_drains_live_submissions_and_canon_matches_one_shot_run() {
    let dir = scratch_dir("live");
    let spool = dir.join("spool");
    submit(&spool, "CCS,SoD");
    let mut daemon = spawn_daemon(&spool, &dir.join("daemon.log"));

    // First batch fully drained (4 jobs ok), then feed the *running*
    // daemon a second batch and wait for the queue to empty again.
    wait_for_status(&spool, "first batch drained", |s| {
        s.contains("\"state\":\"drained\"") && s.contains("\"ok\":4")
    });
    submit(&spool, "GTr");
    wait_for_status(&spool, "second batch drained", |s| {
        s.contains("\"state\":\"drained\"") && s.contains("\"ok\":6")
    });

    sigterm(daemon.id());
    let status = daemon.wait().expect("daemon exits");
    let log = std::fs::read_to_string(dir.join("daemon.log")).unwrap_or_default();
    assert!(status.success(), "daemon exit: {status:?}\n{log}");

    let terminal = std::fs::read_to_string(spool.join("status.json")).expect("terminal status");
    assert!(
        terminal.contains("\"alive\":false") && terminal.contains("\"state\":\"drained\""),
        "terminal status not graceful: {terminal}"
    );

    // `sweep status` renders the document; `--format json` passes the
    // raw bytes through.
    let text = Command::new(dtexl_bin())
        .args(["sweep", "status", "--spool"])
        .arg(&spool)
        .output()
        .expect("run sweep status");
    assert!(text.status.success());
    let rendered = String::from_utf8_lossy(&text.stdout).to_string();
    assert!(rendered.contains("drained"), "summary: {rendered}");
    let json = Command::new(dtexl_bin())
        .args(["sweep", "status", "--spool"])
        .arg(&spool)
        .args(["--format", "json"])
        .output()
        .expect("run sweep status --format json");
    assert_eq!(String::from_utf8_lossy(&json.stdout), terminal);

    // The live-merged journal and its canon view both match a clean
    // one-shot run of the union of the two batches.
    let clean = clean_canon(&dir, "CCS,SoD,GTr");
    assert_eq!(canon(&spool.join("merged.jsonl")), clean);
    assert_eq!(
        std::fs::read_to_string(spool.join("merged.canon")).expect("canon view exists"),
        clean,
        "the on-disk canon view must equal `sweep canon` of the merged journal"
    );
}

/// Submitting byte-identical work twice (even with the axes spelled in
/// a different order) is a reported no-op: exit 0, one spooled batch.
#[test]
fn duplicate_submission_is_a_reported_noop() {
    let dir = scratch_dir("dup");
    let spool = dir.join("spool");
    let first = submit(&spool, "CCS,GTr");
    let second = submit(&spool, "GTr,CCS");
    assert!(
        String::from_utf8_lossy(&first.stdout).contains("submitted batch"),
        "first submit: {:?}",
        first
    );
    assert!(
        String::from_utf8_lossy(&second.stdout).contains("already spooled"),
        "second submit: {:?}",
        second
    );
    let batches: Vec<_> = std::fs::read_dir(spool.join("incoming"))
        .expect("incoming dir")
        .map(|e| e.expect("dir entry").file_name())
        .collect();
    assert_eq!(batches.len(), 1, "one content-addressed batch: {batches:?}");
}

/// `dtexl sweep --spool` drains a pre-armed spool (accepted batch +
/// drain marker) and exits cleanly — the worker leg the daemon spawns,
/// driven directly.
#[test]
fn worker_mode_drains_a_pre_armed_spool() {
    let dir = scratch_dir("worker");
    let spool = Spool::open(dir.join("spool")).expect("open spool");
    let specs = vec![
        JobSpec::new("GTr", "baseline", 96, 64, 0, false).expect("spec"),
        JobSpec::new("GTr", "dtexl", 96, 64, 0, false).expect("spec"),
    ];
    spool.submit(&specs).expect("submit");
    let accepted = spool.accept_incoming();
    assert_eq!(accepted.accepted.len(), 1, "{accepted:?}");
    spool.request_drain().expect("arm drain");

    let journal = dir.join("worker.jsonl");
    let out = Command::new(dtexl_bin())
        .args(["sweep", "--spool"])
        .arg(spool.root())
        .args(["--threads", "1", "--spool-poll-ms", "20"])
        .arg("--journal")
        .arg(&journal)
        .output()
        .expect("run worker");
    assert!(
        out.status.success(),
        "worker failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&journal).expect("worker journal");
    assert_eq!(
        text.lines()
            .filter(|l| l.contains("\"status\":\"ok\""))
            .count(),
        2,
        "journal: {text}"
    );
}

/// A daemon restarted over a drained spool resumes exactly: nothing is
/// re-simulated (the journals already cover batch 1) and newly
/// submitted work still drains to a canon matching a clean union run.
#[test]
fn restarted_daemon_resumes_without_resimulating() {
    let dir = scratch_dir("restart");
    let spool_dir = dir.join("spool");
    submit(&spool_dir, "CCS");
    let mut first = spawn_daemon(&spool_dir, &dir.join("daemon1.log"));
    wait_for_status(&spool_dir, "first daemon drained", |s| {
        s.contains("\"state\":\"drained\"") && s.contains("\"ok\":2")
    });
    sigterm(first.id());
    assert!(first.wait().expect("first daemon exits").success());
    let merged_after_first =
        std::fs::read_to_string(spool_dir.join("merged.jsonl")).expect("merged journal");

    // A graceful drain leaves the marker armed (that is what makes it
    // crash-safe); restarting the service means removing it.
    std::fs::remove_file(spool_dir.join("drain")).expect("clear drain marker");
    submit(&spool_dir, "GTr");
    let mut second = spawn_daemon(&spool_dir, &dir.join("daemon2.log"));
    wait_for_status(&spool_dir, "second daemon drained", |s| {
        s.contains("\"state\":\"drained\"") && s.contains("\"ok\":4")
    });
    sigterm(second.id());
    assert!(second.wait().expect("second daemon exits").success());

    // Batch 1's records survive verbatim — resume skips, it does not
    // re-run — and the union canon matches a clean one-shot sweep.
    let merged = std::fs::read_to_string(spool_dir.join("merged.jsonl")).expect("merged journal");
    for line in merged_after_first.lines() {
        assert!(
            merged.contains(line),
            "batch 1 record lost across restart: {line}"
        );
    }
    assert_eq!(
        canon(&spool_dir.join("merged.jsonl")),
        clean_canon(&dir, "CCS,GTr")
    );
}
