//! Serial vs. parallel equivalence of the frame simulator.
//!
//! The parallel SC-lane path (`PipelineConfig::threads > 1`) traces
//! each core's private L1 on a worker thread and replays the L2-miss
//! streams serially in the order the serial simulator issues them. The
//! DRAM latency model hashes the *global* request index, so any
//! reordering would change latencies — these tests pin the guarantee
//! that every reported metric is bit-identical to the serial reference,
//! across games, schedules, barrier modes and ragged resolutions.

use dtexl::{SimConfig, Simulator};
use dtexl_alloc::{meter_current_thread, AllocMeter};
use dtexl_pipeline::{BarrierMode, FrameSim, PipelineConfig};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::ScheduleConfig;

const MODES: [BarrierMode; 3] = [
    BarrierMode::Coupled,
    BarrierMode::Decoupled,
    BarrierMode::DecoupledBounded { tiles_ahead: 2 },
];

/// Ragged resolutions: neither dimension is a multiple of the 32-pixel
/// tile, so edge tiles are partial in both axes.
const RESOLUTIONS: [(u32, u32); 2] = [(100, 50), (65, 31)];

fn run(
    game: Game,
    schedule: &ScheduleConfig,
    config: &PipelineConfig,
    w: u32,
    h: u32,
) -> dtexl_pipeline::FrameResult {
    let scene = game.scene(&SceneSpec::new(w, h, 0));
    FrameSim::run_with_resolution(&scene, schedule, config, w, h)
}

fn assert_identical(game: Game, schedule: &ScheduleConfig, base: &PipelineConfig, w: u32, h: u32) {
    let serial = PipelineConfig {
        threads: 1,
        ..*base
    };
    let parallel = PipelineConfig {
        threads: 4,
        ..*base
    };
    let a = run(game, schedule, &serial, w, h);
    let b = run(game, schedule, &parallel, w, h);
    let ctx = format!("{game:?} {}x{h} {}", w, schedule.label());
    for mode in MODES {
        assert_eq!(
            a.total_cycles(mode),
            b.total_cycles(mode),
            "cycles diverge under {mode:?}: {ctx}"
        );
        assert_eq!(
            a.energy_events(mode),
            b.energy_events(mode),
            "energy events diverge under {mode:?}: {ctx}"
        );
    }
    assert_eq!(a.total_l2_accesses(), b.total_l2_accesses(), "L2: {ctx}");
    assert_eq!(a.hierarchy, b.hierarchy, "hierarchy stats: {ctx}");
}

#[test]
fn parallel_matches_serial_across_games_schedules_and_resolutions() {
    for game in Game::ALL {
        for schedule in [ScheduleConfig::baseline(), ScheduleConfig::dtexl()] {
            for (w, h) in RESOLUTIONS {
                assert_identical(game, &schedule, &PipelineConfig::default(), w, h);
            }
        }
    }
}

#[test]
fn parallel_matches_serial_in_upper_bound_mode() {
    let base = PipelineConfig {
        upper_bound: true,
        ..PipelineConfig::default()
    };
    for (w, h) in RESOLUTIONS {
        assert_identical(Game::TempleRun, &ScheduleConfig::dtexl(), &base, w, h);
    }
}

#[test]
fn parallel_runs_are_deterministic_across_repeats() {
    // Ten repeats of the same 4-thread run: thread scheduling noise
    // must never leak into the results.
    let config = PipelineConfig {
        threads: 4,
        ..PipelineConfig::default()
    };
    let reference = run(Game::CandyCrush, &ScheduleConfig::dtexl(), &config, 100, 50);
    for rep in 0..9 {
        let again = run(Game::CandyCrush, &ScheduleConfig::dtexl(), &config, 100, 50);
        assert_eq!(
            reference.total_cycles(BarrierMode::Decoupled),
            again.total_cycles(BarrierMode::Decoupled),
            "repeat {rep} diverged"
        );
        assert_eq!(
            reference.hierarchy, again.hierarchy,
            "repeat {rep} diverged"
        );
        assert_eq!(
            reference.energy_events(BarrierMode::Decoupled),
            again.energy_events(BarrierMode::Decoupled),
            "repeat {rep} diverged"
        );
    }
}

#[test]
fn sequence_fanout_matches_serial_loop() {
    let serial = SimConfig::dtexl(Game::Maze).with_resolution(100, 50);
    let mut threaded = serial;
    threaded.pipeline.threads = 4;
    assert_eq!(
        Simulator::simulate_sequence(&serial, 4),
        Simulator::simulate_sequence(&threaded, 4),
        "frame fan-out must preserve every per-frame metric"
    );
}

#[test]
fn fragment_stage_does_not_allocate_per_quad() {
    // The early-Z survivor path used to clone every surviving `Quad`
    // into per-SC re-merge buffers; on the densest game (CandyCrush,
    // ~150k survivors at 480×192) the frame's high-water mark measured
    // 15_450_568 bytes before the fix. The prepared-quad arena path
    // reuses flat index buffers and measures ~12.0 MB despite now
    // retaining the whole schedule-independent prefix for the frame.
    // 14 MB splits the two: far above normal jitter, well below the
    // per-quad-clone cost coming back. Pinned to one thread: the
    // per-quad-clone regression is equally visible serially, and the
    // parallel path's (legitimately higher, lane-buffer-bearing) peak
    // is covered by `lane_worker_allocations_charge_the_job_meter`.
    let scene = Game::CandyCrush.scene(&SceneSpec::new(480, 192, 0));
    let meter = AllocMeter::new();
    let guard = meter_current_thread(&meter);
    let serial = PipelineConfig {
        threads: 1,
        ..PipelineConfig::default()
    };
    let r = FrameSim::run_with_resolution(&scene, &ScheduleConfig::dtexl(), &serial, 480, 192);
    drop(guard);
    assert!(r.total_l2_accesses() > 0, "frame must have run");
    assert!(
        meter.peak_bytes() < 14_000_000,
        "fragment-stage peak allocation regressed: {} bytes",
        meter.peak_bytes()
    );
}

#[test]
fn lane_worker_allocations_charge_the_job_meter() {
    // The fragment stage's lane workers run on scoped threads; before
    // the meter handoff their allocations were invisible to the job's
    // `AllocMeter`, so a parallel sweep under-reported its high-water
    // mark by the entire fragment working set (and per-job memory
    // budgets silently failed to bind). With the handoff, the metered
    // parallel peak on a heavy game must be at least the serial peak:
    // the same buffers are charged, plus whatever per-lane buffers
    // live concurrently (measured: ~12.0 MB serial vs ~14.7 MB at 4
    // threads on this scene).
    let scene = Game::CandyCrush.scene(&SceneSpec::new(480, 192, 0));
    let peak = |threads: usize| {
        let meter = AllocMeter::new();
        let guard = meter_current_thread(&meter);
        let config = PipelineConfig {
            threads,
            ..PipelineConfig::default()
        };
        let r = FrameSim::run_with_resolution(&scene, &ScheduleConfig::dtexl(), &config, 480, 192);
        drop(guard);
        assert!(r.total_l2_accesses() > 0, "frame must have run");
        meter.peak_bytes()
    };
    let serial = peak(1);
    let parallel = peak(4);
    assert!(
        parallel >= serial,
        "lane workers stopped charging the job meter: parallel peak {parallel} < serial peak \
         {serial}"
    );
}

#[test]
fn edge_tiles_flush_only_their_screen_intersection() {
    // 100×50 with 32-pixel tiles: 4×2 tile grid covering 128×64 pixels.
    // Flushed color traffic must charge the 100×50 screen area only —
    // 4 bytes per pixel rounded up to 64-byte lines *per tile*, not the
    // full 128×64 the tile grid spans.
    let r = run(
        Game::GravityTetris,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        100,
        50,
    );
    let mut expected = 0u64;
    for ty in 0..2u64 {
        for tx in 0..4u64 {
            let w = 32.min(100 - tx * 32);
            let h = 32.min(50 - ty * 32);
            expected += (w * h * 4).div_ceil(64);
        }
    }
    assert_eq!(r.framebuffer_lines(), expected);
    let full_tiles = 8 * (32u64 * 32 * 4).div_ceil(64);
    assert!(
        r.framebuffer_lines() < full_tiles,
        "partial edge tiles must not be charged full-tile flushes"
    );
}
