//! Golden regression values for the calibrated simulator.
//!
//! The whole stack is deterministic, so these exact numbers (at 512×256,
//! frame 0) must reproduce bit-for-bit. If an intentional change to the
//! generators, cache model or timing model moves them, re-baseline the
//! constants *and* re-run the full-resolution suite to confirm the
//! paper-shape targets in EXPERIMENTS.md still hold.

use dtexl_pipeline::{BarrierMode, FrameSim, PipelineConfig};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::ScheduleConfig;

const W: u32 = 512;
const H: u32 = 256;

struct Golden {
    game: Game,
    base_cycles: u64,
    base_l2: u64,
    quads_shaded: u64,
    dtexl_cycles: u64,
    dtexl_l2: u64,
}

const GOLDEN: [Golden; 3] = [
    Golden {
        game: Game::CandyCrush,
        base_cycles: 1_687_505,
        base_l2: 148_673,
        quads_shaded: 158_911,
        dtexl_cycles: 1_464_351,
        dtexl_l2: 60_391,
    },
    Golden {
        game: Game::TempleRun,
        base_cycles: 304_037,
        base_l2: 30_005,
        quads_shaded: 44_953,
        dtexl_cycles: 268_482,
        dtexl_l2: 18_550,
    },
    Golden {
        game: Game::GravityTetris,
        base_cycles: 384_307,
        base_l2: 53_522,
        quads_shaded: 49_976,
        dtexl_cycles: 315_851,
        dtexl_l2: 27_402,
    },
];

#[test]
fn calibrated_metrics_are_bit_stable() {
    for g in &GOLDEN {
        let scene = g.game.scene(&SceneSpec::new(W, H, 0));
        let cfg = PipelineConfig::default();
        let base = FrameSim::run_with_resolution(&scene, &ScheduleConfig::baseline(), &cfg, W, H);
        let dtexl = FrameSim::run_with_resolution(&scene, &ScheduleConfig::dtexl(), &cfg, W, H);
        let alias = g.game.alias();
        assert_eq!(
            base.total_cycles(BarrierMode::Coupled),
            g.base_cycles,
            "{alias} baseline cycles drifted"
        );
        assert_eq!(
            base.total_l2_accesses(),
            g.base_l2,
            "{alias} baseline L2 drifted"
        );
        assert_eq!(
            base.total_quads_shaded(),
            g.quads_shaded,
            "{alias} shaded quads drifted"
        );
        assert_eq!(
            dtexl.total_cycles(BarrierMode::Decoupled),
            g.dtexl_cycles,
            "{alias} DTexL cycles drifted"
        );
        assert_eq!(
            dtexl.total_l2_accesses(),
            g.dtexl_l2,
            "{alias} DTexL L2 drifted"
        );
    }
}

#[test]
fn golden_values_encode_the_paper_shape() {
    // Self-check on the constants: the recorded values themselves show
    // the headline effects.
    for g in &GOLDEN {
        let speedup = g.base_cycles as f64 / g.dtexl_cycles as f64;
        let l2_dec = 1.0 - g.dtexl_l2 as f64 / g.base_l2 as f64;
        assert!(
            (1.05..1.40).contains(&speedup),
            "{}: speedup {speedup}",
            g.game.alias()
        );
        assert!(
            (0.30..0.70).contains(&l2_dec),
            "{}: L2 decrease {l2_dec}",
            g.game.alias()
        );
    }
}
