//! Golden regression values for the calibrated simulator.
//!
//! The whole stack is deterministic, so these exact numbers (at 512×256,
//! frame 0) must reproduce bit-for-bit. If an intentional change to the
//! generators, cache model or timing model moves them, re-baseline the
//! constants *and* re-run the full-resolution suite to confirm the
//! paper-shape targets in EXPERIMENTS.md still hold.
//!
//! Last re-baseline, two intentional changes:
//! * texture heap allocation now rounds each texture's base up to a
//!   cache-line boundary (the generator's old comment claimed
//!   footprints were already 64-byte multiples; the mip tail made that
//!   false) — line-aligned mip levels straddle fewer lines, so line
//!   counts, L2 traffic and cycle totals all dropped slightly;
//! * transforms and scene generation use `dtexl_gmath::trig` instead
//!   of libm sin/cos/tan, so these constants are now identical across
//!   build profiles (libm calls constant-fold against the *compiler's*
//!   math library under LTO, which drifted from the runtime libm by an
//!   ulp and silently forked debug and release metrics).

use dtexl_pipeline::{BarrierMode, FrameSim, PipelineConfig};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::ScheduleConfig;

const W: u32 = 512;
const H: u32 = 256;

struct Golden {
    game: Game,
    base_cycles: u64,
    base_l2: u64,
    quads_shaded: u64,
    dtexl_cycles: u64,
    dtexl_l2: u64,
}

const GOLDEN: [Golden; 3] = [
    Golden {
        game: Game::CandyCrush,
        base_cycles: 1_665_749,
        base_l2: 140_186,
        quads_shaded: 158_911,
        dtexl_cycles: 1_453_234,
        dtexl_l2: 56_043,
    },
    Golden {
        game: Game::TempleRun,
        base_cycles: 299_014,
        base_l2: 28_366,
        quads_shaded: 44_953,
        dtexl_cycles: 265_853,
        dtexl_l2: 17_692,
    },
    Golden {
        game: Game::GravityTetris,
        base_cycles: 375_588,
        base_l2: 50_610,
        quads_shaded: 49_976,
        dtexl_cycles: 311_550,
        dtexl_l2: 25_781,
    },
];

#[test]
fn calibrated_metrics_are_bit_stable() {
    for g in &GOLDEN {
        let scene = g.game.scene(&SceneSpec::new(W, H, 0));
        let cfg = PipelineConfig::default();
        let base = FrameSim::run_with_resolution(&scene, &ScheduleConfig::baseline(), &cfg, W, H);
        let dtexl = FrameSim::run_with_resolution(&scene, &ScheduleConfig::dtexl(), &cfg, W, H);
        let alias = g.game.alias();
        assert_eq!(
            base.total_cycles(BarrierMode::Coupled),
            g.base_cycles,
            "{alias} baseline cycles drifted"
        );
        assert_eq!(
            base.total_l2_accesses(),
            g.base_l2,
            "{alias} baseline L2 drifted"
        );
        assert_eq!(
            base.total_quads_shaded(),
            g.quads_shaded,
            "{alias} shaded quads drifted"
        );
        assert_eq!(
            dtexl.total_cycles(BarrierMode::Decoupled),
            g.dtexl_cycles,
            "{alias} DTexL cycles drifted"
        );
        assert_eq!(
            dtexl.total_l2_accesses(),
            g.dtexl_l2,
            "{alias} DTexL L2 drifted"
        );
    }
}

#[test]
fn golden_values_encode_the_paper_shape() {
    // Self-check on the constants: the recorded values themselves show
    // the headline effects.
    for g in &GOLDEN {
        let speedup = g.base_cycles as f64 / g.dtexl_cycles as f64;
        let l2_dec = 1.0 - g.dtexl_l2 as f64 / g.base_l2 as f64;
        assert!(
            (1.05..1.40).contains(&speedup),
            "{}: speedup {speedup}",
            g.game.alias()
        );
        assert!(
            (0.30..0.70).contains(&l2_dec),
            "{}: L2 decrease {l2_dec}",
            g.game.alias()
        );
    }
}
