//! End-to-end resilience of the sweep engine: a sweep containing an
//! invalid job and a wedged (timed-out) job must still complete every
//! healthy job with bit-identical results, report the failures, and
//! resume from its journal re-running only what failed.

use dtexl::experiments::{Lab, Setup};
use dtexl::sweep::{
    completed_keys, run_sweep, JobError, JobStatus, RetryPolicy, SweepJob, SweepOptions,
};
use dtexl_pipeline::{BarrierMode, FrameResult, PipelineConfig};
use dtexl_scene::Game;
use dtexl_sched::ScheduleConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const W: u32 = 192;
const H: u32 = 96;

fn job(game: Game, schedule: ScheduleConfig) -> SweepJob {
    SweepJob::new(game, schedule, false, W, H, 0)
}

fn healthy_jobs() -> Vec<SweepJob> {
    vec![
        job(Game::CandyCrush, ScheduleConfig::baseline()),
        job(Game::CandyCrush, ScheduleConfig::dtexl()),
        job(Game::GravityTetris, ScheduleConfig::baseline()),
        job(Game::GravityTetris, ScheduleConfig::dtexl()),
    ]
}

fn collect_ok(
    jobs: &[SweepJob],
    opts: &SweepOptions,
) -> (dtexl::sweep::SweepReport, HashMap<String, FrameResult>) {
    let results = Mutex::new(HashMap::new());
    let report = run_sweep(jobs, opts, |job, result| {
        results.lock().unwrap().insert(job.key(), result);
    })
    .unwrap();
    (report, results.into_inner().unwrap())
}

/// The acceptance scenario: one invalid job, one wedged job, four
/// healthy jobs. Under `keep_going` the sweep finishes, the failures
/// are typed, and every healthy result is bit-identical to a clean
/// sweep's.
#[test]
fn keep_going_isolates_failures_and_preserves_results() {
    let clean_opts = SweepOptions {
        keep_going: true,
        ..SweepOptions::default()
    };
    let (clean_report, clean_results) = collect_ok(&healthy_jobs(), &clean_opts);
    assert!(clean_report.is_success());

    let mut invalid = job(Game::TempleRun, ScheduleConfig::baseline());
    invalid.pipeline.num_sc = 8; // rejected by PipelineConfig::validate
    let mut wedged = job(Game::TempleRun, ScheduleConfig::dtexl());
    wedged.pipeline.fault.wall_stall_ms = 60_000; // far beyond the timeout

    let mut jobs = healthy_jobs();
    jobs.insert(1, invalid);
    jobs.insert(3, wedged);

    let opts = SweepOptions {
        keep_going: true,
        job_timeout: Some(Duration::from_secs(5)),
        ..SweepOptions::default()
    };
    let (report, results) = collect_ok(&jobs, &opts);

    assert!(!report.is_success());
    assert!(!report.aborted, "keep_going never aborts");
    assert_eq!(report.completed(), 4);
    let failed = report.failed();
    assert_eq!(failed.len(), 2);
    let by_key: HashMap<_, _> = failed.iter().map(|r| (r.key.clone(), *r)).collect();
    assert!(matches!(
        by_key[&invalid.key()].error,
        Some(JobError::Invalid(_))
    ));
    assert!(matches!(
        by_key[&wedged.key()].error,
        Some(JobError::TimedOut { .. })
    ));
    let summary = report.summary();
    assert!(summary.contains("2 failed"), "summary: {summary}");
    assert!(summary.contains("num_sc = 8"), "summary: {summary}");
    assert!(summary.contains("timeout"), "summary: {summary}");

    // Healthy results are bit-identical to the clean sweep's.
    assert_eq!(results.len(), 4);
    for (key, clean) in &clean_results {
        let faulty = &results[key];
        assert_eq!(clean.durations, faulty.durations, "{key}");
        assert_eq!(clean.hierarchy, faulty.hierarchy, "{key}");
        assert_eq!(
            clean.total_cycles(BarrierMode::Decoupled),
            faulty.total_cycles(BarrierMode::Decoupled),
            "{key}"
        );
    }
}

/// Resume re-runs only the jobs that failed: the journal marks the
/// healthy jobs `ok`, and a second sweep over the same job list (with
/// the wedge removed) executes exactly the previously-failed jobs.
#[test]
fn resume_reruns_only_failed_jobs() {
    let dir = std::env::temp_dir().join(format!("dtexl_sweep_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&journal);

    let mut wedged = job(Game::TempleRun, ScheduleConfig::dtexl());
    wedged.pipeline.fault.wall_stall_ms = 60_000;
    let mut jobs = healthy_jobs();
    jobs.push(wedged);

    let opts = SweepOptions {
        keep_going: true,
        job_timeout: Some(Duration::from_secs(5)),
        journal: Some(journal.clone()),
        ..SweepOptions::default()
    };
    let (first, _) = collect_ok(&jobs, &opts);
    assert_eq!(first.completed(), 4);
    assert_eq!(first.failed().len(), 1);

    let text = std::fs::read_to_string(&journal).unwrap();
    let done = completed_keys(&text);
    assert_eq!(done.len(), 4, "four ok entries: {text}");
    assert!(!done.contains(&wedged.key()));

    // Un-wedge the job (same key: the fault plan is not part of it)
    // and resume: only the previously-failed job runs.
    let fixed = job(Game::TempleRun, ScheduleConfig::dtexl());
    assert_eq!(fixed.key(), wedged.key());
    *jobs.last_mut().unwrap() = fixed;

    let opts = SweepOptions {
        resume: true,
        ..opts
    };
    let ran = AtomicUsize::new(0);
    let keys_run = Mutex::new(Vec::new());
    let second = run_sweep(&jobs, &opts, |job, _| {
        ran.fetch_add(1, Ordering::Relaxed);
        keys_run.lock().unwrap().push(job.key());
    })
    .unwrap();
    assert!(second.is_success());
    assert_eq!(ran.load(Ordering::Relaxed), 1, "only the failed job re-ran");
    assert_eq!(keys_run.lock().unwrap().as_slice(), &[fixed.key()]);
    assert_eq!(
        second
            .records
            .iter()
            .filter(|r| r.status == JobStatus::Skipped)
            .count(),
        4
    );

    // The journal now records everything as complete.
    let done = completed_keys(&std::fs::read_to_string(&journal).unwrap());
    assert_eq!(done.len(), 5);
    std::fs::remove_dir_all(&dir).ok();
}

/// Retries re-attempt transient failures with the configured budget
/// and eventually give up; attempt counts land in the report.
#[test]
fn retries_consume_their_budget_then_fail() {
    let mut wedged = job(Game::CandyCrush, ScheduleConfig::baseline());
    wedged.pipeline.fault.wall_stall_ms = 60_000;
    let opts = SweepOptions {
        keep_going: true,
        job_timeout: Some(Duration::from_millis(50)),
        retry: RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(1),
        },
        ..SweepOptions::default()
    };
    let (report, _) = collect_ok(&[wedged], &opts);
    let r = &report.records[0];
    assert_eq!(r.status, JobStatus::Failed);
    assert_eq!(r.attempts, 3, "initial try + 2 retries");
}

/// `Lab::try_ensure` carries the same guarantees through the figure
/// harness: failures are isolated, successes are cached and
/// `try_result` surfaces the typed error.
#[test]
fn lab_try_ensure_is_fault_tolerant() {
    let mut setup = Setup::quick();
    setup.width = W;
    setup.height = H;
    setup.games.truncate(1);
    let game = setup.games[0];

    // A lab whose base pipeline wedges every job: try_result times out.
    let mut stalling = PipelineConfig::default();
    stalling.fault.wall_stall_ms = 60_000;
    let lab = Lab::with_pipeline(setup.clone(), stalling);
    let opts = SweepOptions {
        keep_going: true,
        job_timeout: Some(Duration::from_millis(100)),
        ..SweepOptions::default()
    };
    let err = lab
        .try_result(game, ScheduleConfig::dtexl(), false, &opts)
        .unwrap_err();
    assert!(matches!(err, JobError::TimedOut { .. }));

    // A healthy lab: try_result succeeds and the result is cached (a
    // second call must not simulate again — `ensure` would no-op).
    let lab = Lab::new(setup);
    let opts = SweepOptions {
        keep_going: true,
        ..SweepOptions::default()
    };
    let a = lab
        .try_result(game, ScheduleConfig::dtexl(), false, &opts)
        .unwrap();
    let report = lab
        .try_ensure(&[(game, ScheduleConfig::dtexl(), false)], &opts)
        .unwrap();
    assert!(report.records.is_empty(), "cache hit: nothing to run");
    let b = lab.result(game, ScheduleConfig::dtexl(), false);
    assert!(std::sync::Arc::ptr_eq(&a, &b));
}
