//! Cross-crate property tests: arbitrary (non-game) scenes through the
//! whole pipeline.

use dtexl::gmath::{Mat4, Vec2, Vec3};
use dtexl::texture::TextureDesc;
use dtexl_pipeline::{BarrierMode, FrameSim, PipelineConfig};
use dtexl_scene::{DrawCommand, Scene, ShaderProfile, Vertex, TEXTURE_BASE_ADDR};
use dtexl_sched::{AssignMode, QuadGrouping, ScheduleConfig, TileOrder};
use proptest::prelude::*;

/// Strategy: a random screen-space triangle-list scene over one
/// texture.
fn arb_scene(max_draws: usize) -> impl Strategy<Value = Scene> {
    let tri = (
        -32.0f32..160.0,
        -32.0f32..160.0,
        1.0f32..96.0,
        1.0f32..96.0,
        0.05f32..0.95,
        any::<bool>(),
        0u8..3,
    );
    proptest::collection::vec(tri, 1..max_draws).prop_map(|tris| {
        let mut scene = Scene {
            textures: vec![TextureDesc::new(0, 128, 128, TEXTURE_BASE_ADDR)],
            ..Scene::default()
        };
        // Screen-space ortho over a 128×128 viewport.
        let ortho = Mat4::orthographic(0.0, 128.0, 128.0, 0.0, 0.1, 10.0);
        for (x, y, w, h, z, opaque, shader) in tris {
            let first = scene.vertices.len() as u32;
            let uv = |u: f32, v: f32| Vec2::new(u, v);
            let p = |px: f32, py: f32| Vec3::new(px, py, -1.0 - z);
            for (pos, t) in [
                (p(x, y), uv(0.0, 0.0)),
                (p(x + w, y), uv(w / 128.0, 0.0)),
                (p(x, y + h), uv(0.0, h / 128.0)),
            ] {
                scene.vertices.push(Vertex::new(pos, t));
            }
            scene.draws.push(DrawCommand {
                first_vertex: first,
                vertex_count: 3,
                texture: 0,
                shader: match shader {
                    0 => ShaderProfile::simple(),
                    1 => ShaderProfile::standard(),
                    _ => ShaderProfile::heavy(),
                },
                transform: ortho,
                opaque,
                uv_scale: 1.0,
                depth_mode: dtexl_scene::DepthMode::Early,
            });
        }
        scene
    })
}

fn arb_schedule() -> impl Strategy<Value = ScheduleConfig> {
    (
        proptest::sample::select(QuadGrouping::ALL.to_vec()),
        prop_oneof![
            Just(TileOrder::Scanline),
            Just(TileOrder::SOrder),
            Just(TileOrder::ZOrder),
            Just(TileOrder::HILBERT8),
        ],
        prop_oneof![
            Just(AssignMode::Const),
            Just(AssignMode::Flip1),
            Just(AssignMode::Flip2),
            Just(AssignMode::Flip3),
        ],
    )
        .prop_map(|(grouping, order, assignment)| ScheduleConfig {
            grouping,
            order,
            assignment,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any scene under any schedule simulates without panicking and
    /// preserves the cross-stage invariants.
    #[test]
    fn pipeline_invariants(scene in arb_scene(12), sched in arb_schedule()) {
        prop_assume!(scene.validate().is_ok());
        let r = FrameSim::run_with_resolution(&scene, &sched, &PipelineConfig::default(), 128, 128);
        let rasterized: u64 = r.tiles.iter()
            .map(|t| t.quads_rasterized.iter().map(|&q| u64::from(q)).sum::<u64>())
            .sum();
        prop_assert!(r.total_quads_shaded() <= rasterized);
        prop_assert_eq!(r.shader.quads, r.total_quads_shaded());
        prop_assert_eq!(r.hierarchy.l1_misses(), r.hierarchy.l2.accesses);
        prop_assert!(r.total_cycles(BarrierMode::Decoupled) <= r.total_cycles(BarrierMode::Coupled));
    }

    /// The functional outcome (shaded quads, texture traffic) depends
    /// on the grouping only through the partition, not on the tile
    /// order or assignment: total shaded quads are schedule-invariant.
    #[test]
    fn shaded_quads_schedule_invariant(scene in arb_scene(10), a in arb_schedule(), b in arb_schedule()) {
        prop_assume!(scene.validate().is_ok());
        let cfg = PipelineConfig::default();
        let ra = FrameSim::run_with_resolution(&scene, &a, &cfg, 128, 128);
        let rb = FrameSim::run_with_resolution(&scene, &b, &cfg, 128, 128);
        prop_assert_eq!(ra.total_quads_shaded(), rb.total_quads_shaded());
        prop_assert_eq!(ra.shader.tex_instructions, rb.shader.tex_instructions);
    }

    /// Simulation is a pure function of (scene, schedule, config).
    #[test]
    fn determinism(scene in arb_scene(8), sched in arb_schedule()) {
        prop_assume!(scene.validate().is_ok());
        let cfg = PipelineConfig::default();
        let a = FrameSim::run_with_resolution(&scene, &sched, &cfg, 128, 128);
        let b = FrameSim::run_with_resolution(&scene, &sched, &cfg, 128, 128);
        prop_assert_eq!(a.total_cycles(BarrierMode::Coupled), b.total_cycles(BarrierMode::Coupled));
        prop_assert_eq!(a.total_l2_accesses(), b.total_l2_accesses());
        prop_assert_eq!(a.hierarchy, b.hierarchy);
    }

    /// Opaque-only scenes drawn front-to-back (increasing z in draw
    /// order ⇒ our generator's z is per-draw) never shade more quads
    /// than the same scene with early-Z-defeating transparency.
    #[test]
    fn transparency_never_reduces_work(scene in arb_scene(10)) {
        prop_assume!(scene.validate().is_ok());
        let cfg = PipelineConfig::default();
        let sched = ScheduleConfig::baseline();
        let opaque_scene = {
            let mut s = scene.clone();
            for d in &mut s.draws { d.opaque = true; }
            s
        };
        let blended_scene = {
            let mut s = scene;
            for d in &mut s.draws { d.opaque = false; }
            s
        };
        let o = FrameSim::run_with_resolution(&opaque_scene, &sched, &cfg, 128, 128);
        let b = FrameSim::run_with_resolution(&blended_scene, &sched, &cfg, 128, 128);
        prop_assert!(o.total_quads_shaded() <= b.total_quads_shaded());
    }
}
