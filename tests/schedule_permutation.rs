//! Schedule-permutation race harness.
//!
//! The parallel fragment stage lets each SC lane trace its private L1
//! on a worker thread while the shared L2/DRAM levels are replayed
//! serially. Its determinism claim is that worker *completion order*
//! is irrelevant: the bounded channels plus the tile-major, SC-
//! ascending replay impose the serial request order no matter how the
//! OS schedules the workers.
//!
//! These tests attack that claim directly. [`FaultPlan::
//! trace_send_jitter_ns`] injects a seeded wall-clock delay before
//! every trace handoff, uniform per `(tile, lane)`, which permutes the
//! completion order adversarially — some lanes race far ahead, others
//! stall mid-tile. Under at least eight distinct seeds the frame
//! result must stay bit-identical to the unjittered serial reference,
//! and the debug-assert replay-order checker in the pipeline (compiled
//! into these dev builds) verifies the shared levels never observe an
//! out-of-order trace.

use dtexl_pipeline::{BarrierMode, FaultPlan, FrameResult, FrameSim, PipelineConfig};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::ScheduleConfig;

const MODES: [BarrierMode; 3] = [
    BarrierMode::Coupled,
    BarrierMode::Decoupled,
    BarrierMode::DecoupledBounded { tiles_ahead: 2 },
];

/// Eight adversarial permutation seeds (plus the degenerate zero seed
/// in `the_zero_seed_also_holds`): arbitrary but fixed, so failures
/// replay exactly.
const SEEDS: [u64; 8] = [
    1,
    42,
    0xdead_beef,
    0x1234_5678_9abc_def0,
    7,
    u64::MAX,
    0x00ff_00ff_00ff_00ff,
    0x8000_0000_0000_0001,
];

fn run(
    game: Game,
    schedule: &ScheduleConfig,
    config: &PipelineConfig,
    w: u32,
    h: u32,
) -> FrameResult {
    let scene = game.scene(&SceneSpec::new(w, h, 0));
    FrameSim::run_with_resolution(&scene, schedule, config, w, h)
}

/// Every metric the simulator reports must match the serial reference
/// bit-for-bit.
fn assert_bit_identical(serial: &FrameResult, jittered: &FrameResult, ctx: &str) {
    assert_eq!(serial.durations, jittered.durations, "durations: {ctx}");
    assert_eq!(serial.hierarchy, jittered.hierarchy, "hierarchy: {ctx}");
    assert_eq!(serial.shader, jittered.shader, "shader stats: {ctx}");
    assert_eq!(serial.tiles, jittered.tiles, "tile records: {ctx}");
    for mode in MODES {
        assert_eq!(
            serial.total_cycles(mode),
            jittered.total_cycles(mode),
            "cycles under {mode:?}: {ctx}"
        );
        assert_eq!(
            serial.energy_events(mode),
            jittered.energy_events(mode),
            "energy under {mode:?}: {ctx}"
        );
    }
    assert_eq!(
        serial.total_l2_accesses(),
        jittered.total_l2_accesses(),
        "L2 accesses: {ctx}"
    );
}

fn jittered_config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        threads: 4,
        fault: FaultPlan {
            seed,
            // Up to 100µs per (tile, lane) handoff: long enough that
            // lane completion order genuinely scrambles, short enough
            // to keep the suite fast.
            trace_send_jitter_ns: 100_000,
            ..FaultPlan::default()
        },
        ..PipelineConfig::default()
    }
}

/// The acceptance gate: ≥ 8 distinct seeded completion orders, all
/// bit-identical to `threads = 1`.
#[test]
fn eight_adversarial_completion_orders_are_bit_identical_to_serial() {
    let schedule = ScheduleConfig::dtexl();
    let serial = run(
        Game::GravityTetris,
        &schedule,
        &PipelineConfig::default(),
        128,
        64,
    );
    for seed in SEEDS {
        let jittered = run(
            Game::GravityTetris,
            &schedule,
            &jittered_config(seed),
            128,
            64,
        );
        assert_bit_identical(&serial, &jittered, &format!("seed {seed:#x}"));
    }
}

/// The baseline schedule and a ragged resolution take a different path
/// through the tile traversal; the guarantee must hold there too.
#[test]
fn permutations_hold_across_schedules_and_ragged_edges() {
    for (game, schedule, w, h) in [
        (Game::CandyCrush, ScheduleConfig::baseline(), 100, 50),
        (Game::TempleRun, ScheduleConfig::dtexl(), 65, 31),
    ] {
        let serial = run(game, &schedule, &PipelineConfig::default(), w, h);
        for seed in [3u64, 0xabcd_ef01, u64::MAX / 3] {
            let jittered = run(game, &schedule, &jittered_config(seed), w, h);
            assert_bit_identical(
                &serial,
                &jittered,
                &format!("{game:?} {}x{h} seed {seed:#x}", w),
            );
        }
    }
}

/// Jitter must not leak into recorded metrics even when combined with
/// the *modeled* faults (lane stall + DRAM spikes): the jittered
/// faulty run equals the serial faulty run.
#[test]
fn jitter_composes_with_modeled_faults() {
    use dtexl_pipeline::{DramSpike, LaneStall};
    let modeled = FaultPlan {
        seed: 11,
        lane_stall: Some(LaneStall {
            lane: 2,
            cycles: 5_000,
        }),
        dram_spike: Some(DramSpike {
            period: 7,
            extra_cycles: 40,
        }),
        ..FaultPlan::default()
    };
    let serial_cfg = PipelineConfig {
        fault: modeled,
        ..PipelineConfig::default()
    };
    let jittered_cfg = PipelineConfig {
        threads: 4,
        fault: FaultPlan {
            trace_send_jitter_ns: 100_000,
            ..modeled
        },
        ..PipelineConfig::default()
    };
    let schedule = ScheduleConfig::dtexl();
    let serial = run(Game::SonicDash, &schedule, &serial_cfg, 128, 64);
    let jittered = run(Game::SonicDash, &schedule, &jittered_cfg, 128, 64);
    assert_bit_identical(&serial, &jittered, "modeled faults + jitter");
}

/// The zero seed (and a jitter-free parallel run) are the degenerate
/// corners of the harness; both must hold trivially.
#[test]
fn the_zero_seed_also_holds() {
    let schedule = ScheduleConfig::baseline();
    let serial = run(Game::Maze, &schedule, &PipelineConfig::default(), 128, 64);
    let zero = run(Game::Maze, &schedule, &jittered_config(0), 128, 64);
    assert_bit_identical(&serial, &zero, "seed 0");
    let no_jitter = PipelineConfig {
        threads: 4,
        ..PipelineConfig::default()
    };
    let plain = run(Game::Maze, &schedule, &no_jitter, 128, 64);
    assert_bit_identical(&serial, &plain, "no jitter");
}
