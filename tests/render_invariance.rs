//! The paper's correctness requirement, asserted end to end: quad
//! scheduling, tile reordering, subtile flipping and barrier
//! decoupling must never change the rendered image.

use dtexl_pipeline::{PipelineConfig, Renderer};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::{AssignMode, NamedMapping, QuadGrouping, ScheduleConfig, TileOrder};

const W: u32 = 192;
const H: u32 = 128;

fn digest(game: Game, sched: &ScheduleConfig) -> u64 {
    let scene = game.scene(&SceneSpec::new(W, H, 0));
    Renderer::render(&scene, sched, &PipelineConfig::default(), W, H).digest()
}

#[test]
fn every_game_renders_identically_under_every_named_mapping() {
    for game in Game::ALL {
        let reference = digest(game, &ScheduleConfig::baseline());
        for mapping in NamedMapping::FIG16 {
            assert_eq!(
                digest(game, &mapping.config()),
                reference,
                "{} changed {}'s image",
                mapping.name(),
                game.alias()
            );
        }
    }
}

#[test]
fn every_grouping_and_order_is_image_invariant() {
    let game = Game::TempleRun;
    let reference = digest(game, &ScheduleConfig::baseline());
    for grouping in QuadGrouping::ALL {
        for order in [
            TileOrder::Scanline,
            TileOrder::SOrder,
            TileOrder::ZOrder,
            TileOrder::HILBERT8,
        ] {
            for assignment in [AssignMode::Const, AssignMode::Flip2, AssignMode::Flip3] {
                let sched = ScheduleConfig {
                    grouping,
                    order,
                    assignment,
                };
                assert_eq!(
                    digest(game, &sched),
                    reference,
                    "{} changed the image",
                    sched.label()
                );
            }
        }
    }
}

#[test]
fn late_z_preserves_the_image() {
    // Late-Z shades more but must *display* the same result.
    let mut scene = Game::Maze.scene(&SceneSpec::new(W, H, 0));
    let cfg = PipelineConfig::default();
    let early = Renderer::render(&scene, &ScheduleConfig::baseline(), &cfg, W, H);
    for d in &mut scene.draws {
        d.depth_mode = dtexl_scene::DepthMode::Late;
    }
    let late = Renderer::render(&scene, &ScheduleConfig::baseline(), &cfg, W, H);
    assert_eq!(early.digest(), late.digest());
}
