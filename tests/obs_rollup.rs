//! Per-job probe rollups: determinism, journal round-trip, and the
//! `profile --diff` stall-delta view.
//!
//! The `ObsRollup` a `--with-obs` sweep journals per job folds the
//! exact event stream tests/obs_determinism.rs pins — so it must be
//! bit-identical across worker thread counts, schedules and memoized
//! vs fresh execution, must survive the journal's merge/resume union
//! verbatim, and must stay invisible to `sweep canon`. The golden diff
//! table re-uses the GTr 96x64 stall goldens of obs_determinism.rs:
//! re-baseline the two files together.

use dtexl::obs::{ObsRollup, Stage};
use dtexl::profile::{stall_diff_table, FrameProfile};
use dtexl::sweep::{
    canon_text, latest_entries, merge_journals, run_sweep, PrefixCache, Shard, SweepJob,
    SweepOptions,
};
use dtexl::SimConfig;
use dtexl_pipeline::PipelineConfig;
use dtexl_scene::Game;
use dtexl_sched::ScheduleConfig;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtexl_obs_rollup_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn job_with_threads(game: Game, schedule: ScheduleConfig, threads: usize) -> SweepJob {
    let mut job = SweepJob::new(game, schedule, false, 100, 50, 0);
    job.pipeline = PipelineConfig {
        threads,
        ..PipelineConfig::default()
    };
    job
}

/// The rollup is a pure function of the job: thread count, memoization
/// and cache temperature (cold build vs warm hit) must all produce the
/// same bits. 100x50 is ragged in both axes, so the subtile split —
/// the part worker threads actually race over — is maximally
/// irregular.
#[test]
fn rollup_is_bit_identical_across_threads_schedules_and_memoization() {
    for schedule in [ScheduleConfig::baseline(), ScheduleConfig::dtexl()] {
        let reference = job_with_threads(Game::CandyCrush, schedule, 1)
            .simulate_rollup(None)
            .expect("valid job")
            .1;
        assert_ne!(
            reference,
            ObsRollup::default(),
            "probes recorded nothing under {}",
            schedule.label()
        );
        for threads in [1, 4] {
            let job = job_with_threads(Game::CandyCrush, schedule, threads);
            let (_, fresh) = job.simulate_rollup(None).expect("valid job");
            let cache = PrefixCache::new(None);
            let (_, cold) = job.simulate_rollup(Some(&cache)).expect("valid job");
            let (_, warm) = job.simulate_rollup(Some(&cache)).expect("valid job");
            assert_eq!(cache.stats().hits, 1, "second memoized run must hit");
            for (label, rollup) in [
                ("fresh", fresh),
                ("memoized-cold", cold),
                ("memoized-warm", warm),
            ] {
                assert_eq!(
                    rollup,
                    reference,
                    "{label} rollup diverges at {threads} threads under {}",
                    schedule.label()
                );
            }
        }
    }
}

/// `--with-obs` journal lines round-trip the rollup bit-exactly, and
/// the `obs` object survives the full journal lifecycle: shard
/// journals → merge, then a resumed sweep whose `skipped` lines must
/// not clobber the merged `ok` records. Canon stays byte-identical to
/// an unprobed sweep's.
#[test]
fn journal_obs_survives_merge_and_resume() {
    let dir = scratch_dir("journal");
    let jobs: Vec<SweepJob> = [
        (Game::GravityTetris, ScheduleConfig::baseline()),
        (Game::GravityTetris, ScheduleConfig::dtexl()),
        (Game::CandyCrush, ScheduleConfig::baseline()),
        (Game::CandyCrush, ScheduleConfig::dtexl()),
    ]
    .into_iter()
    .map(|(game, schedule)| SweepJob::new(game, schedule, false, 96, 64, 0))
    .collect();

    // Shard the sweep two ways, as a fleet would.
    let shard_paths = [dir.join("shard0.jsonl"), dir.join("shard1.jsonl")];
    for (index, path) in shard_paths.iter().enumerate() {
        let opts = SweepOptions {
            with_obs: true,
            journal: Some(path.clone()),
            shard: Some(Shard::new(index as u32, 2).unwrap()),
            workers: 2,
            ..SweepOptions::default()
        };
        let report = run_sweep(&jobs, &opts, |_, _| {}).unwrap();
        assert!(report.is_success());
    }

    let merged_path = dir.join("merged.jsonl");
    merge_journals(&shard_paths, &merged_path).unwrap();
    let merged = std::fs::read_to_string(&merged_path).unwrap();
    let entries = latest_entries(&merged);
    assert_eq!(entries.len(), jobs.len());
    for job in &jobs {
        let entry = &entries[&job.key()];
        let journaled = entry.obs.expect("ok entry under --with-obs carries obs");
        let (_, direct) = job.simulate_rollup(None).expect("valid job");
        assert_eq!(
            journaled,
            direct,
            "journal round-trip altered {}",
            job.key()
        );
        // The JSON form itself round-trips bit-exactly.
        assert_eq!(ObsRollup::parse(&journaled.to_json()), Some(journaled));
    }

    // Resume against the merged journal: every job skips, and merging
    // the resumed journal back in leaves the obs-bearing ok lines as
    // winners (ok-over-skipped at matching config hash).
    let resumed_path = dir.join("resumed.jsonl");
    std::fs::copy(&merged_path, &resumed_path).unwrap();
    let opts = SweepOptions {
        with_obs: true,
        journal: Some(resumed_path.clone()),
        resume: true,
        ..SweepOptions::default()
    };
    let report = run_sweep(&jobs, &opts, |_, _| {}).unwrap();
    assert!(report
        .records
        .iter()
        .all(|r| r.status == dtexl::sweep::JobStatus::Skipped));
    let reunion = dir.join("reunion.jsonl");
    merge_journals(&[merged_path, resumed_path], &reunion).unwrap();
    let reunion_text = std::fs::read_to_string(&reunion).unwrap();
    for (key, entry) in latest_entries(&reunion_text) {
        assert_eq!(entry.status, "ok", "{key} lost its ok record");
        assert_eq!(entry.obs, entries[&key].obs, "{key} lost its rollup");
    }

    // Canon is blind to the rollups: a probe-free sweep canonicalizes
    // to the same bytes.
    let plain_path = dir.join("plain.jsonl");
    let opts = SweepOptions {
        journal: Some(plain_path.clone()),
        ..SweepOptions::default()
    };
    run_sweep(&jobs, &opts, |_, _| {}).unwrap();
    let plain = std::fs::read_to_string(&plain_path).unwrap();
    assert!(latest_entries(&plain).values().all(|e| e.obs.is_none()));
    assert_eq!(canon_text(&reunion_text), canon_text(&plain));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Golden `profile --diff` view of GTr at 96x64: decoupling the
/// barriers eliminates barrier waits wholesale (−100% on every unit
/// that had any) without moving a single busy cycle. The absolute
/// numbers re-use tests/obs_determinism.rs's goldens.
#[test]
fn golden_profile_diff_for_gtr_96x64() {
    let cfg = SimConfig::dtexl(Game::GravityTetris).with_resolution(96, 64);
    let rollup = FrameProfile::capture(&cfg).expect("valid config").rollup();

    // Spot-check the rollup against the golden stall table first.
    assert_eq!(rollup.coupled.busy(Stage::Fetch, 0), 2_520);
    assert_eq!(rollup.coupled.busy(Stage::Raster, 0), 2_173);
    assert_eq!(rollup.coupled.busy(Stage::EarlyZ, 0), 3_126);
    assert_eq!(rollup.coupled.busy(Stage::Fragment, 0), 105_406);
    assert_eq!(rollup.coupled.wait_barrier(Stage::Fragment, 1), 77_927);
    assert_eq!(rollup.coupled.busy(Stage::Fragment, 3), 85_194);
    assert_eq!(rollup.coupled.wait_upstream(Stage::Blend, 2), 130_825);
    assert_eq!(rollup.decoupled.wait_upstream(Stage::Blend, 1), 54_227);
    assert_eq!(
        rollup.decoupled.totals()[2],
        0,
        "pure decoupled composition has no barrier waits"
    );

    let table = stall_diff_table(&rollup.coupled, &rollup.decoupled, "decoupled vs coupled");
    let cell = |row: &str, col: &str| {
        table
            .get(row, col)
            .unwrap_or_else(|| panic!("missing cell {row}/{col}"))
    };

    // Busy work is schedule-composition-invariant: every busy delta is
    // exactly zero.
    for (stage, sc) in dtexl::obs::rollup::unit_order() {
        let row = dtexl::obs::perfetto::track_name(stage, sc);
        assert_eq!(cell(&row, "busy"), 0.0, "busy moved on {row}");
        assert_eq!(cell(&row, "busy%"), 0.0);
        // Barrier waits go to zero, so the percent delta is −100 on
        // every unit that had any and 0 on the rest.
        let barrier = cell(&row, "barrier");
        assert!(barrier <= 0.0);
        let pct = cell(&row, "barrier%");
        assert_eq!(pct, if barrier < 0.0 { -100.0 } else { 0.0 }, "{row}");
    }
    assert_eq!(cell("fragment/SC1", "barrier"), -77_927.0);
    assert_eq!(cell("early_z/SC1", "barrier"), -2_481.0);

    // The headline: total barrier-wait delta is the whole coupled
    // barrier bill, signed negative.
    let total_barrier: f64 = dtexl::obs::rollup::unit_order()
        .iter()
        .map(|&(stage, sc)| cell(&dtexl::obs::perfetto::track_name(stage, sc), "barrier"))
        .sum();
    assert_eq!(total_barrier, -(rollup.coupled.totals()[2] as f64));
}
