//! Offline stand-in for `parking_lot`, implemented over `std::sync`.
//!
//! Matches the subset of the API the workspace uses: non-poisoning
//! `Mutex`/`RwLock` whose `lock()`/`read()`/`write()` return guards
//! directly instead of `Result`s. Poisoning is recovered from (the
//! inner data is returned anyway), which mirrors parking_lot's
//! poison-free semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}
