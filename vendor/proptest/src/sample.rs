//! Sampling from explicit value sets (`proptest::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy choosing uniformly from `choices` (must be non-empty).
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select: empty choice set");
    Select { choices }
}

/// Strategy returned by [`select`].
#[derive(Clone)]
pub struct Select<T> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let idx = rng.gen_range(0..self.choices.len());
        Some(self.choices[idx].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn select_covers_all_choices() {
        let mut rng = TestRng::for_seed(8);
        let s = select(vec!['a', 'b', 'c']);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.sample(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
