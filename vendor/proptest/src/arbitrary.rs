//! `any::<T>()` support for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::distributions::{Distribution, Standard};
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `any::<T>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for primitives, sampling rand's `Standard`
/// distribution.
pub struct AnyPrim<T>(PhantomData<T>);

impl<T> Clone for AnyPrim<T> {
    fn clone(&self) -> Self {
        Self(PhantomData)
    }
}

impl<T> Strategy for AnyPrim<T>
where
    Standard: Distribution<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(rng.gen())
    }
}

macro_rules! arbitrary_prim {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            type Strategy = AnyPrim<$ty>;

            fn arbitrary() -> Self::Strategy {
                AnyPrim(PhantomData)
            }
        }
    )*};
}

arbitrary_prim!(bool, u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::for_seed(11);
        let s = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(s.sample(&mut rng).unwrap())] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
