//! Offline stand-in for `proptest`, implementing the subset of the API
//! the workspace tests use: the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros, range and tuple strategies, `prop_map` /
//! `prop_filter`, `Just`, `prop_oneof!`, `collection::vec`,
//! `array::uniform4`, `sample::select`, `any::<T>()`, and
//! `ProptestConfig::with_cases`.
//!
//! Unlike upstream proptest this engine does no shrinking: each test
//! runs `cases` deterministic random samples (seeded from the test's
//! module path and name, so failures reproduce across runs) and panics
//! with the offending seed on the first failure. That trades minimal
//! counterexamples for zero dependencies, which is the right trade for
//! this self-contained repository.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test running `body` over sampled inputs. An optional
/// leading `#![proptest_config(expr)]` overrides the case count.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            $crate::test_runner::run(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__proptest_rng: &mut $crate::test_runner::TestRng| {
                    $(
                        let $arg = match $crate::strategy::Strategy::sample(
                            &($strat),
                            __proptest_rng,
                        ) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => {
                                return ::core::result::Result::Err(
                                    $crate::test_runner::TestCaseError::Reject,
                                );
                            }
                        };
                    )+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Assert a condition inside a proptest body, failing the case (not
/// aborting the process) so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two expressions are equal (both must be `Debug`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), left, right
        );
    }};
}

/// Assert two expressions are unequal (both must be `Debug`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}\n  both: {:?}",
            format!($($fmt)+), left
        );
    }};
}

/// Discard the current case (counts as a rejection, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Choose uniformly between several strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
