//! Fixed-size array strategies (`proptest::array::uniform4`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `[T; 4]` sampling `element` four times.
pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
    Uniform4 { element }
}

/// Strategy returned by [`uniform4`].
#[derive(Clone)]
pub struct Uniform4<S> {
    element: S,
}

impl<S: Strategy> Strategy for Uniform4<S> {
    type Value = [S::Value; 4];

    fn sample(&self, rng: &mut TestRng) -> Option<[S::Value; 4]> {
        Some([
            self.element.sample(rng)?,
            self.element.sample(rng)?,
            self.element.sample(rng)?,
            self.element.sample(rng)?,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn uniform4_in_range() {
        let mut rng = TestRng::for_seed(6);
        let s = uniform4(0u64..200);
        for _ in 0..50 {
            assert!(s.sample(&mut rng).unwrap().iter().all(|&v| v < 200));
        }
    }
}
