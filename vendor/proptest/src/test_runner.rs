//! The case-running engine behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// RNG handed to strategies: a seeded `StdRng`.
pub struct TestRng(StdRng);

impl TestRng {
    /// Build from an explicit seed (used by the runner and for
    /// reproducing reported failures).
    pub fn for_seed(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Input rejected by a filter or `prop_assume!`; retried, not fatal.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Runner configuration (only the case count is meaningful here).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Override the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases: smaller than upstream's 256 to keep the full suite
    /// fast, large enough to exercise the properties.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Stable hash of the test name so every test gets its own
/// deterministic seed sequence (FNV-1a).
fn seed_base(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `case` until `config.cases` samples pass, panicking on the
/// first failure with the seed that reproduces it.
pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = seed_base(name);
    let mut accepted: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = u64::from(config.cases) * 64;
    let mut attempt: u64 = 0;

    while accepted < config.cases {
        let seed = base.wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        attempt += 1;
        let mut rng = TestRng::for_seed(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many rejected inputs ({rejected}) — \
                     loosen the filters or assumptions"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{name}: property failed after {accepted} passing case(s) \
                     [seed {seed:#018x}]\n{msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn runs_requested_cases() {
        let mut count = 0;
        run(ProptestConfig::with_cases(10), "t::count", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn rejects_are_retried() {
        let mut total = 0;
        run(ProptestConfig::with_cases(5), "t::reject", |rng| {
            total += 1;
            if rng.gen_range(0..2usize) == 0 {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(total >= 5);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failure_panics_with_seed() {
        run(ProptestConfig::with_cases(5), "t::fail", |_| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = Vec::new();
        run(ProptestConfig::with_cases(5), "t::det", |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        let mut b = Vec::new();
        run(ProptestConfig::with_cases(5), "t::det", |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
    }
}
