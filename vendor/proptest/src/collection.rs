//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length specifications accepted by [`vec`].
pub trait IntoSizeRange {
    /// Inclusive `(min, max)` length bounds.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec`s of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    VecStrategy { element, min_len, max_len }
}

/// Strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_length_bounds() {
        let mut rng = TestRng::for_seed(4);
        let s = vec(0u32..100, 2..7);
        for _ in 0..100 {
            let v = s.sample(&mut rng).unwrap();
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
        assert_eq!(vec(0u32..5, 3).sample(&mut rng).unwrap().len(), 3);
    }
}
