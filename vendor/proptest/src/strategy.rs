//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for producing random values of `Self::Value`.
///
/// `sample` returns `None` when the drawn value is rejected (by a
/// `prop_filter`); the runner discards the whole case and retries with
/// the next seed.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value, or `None` on filter rejection.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; `reason` labels the filter.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, _reason: reason.into(), pred }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    _reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.pred)(v))
    }
}

// Object-safe shim so heterogeneous strategies can share a box.
trait DynStrategy<V> {
    fn dyn_sample(&self, rng: &mut TestRng) -> Option<V>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> Option<V> {
        self.0.dyn_sample(rng)
    }
}

/// Uniform choice between strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty list of arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Self { arms: self.arms.clone() }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> Option<V> {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

// Half-open and inclusive ranges are strategies over their element
// type (uniform, via rand's sampling).
impl<T> Strategy for Range<T>
where
    T: rand::distributions::uniform::SampleUniform + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(rng.gen_range(self.clone()))
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: rand::distributions::uniform::SampleUniform + Copy,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(rng.gen_range(self.clone()))
    }
}

// Tuples of strategies sample each component in order.
macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn map_filter_just_compose() {
        let mut rng = TestRng::for_seed(1);
        let s = (0u32..10).prop_map(|v| v * 2).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            let v = s.sample(&mut rng).unwrap();
            assert!(v < 20 && v % 2 == 0);
        }
        assert_eq!(Just(7u8).sample(&mut rng), Some(7));
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::for_seed(2);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(u.sample(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut rng = TestRng::for_seed(3);
        let (a, b, c) = (0u32..4, -1.0f32..1.0, 5usize..6).sample(&mut rng).unwrap();
        assert!(a < 4);
        assert!((-1.0..1.0).contains(&b));
        assert_eq!(c, 5);
    }
}
