//! Offline stand-in for the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and stats
//! types but never serializes anything (there is no `serde_json` or
//! other format crate in the tree), so marker traits plus no-op derive
//! macros are sufficient for the build to be self-contained. If a
//! future PR needs real serialization, replace this vendored crate with
//! the upstream one — the API subset used here is source-compatible.

/// Marker for serializable types (no-op stand-in).
pub trait Serialize {}

/// Marker for deserializable types (no-op stand-in).
pub trait Deserialize<'de>: Sized {}

/// Marker for owned-deserializable types (no-op stand-in).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
