//! Named RNG types, mirroring `rand::rngs`.

use crate::chacha::ChaChaRng;
use crate::{RngCore, SeedableRng};

/// The standard RNG: ChaCha with 12 rounds, exactly as rand 0.8's
/// `StdRng` (via `rand_chacha::ChaCha12Rng`).
pub struct StdRng(ChaChaRng);

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self(ChaChaRng::from_seed(seed, 12))
    }
}
