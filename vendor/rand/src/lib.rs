//! Offline stand-in for `rand` 0.8, covering the subset the workspace
//! uses: `StdRng` (ChaCha12 behind a block-buffered reader),
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! and the `Standard`/`Bernoulli`/uniform distributions behind them.
//!
//! The algorithms are ports of the upstream ones (rand_core's PCG-based
//! `seed_from_u64` and block-RNG word buffering, rand_chacha's
//! four-blocks-per-refill ChaCha12 stream, rand's widening-multiply
//! integer rejection sampling and `[1, 2)`-mantissa float sampling), so
//! the value streams follow the same construction upstream uses. The
//! calibration goldens in this repository are baselined against *this*
//! implementation; if it is ever swapped for the upstream crate, expect
//! to re-baseline.

pub mod distributions;
pub mod rngs;

mod chacha;

pub use distributions::Distribution;

/// Low-level source of randomness: the `rand_core::RngCore` subset.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via a PCG32 stream, exactly as
    /// `rand_core` 0.6 does, so seeds produce the same generator state
    /// as upstream `seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`](distributions::Standard)
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
    {
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let d = distributions::Bernoulli::new(p)
            .expect("gen_bool: probability outside [0, 1]");
        d.sample(self)
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_int_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0..13usize);
            assert!(v < 13);
            let w = rng.gen_range(5..=9u32);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_range_float_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads = {heads}");
    }
}
