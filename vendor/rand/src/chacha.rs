//! ChaCha stream cipher core plus the `rand_core` block-buffer logic,
//! ported so the word stream matches `rand_chacha`'s `ChaCha12Rng`
//! (which backs `StdRng` in rand 0.8): four 16-word blocks are
//! generated per refill, the 64-bit block counter lives in state words
//! 12–13, and `next_u64` has the exact cross-refill splicing behavior
//! of `rand_core::block::BlockRng`.

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Words per ChaCha block.
const BLOCK_WORDS: usize = 16;
/// Blocks generated per refill (matches rand_chacha's buffering).
const BLOCKS_PER_REFILL: usize = 4;
/// Words per refill.
const BUF_WORDS: usize = BLOCK_WORDS * BLOCKS_PER_REFILL;

#[inline(always)]
fn quarter_round(x: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even.
fn chacha_block(input: &[u32; BLOCK_WORDS], rounds: u32, out: &mut [u32]) {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, (w, i)) in out.iter_mut().zip(x.iter().zip(input.iter())) {
        *o = w.wrapping_add(*i);
    }
}

/// ChaCha keystream generator with a 64-bit block counter and 64-bit
/// nonce, buffered four blocks at a time.
pub struct ChaChaRng {
    key: [u32; 8],
    counter: u64,
    nonce: [u32; 2],
    rounds: u32,
    results: [u32; BUF_WORDS],
    /// Next unread word in `results`; `BUF_WORDS` means "empty".
    index: usize,
}

impl ChaChaRng {
    /// Build from a 32-byte key (little-endian words), counter 0,
    /// nonce 0 — the `from_seed` layout of `rand_chacha`.
    pub fn from_seed(seed: [u8; 32], rounds: u32) -> Self {
        debug_assert!(rounds % 2 == 0);
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self { key, counter: 0, nonce: [0; 2], rounds, results: [0; BUF_WORDS], index: BUF_WORDS }
    }

    fn generate(&mut self) {
        for blk in 0..BLOCKS_PER_REFILL {
            let counter = self.counter.wrapping_add(blk as u64);
            let input: [u32; BLOCK_WORDS] = [
                CONSTANTS[0],
                CONSTANTS[1],
                CONSTANTS[2],
                CONSTANTS[3],
                self.key[0],
                self.key[1],
                self.key[2],
                self.key[3],
                self.key[4],
                self.key[5],
                self.key[6],
                self.key[7],
                counter as u32,
                (counter >> 32) as u32,
                self.nonce[0],
                self.nonce[1],
            ];
            let out = &mut self.results[blk * BLOCK_WORDS..(blk + 1) * BLOCK_WORDS];
            chacha_block(&input, self.rounds, out);
        }
        self.counter = self.counter.wrapping_add(BLOCKS_PER_REFILL as u64);
    }

    fn generate_and_set(&mut self, index: usize) {
        self.generate();
        self.index = index;
    }

    /// `BlockRng::next_u32`.
    pub fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    /// `BlockRng::next_u64`, including the buffer-boundary splice where
    /// the low half comes from the last word of one refill and the high
    /// half from the first word of the next.
    pub fn next_u64(&mut self) -> u64 {
        let read_u64 = |results: &[u32], index: usize| {
            u64::from(results[index + 1]) << 32 | u64::from(results[index])
        };

        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            read_u64(&self.results, index)
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            read_u64(&self.results, 0)
        } else {
            let x = u64::from(self.results[BUF_WORDS - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }

    /// `BlockRng::fill_bytes`: consume whole buffered words, little
    /// endian; a partially used final word is discarded.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let avail = &self.results[self.index..];
            let rest = &mut dest[written..];
            let consumed_words = (rest.len() / 4 + usize::from(rest.len() % 4 != 0)).min(avail.len());
            for (i, word) in avail[..consumed_words].iter().enumerate() {
                let bytes = word.to_le_bytes();
                let start = i * 4;
                let n = bytes.len().min(rest.len() - start);
                rest[start..start + n].copy_from_slice(&bytes[..n]);
            }
            self.index += consumed_words;
            written += (consumed_words * 4).min(rest.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ChaCha20, all-zero key and nonce, counter 0: the well-known
    /// keystream `76 b8 e0 ad a0 f1 3d 90 ...` — validates the round
    /// function and state layout shared with the 12-round variant.
    #[test]
    fn chacha20_zero_key_first_block() {
        let mut rng = ChaChaRng::from_seed([0; 32], 20);
        let expected: [u32; 8] = [
            0xade0_b876, 0x903d_f1a0, 0xe56a_5d40, 0x28bd_8653,
            0xb819_d2bd, 0x1aed_8da0, 0xccef_36a8, 0xc70d_778b,
        ];
        for e in expected {
            assert_eq!(rng.next_u32(), e);
        }
    }

    #[test]
    fn counter_advances_across_refills() {
        let mut a = ChaChaRng::from_seed([7; 32], 12);
        let mut b = ChaChaRng::from_seed([7; 32], 12);
        let mut seen = std::collections::HashSet::new();
        // Three refills' worth of words must be identical streams and
        // not loop back on themselves.
        for _ in 0..BUF_WORDS * 3 {
            let w = a.next_u32();
            assert_eq!(w, b.next_u32());
            seen.insert(w);
        }
        assert!(seen.len() > BUF_WORDS * 2);
    }

    #[test]
    fn next_u64_matches_word_pairs_and_splices() {
        // Fresh stream read as u32s...
        let mut words = ChaChaRng::from_seed([3; 32], 12);
        let stream: Vec<u32> = (0..BUF_WORDS * 2).map(|_| words.next_u32()).collect();

        // ...must match u64 reads two-words-at-a-time, low first.
        let mut pairs = ChaChaRng::from_seed([3; 32], 12);
        for chunk in stream.chunks_exact(2).take(8) {
            let expect = u64::from(chunk[1]) << 32 | u64::from(chunk[0]);
            assert_eq!(pairs.next_u64(), expect);
        }

        // Odd alignment at the buffer edge: consume 63 words, then a
        // u64 must splice word 63 (low) with the next refill's word 0
        // (high), leaving the next u32 read at word 1.
        let mut edge = ChaChaRng::from_seed([3; 32], 12);
        for _ in 0..BUF_WORDS - 1 {
            edge.next_u32();
        }
        let spliced = edge.next_u64();
        assert_eq!(spliced as u32, stream[BUF_WORDS - 1]);
        assert_eq!((spliced >> 32) as u32, stream[BUF_WORDS]);
        assert_eq!(edge.next_u32(), stream[BUF_WORDS + 1]);
    }

    #[test]
    fn fill_bytes_matches_le_words() {
        let mut words = ChaChaRng::from_seed([9; 32], 12);
        let expect: Vec<u8> =
            (0..3).flat_map(|_| words.next_u32().to_le_bytes()).collect();
        let mut bytes = ChaChaRng::from_seed([9; 32], 12);
        let mut dest = [0u8; 12];
        bytes.fill_bytes(&mut dest);
        assert_eq!(dest.as_slice(), expect.as_slice());
        // A partial word is discarded: next u32 comes from word 4.
        let mut partial = ChaChaRng::from_seed([9; 32], 12);
        let mut dest = [0u8; 13];
        partial.fill_bytes(&mut dest);
        let mut reference = ChaChaRng::from_seed([9; 32], 12);
        for _ in 0..4 {
            reference.next_u32();
        }
        assert_eq!(partial.next_u32(), reference.next_u32());
    }
}
