//! Sampling distributions: `Standard`, `Bernoulli`, and the uniform
//! range machinery behind `Rng::gen_range`. All algorithms are ports
//! of rand 0.8.5 so the draw counts and value streams follow the same
//! construction.

use crate::{Rng, RngCore};

/// Types that can produce values of `T` from a source of randomness.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for primitives: full-range integers,
/// `[0, 1)` floats, fair bools.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int_from_u32 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u32() as $ty
            }
        }
    )*};
}

macro_rules! standard_int_from_u64 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_int_from_u32!(u8, i8, u16, i16, u32, i32);
standard_int_from_u64!(u64, i64, usize, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Compare against the most significant bit, as upstream does.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 bits of precision scaled into [0, 1).
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 bits of precision scaled into [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Error from [`Bernoulli::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BernoulliError;

/// Boolean distribution with probability `p` of `true`, using the
/// 64-bit fixed-point comparison upstream uses.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    p_int: u64,
}

const ALWAYS_TRUE: u64 = u64::MAX;
const SCALE: f64 = 2.0 * (1u64 << 63) as f64;

impl Bernoulli {
    /// Construct for probability `p` in `[0, 1]`.
    pub fn new(p: f64) -> Result<Bernoulli, BernoulliError> {
        if !(0.0..1.0).contains(&p) {
            if p == 1.0 {
                return Ok(Bernoulli { p_int: ALWAYS_TRUE });
            }
            return Err(BernoulliError);
        }
        Ok(Bernoulli { p_int: (p * SCALE) as u64 })
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p_int == ALWAYS_TRUE {
            return true;
        }
        let v: u64 = rng.gen();
        v < self.p_int
    }
}

pub mod uniform {
    //! Uniform sampling over ranges: the `gen_range` machinery.

    use crate::{Distribution, Rng, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// Types `gen_range` can sample.
    pub trait SampleUniform: Sized {
        /// Sample from `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Sample from `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            rng: &mut R,
        ) -> Self;
    }

    /// Range types accepted by `gen_range`.
    pub trait SampleRange<T> {
        /// Sample one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_single(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_single_inclusive(*self.start(), *self.end(), rng)
        }
    }

    /// Widening multiply returning `(high, low)` halves.
    trait WideningMultiply: Sized {
        fn wmul(self, other: Self) -> (Self, Self);
    }

    macro_rules! wmul_impl {
        ($ty:ty, $wide:ty, $shift:expr) => {
            impl WideningMultiply for $ty {
                #[inline(always)]
                fn wmul(self, other: Self) -> (Self, Self) {
                    let t = (self as $wide) * (other as $wide);
                    ((t >> $shift) as $ty, t as $ty)
                }
            }
        };
    }

    wmul_impl!(u32, u64, 32);
    wmul_impl!(u64, u128, 64);
    #[cfg(target_pointer_width = "64")]
    wmul_impl!(usize, u128, 64);
    #[cfg(target_pointer_width = "32")]
    wmul_impl!(usize, u64, 32);

    // Integer uniform sampling: rejection via widening multiply, with
    // the same zone computation as rand 0.8.5 (`$u_large` chosen as
    // u32 for sub-word types, the native width otherwise).
    macro_rules! uniform_int_impl {
        ($ty:ty, $unsigned:ty, $u_large:ty) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    assert!(low < high, "gen_range: low >= high");
                    Self::sample_single_inclusive(low, high - 1, rng)
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    assert!(low <= high, "gen_range: low > high");
                    let range = high
                        .wrapping_sub(low)
                        .wrapping_add(1) as $unsigned as $u_large;
                    // Range 0 means the whole domain: every draw accepted.
                    if range == 0 {
                        return rng.gen();
                    }
                    let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                        let ints_to_reject =
                            (<$u_large>::MAX - range + 1) % range;
                        <$u_large>::MAX - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $u_large = rng.gen();
                        let (hi, lo) = v.wmul(range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int_impl!(u8, u8, u32);
    uniform_int_impl!(i8, u8, u32);
    uniform_int_impl!(u16, u16, u32);
    uniform_int_impl!(i16, u16, u32);
    uniform_int_impl!(u32, u32, u32);
    uniform_int_impl!(i32, u32, u32);
    uniform_int_impl!(u64, u64, u64);
    uniform_int_impl!(i64, u64, u64);
    uniform_int_impl!(usize, usize, usize);
    uniform_int_impl!(isize, usize, usize);

    // Float uniform sampling: draw a mantissa into [1, 2), shift into
    // [0, 1), then scale — retrying with a minutely reduced scale if
    // rounding lands exactly on `high`.
    macro_rules! uniform_float_impl {
        ($ty:ty, $uty:ty, $bits_to_discard:expr) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    assert!(low < high, "gen_range: low >= high");
                    let mut scale = high - low;

                    // Bit pattern of 1.0: OR-ing random mantissa bits
                    // into it yields a uniform value in [1, 2).
                    let one_bits =
                        ((<$ty>::MAX_EXP - 1) as $uty) << (<$ty>::MANTISSA_DIGITS - 1);
                    loop {
                        let value1_2 = <$ty>::from_bits(
                            (rng.gen::<$uty>() >> $bits_to_discard) | one_bits,
                        );
                        let value0_1 = value1_2 - 1.0;
                        let res = value0_1 * scale + low;
                        if res < high {
                            return res;
                        }
                        // Shave one ulp off the scale and retry.
                        scale = <$ty>::from_bits(scale.to_bits() - 1);
                    }
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    assert!(low <= high, "gen_range: low > high");
                    let scale = high - low;
                    let one_bits =
                        ((<$ty>::MAX_EXP - 1) as $uty) << (<$ty>::MANTISSA_DIGITS - 1);
                    let value1_2 = <$ty>::from_bits(
                        (rng.gen::<$uty>() >> $bits_to_discard) | one_bits,
                    );
                    let value0_1 = value1_2 - 1.0;
                    value0_1 * scale + low
                }
            }
        };
    }

    uniform_float_impl!(f32, u32, 32 - 23);
    uniform_float_impl!(f64, u64, 64 - 52);

    /// Standalone uniform distribution over a range, usable with
    /// `Rng::sample`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform + Copy> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            Self { low, high }
        }
    }

    impl<T: SampleUniform + Copy> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_single(self.low, self.high, rng)
        }
    }
}

pub use uniform::Uniform;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn bernoulli_always_true_draws_nothing() {
        // p == 1.0 must short-circuit before consuming randomness.
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert!(Bernoulli::new(1.0).unwrap().sample(&mut a));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_int_small_range_is_balanced() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn uniform_float_covers_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = rng.gen_range(3.0f32..9.0);
            assert!((3.0..9.0).contains(&v));
            lo_seen |= v < 4.0;
            hi_seen |= v > 8.0;
        }
        assert!(lo_seen && hi_seen);
    }
}
