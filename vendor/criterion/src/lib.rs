//! Offline stand-in for `criterion` with the subset of the API the
//! bench crate uses: `Criterion` with `sample_size` /
//! `measurement_time` / `warm_up_time` builders, `bench_function`,
//! `benchmark_group`, the `criterion_group!` / `criterion_main!`
//! macros, and `Bencher::iter`.
//!
//! The harness times each closure over a small fixed iteration count
//! and prints mean wall-clock per iteration. It has none of
//! criterion's statistics; it exists so `cargo bench` compiles and
//! produces usable relative numbers without network access.

use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Runs a closure repeatedly and records elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark manager: entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Set the number of samples (used here as the iteration count).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Set the target measurement time (advisory in this stand-in).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up time (advisory in this stand-in).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run a single benchmark and print its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // One warm-up call, then the timed run.
        let mut warm = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut warm);
        let iters = self.sample_size.max(1) as u64;
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed / iters as u32;
        println!("bench: {id:<56} {per_iter:>12.2?}/iter ({iters} iters)");
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Hook called by `criterion_main!` after all groups run.
    pub fn final_summary(&mut self) {}
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Set the target measurement time (advisory in this stand-in).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a benchmark group, with or without a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u32;
        Criterion::default().sample_size(3).bench_function("t", |b| {
            b.iter(|| calls += 1);
        });
        // One warm-up iteration + three timed iterations, over two calls.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
