//! Offline stand-in for `crossbeam`, covering the `channel` subset the
//! workspace uses. Backed by `std::sync::mpsc`; `Receiver` is therefore
//! single-consumer, which is all the lane/replay pipeline needs (each
//! channel has exactly one producer lane and the replay thread as its
//! only consumer).

pub mod channel {
    //! Multi-producer channels with the crossbeam-channel surface.

    use std::sync::mpsc;

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// Sending half of a channel (bounded or unbounded).
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                Tx::Bounded(s) => Sender(Tx::Bounded(s.clone())),
                Tx::Unbounded(s) => Sender(Tx::Unbounded(s.clone())),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking if the channel is bounded and full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Tx::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] on a closed empty channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders dropped.
        Disconnected,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Receive the next value, blocking until one is available.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterate over received values until all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
        }

        #[test]
        fn bounded_roundtrip() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        }

        #[test]
        fn try_recv_states() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
