//! No-op derive macros backing the vendored `serde` stand-in.
//!
//! Expanding to nothing is deliberate: no code in the workspace bounds
//! on `Serialize`/`Deserialize`, so emitting impls would only force the
//! field types to implement the markers too. The `serde` helper
//! attribute (`#[serde(skip)]` etc.) is registered so existing
//! annotations keep compiling.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
