//! Property-based tests for the math substrate.

use dtexl_gmath::{clamp_i32, Barycentric, Mat4, Rect, Triangle2, Vec2, Vec3, Vec4};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1.0e3f32..1.0e3).prop_filter("finite", |v| v.is_finite())
}

fn vec2() -> impl Strategy<Value = Vec2> {
    (finite_f32(), finite_f32()).prop_map(|(x, y)| Vec2::new(x, y))
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (finite_f32(), finite_f32(), finite_f32()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn rect() -> impl Strategy<Value = Rect> {
    (-100i32..100, -100i32..100, 0i32..50, 0i32..50)
        .prop_map(|(x, y, w, h)| Rect::from_origin_size(x, y, w, h))
}

proptest! {
    #[test]
    fn vec_add_commutes(a in vec3(), b in vec3()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn dot_is_bilinear(a in vec3(), b in vec3(), s in finite_f32()) {
        let lhs = (a * s).dot(b);
        let rhs = a.dot(b) * s;
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    #[test]
    fn cross_orthogonal_to_inputs(a in vec3(), b in vec3()) {
        let c = a.cross(b);
        let scale = a.length() * b.length() + 1.0;
        prop_assert!(c.dot(a).abs() / (scale * scale) < 1e-3);
        prop_assert!(c.dot(b).abs() / (scale * scale) < 1e-3);
    }

    #[test]
    fn normalized_has_unit_length(a in vec3()) {
        prop_assume!(a.length() > 1e-3);
        prop_assert!((a.normalized().length() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn matrix_vector_distributes(t in vec3(), v in vec3()) {
        let m = Mat4::translation(t);
        let p = m * v.extend(1.0);
        prop_assert!((p.xyz() - (v + t)).length() < 1e-3);
    }

    #[test]
    fn matrix_mul_associative_on_vectors(t in vec3(), s in 0.1f32..10.0, v in vec3()) {
        let a = Mat4::translation(t);
        let b = Mat4::scale(Vec3::new(s, s, s));
        let lhs = (a * b) * v.extend(1.0);
        let rhs = a * (b * v.extend(1.0));
        prop_assert!((lhs - rhs).length() < 1e-2 * (1.0 + lhs.length()));
    }

    #[test]
    fn rect_intersection_is_subset(a in rect(), b in rect()) {
        let i = a.intersect(&b);
        if !i.is_empty() {
            prop_assert!(i.area() <= a.area());
            prop_assert!(i.area() <= b.area());
            prop_assert!(a.contains(i.x0, i.y0));
            prop_assert!(b.contains(i.x0, i.y0));
        }
    }

    #[test]
    fn rect_union_contains_both(a in rect(), b in rect()) {
        let u = a.union(&b);
        for r in [a, b] {
            if !r.is_empty() {
                prop_assert!(u.contains(r.x0, r.y0));
                prop_assert!(u.contains(r.x1 - 1, r.y1 - 1));
            }
        }
    }

    #[test]
    fn rect_cells_count_matches_area(r in rect()) {
        prop_assert_eq!(r.cells().count() as i64, r.area());
    }

    #[test]
    fn barycentric_partition_of_unity(
        v0 in vec2(), v1 in vec2(), v2 in vec2(), p in vec2()
    ) {
        let t = Triangle2::new(v0, v1, v2);
        prop_assume!(t.double_area().abs() > 1e-1);
        let b = t.barycentric(p).unwrap();
        prop_assert!((b.l0 + b.l1 + b.l2 - 1.0).abs() < 1e-2);
    }

    #[test]
    fn barycentric_reconstructs_point(
        v0 in vec2(), v1 in vec2(), v2 in vec2(), p in vec2()
    ) {
        let t = Triangle2::new(v0, v1, v2);
        prop_assume!(t.double_area().abs() > 1.0);
        let b = t.barycentric(p).unwrap();
        let q = b.interpolate2(v0, v1, v2);
        let scale = 1.0 + v0.length() + v1.length() + v2.length() + p.length();
        prop_assert!((q - p).length() / scale < 1e-2);
    }

    #[test]
    fn vertices_are_covered(v0 in vec2(), v1 in vec2(), v2 in vec2()) {
        let t = Triangle2::new(v0, v1, v2);
        prop_assume!(t.double_area().abs() > 1.0);
        // Centroid is always inside.
        let c = (v0 + v1 + v2) / 3.0;
        prop_assert!(t.covers(c));
    }

    #[test]
    fn clamp_in_range(v in any::<i32>(), lo in -100i32..100, hi in -100i32..100) {
        let c = clamp_i32(v, lo, hi);
        if lo <= hi {
            prop_assert!(c >= lo && c <= hi);
        } else {
            prop_assert_eq!(c, lo);
        }
    }

    #[test]
    fn project_undoes_scale_by_w(x in finite_f32(), y in finite_f32(), z in finite_f32(), w in 0.1f32..100.0) {
        let v = Vec4::new(x * w, y * w, z * w, w);
        let p = v.project();
        prop_assert!((p - Vec3::new(x, y, z)).length() < 1e-2 * (1.0 + p.length()));
    }

    #[test]
    fn interpolate_constant_attr(l0 in 0.0f32..1.0, l1 in 0.0f32..1.0, k in finite_f32()) {
        prop_assume!(l0 + l1 <= 1.0);
        let b = Barycentric { l0, l1, l2: 1.0 - l0 - l1 };
        let v = b.interpolate(k, k, k);
        prop_assert!((v - k).abs() < 1e-3 * (1.0 + k.abs()));
    }
}
