//! Half-open integer rectangles.

use std::fmt;

/// A half-open, axis-aligned integer rectangle `[x0, x1) × [y0, y1)`.
///
/// Used for screen bounds, tiles, subtiles and scissor regions. An empty
/// rectangle has `x1 <= x0` or `y1 <= y0`.
///
/// # Examples
///
/// ```
/// use dtexl_gmath::Rect;
/// let tile = Rect::new(32, 0, 64, 32);
/// assert_eq!(tile.width(), 32);
/// assert!(tile.contains(32, 31));
/// assert!(!tile.contains(64, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Inclusive left edge.
    pub x0: i32,
    /// Inclusive top edge.
    pub y0: i32,
    /// Exclusive right edge.
    pub x1: i32,
    /// Exclusive bottom edge.
    pub y1: i32,
}

impl Rect {
    /// Create a rectangle from its edges.
    #[must_use]
    pub const fn new(x0: i32, y0: i32, x1: i32, y1: i32) -> Self {
        Self { x0, y0, x1, y1 }
    }

    /// Create a rectangle from origin and size.
    #[must_use]
    pub const fn from_origin_size(x: i32, y: i32, w: i32, h: i32) -> Self {
        Self::new(x, y, x + w, y + h)
    }

    /// Width (0 when empty).
    #[must_use]
    pub fn width(&self) -> i32 {
        (self.x1 - self.x0).max(0)
    }

    /// Height (0 when empty).
    #[must_use]
    pub fn height(&self) -> i32 {
        (self.y1 - self.y0).max(0)
    }

    /// Number of integer cells covered.
    #[must_use]
    pub fn area(&self) -> i64 {
        i64::from(self.width()) * i64::from(self.height())
    }

    /// True when the rectangle covers no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x1 <= self.x0 || self.y1 <= self.y0
    }

    /// True when `(x, y)` lies inside.
    #[must_use]
    pub fn contains(&self, x: i32, y: i32) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Intersection with another rectangle (possibly empty).
    #[must_use]
    pub fn intersect(&self, other: &Self) -> Self {
        Self::new(
            self.x0.max(other.x0),
            self.y0.max(other.y0),
            self.x1.min(other.x1),
            self.y1.min(other.y1),
        )
    }

    /// True when the two rectangles share at least one cell.
    #[must_use]
    pub fn overlaps(&self, other: &Self) -> bool {
        !self.intersect(other).is_empty()
    }

    /// The smallest rectangle containing both.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Self::new(
            self.x0.min(other.x0),
            self.y0.min(other.y0),
            self.x1.max(other.x1),
            self.y1.max(other.y1),
        )
    }

    /// Iterate over every `(x, y)` cell in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = (i32, i32)> + '_ {
        let xs = self.x0..self.x1.max(self.x0);
        let ys = self.y0..self.y1.max(self.y0);
        ys.flat_map(move |y| xs.clone().map(move |x| (x, y)))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{})x[{},{})", self.x0, self.x1, self.y0, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_area() {
        let r = Rect::from_origin_size(10, 20, 5, 4);
        assert_eq!(r.width(), 5);
        assert_eq!(r.height(), 4);
        assert_eq!(r.area(), 20);
        assert!(!r.is_empty());
    }

    #[test]
    fn empty_rects() {
        assert!(Rect::new(0, 0, 0, 10).is_empty());
        assert!(Rect::new(5, 0, 3, 10).is_empty());
        assert_eq!(Rect::new(5, 0, 3, 10).area(), 0);
    }

    #[test]
    fn contains_half_open() {
        let r = Rect::new(0, 0, 2, 2);
        assert!(r.contains(0, 0));
        assert!(r.contains(1, 1));
        assert!(!r.contains(2, 0));
        assert!(!r.contains(0, 2));
        assert!(!r.contains(-1, 0));
    }

    #[test]
    fn intersection() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersect(&b), Rect::new(5, 5, 10, 10));
        assert!(a.overlaps(&b));
        let c = Rect::new(10, 0, 20, 10);
        assert!(!a.overlaps(&c), "touching edges do not overlap");
    }

    #[test]
    fn union_ignores_empty() {
        let a = Rect::new(0, 0, 1, 1);
        let empty = Rect::default();
        assert_eq!(a.union(&empty), a);
        assert_eq!(empty.union(&a), a);
        let b = Rect::new(5, 5, 6, 6);
        assert_eq!(a.union(&b), Rect::new(0, 0, 6, 6));
    }

    #[test]
    fn cells_row_major() {
        let r = Rect::new(0, 0, 2, 2);
        let v: Vec<_> = r.cells().collect();
        assert_eq!(v, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
        assert_eq!(Rect::default().cells().count(), 0);
    }
}
