//! Screen-space triangles, edge functions and barycentric coordinates.

use crate::{Rect, Vec2};

/// Barycentric coordinates `(l0, l1, l2)` with `l0 + l1 + l2 = 1` for
/// points inside the triangle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Barycentric {
    /// Weight of vertex 0.
    pub l0: f32,
    /// Weight of vertex 1.
    pub l1: f32,
    /// Weight of vertex 2.
    pub l2: f32,
}

impl Barycentric {
    /// Interpolate a scalar attribute given its per-vertex values.
    #[must_use]
    pub fn interpolate(&self, a0: f32, a1: f32, a2: f32) -> f32 {
        self.l0 * a0 + self.l1 * a1 + self.l2 * a2
    }

    /// Interpolate a 2-D attribute given its per-vertex values.
    #[must_use]
    pub fn interpolate2(&self, a0: Vec2, a1: Vec2, a2: Vec2) -> Vec2 {
        a0 * self.l0 + a1 * self.l1 + a2 * self.l2
    }

    /// True when the point lies inside or on the triangle boundary.
    #[must_use]
    pub fn is_inside(&self) -> bool {
        self.l0 >= 0.0 && self.l1 >= 0.0 && self.l2 >= 0.0
    }
}

/// A triangle in continuous screen space.
///
/// The rasterizer samples it at pixel centers (`x + 0.5, y + 0.5`)
/// using [`Triangle2::barycentric`].
///
/// # Examples
///
/// ```
/// use dtexl_gmath::{Triangle2, Vec2};
/// let t = Triangle2::new(
///     Vec2::new(0.0, 0.0),
///     Vec2::new(4.0, 0.0),
///     Vec2::new(0.0, 4.0),
/// );
/// assert!(t.covers(Vec2::new(1.0, 1.0)));
/// assert!(!t.covers(Vec2::new(3.5, 3.5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle2 {
    /// First vertex.
    pub v0: Vec2,
    /// Second vertex.
    pub v1: Vec2,
    /// Third vertex.
    pub v2: Vec2,
}

impl Triangle2 {
    /// Create a triangle from three screen-space vertices.
    #[must_use]
    pub const fn new(v0: Vec2, v1: Vec2, v2: Vec2) -> Self {
        Self { v0, v1, v2 }
    }

    /// Twice the signed area (positive for counter-clockwise winding in a
    /// y-down coordinate system this is negative; the rasterizer accepts
    /// both windings).
    #[must_use]
    pub fn double_area(&self) -> f32 {
        (self.v1 - self.v0).cross(self.v2 - self.v0)
    }

    /// True when the triangle has (numerically) zero area.
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.double_area().abs() < 1e-12
    }

    /// Barycentric coordinates of `p`, for either winding.
    ///
    /// Returns `None` for degenerate triangles.
    #[must_use]
    pub fn barycentric(&self, p: Vec2) -> Option<Barycentric> {
        let area2 = self.double_area();
        if area2.abs() < 1e-12 {
            return None;
        }
        let inv = 1.0 / area2;
        let l1 = (p - self.v0).cross(self.v2 - self.v0) * inv;
        let l2 = (self.v1 - self.v0).cross(p - self.v0) * inv;
        Some(Barycentric {
            l0: 1.0 - l1 - l2,
            l1,
            l2,
        })
    }

    /// True when `p` is inside or on the boundary.
    #[must_use]
    pub fn covers(&self, p: Vec2) -> bool {
        self.barycentric(p).is_some_and(|b| {
            // tolerate tiny negative weights from float rounding on edges
            b.l0 >= -1e-6 && b.l1 >= -1e-6 && b.l2 >= -1e-6
        })
    }

    /// Integer pixel bounding box (conservative, half-open).
    #[must_use]
    pub fn pixel_bounds(&self) -> Rect {
        let min = self.v0.min_elem(self.v1).min_elem(self.v2);
        let max = self.v0.max_elem(self.v1).max_elem(self.v2);
        Rect::new(
            min.x.floor() as i32,
            min.y.floor() as i32,
            max.x.ceil() as i32,
            max.y.ceil() as i32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Triangle2 {
        Triangle2::new(
            Vec2::new(0.0, 0.0),
            Vec2::new(10.0, 0.0),
            Vec2::new(0.0, 10.0),
        )
    }

    #[test]
    fn barycentric_at_vertices() {
        let t = tri();
        let b = t.barycentric(t.v0).unwrap();
        assert!((b.l0 - 1.0).abs() < 1e-6);
        let b = t.barycentric(t.v1).unwrap();
        assert!((b.l1 - 1.0).abs() < 1e-6);
        let b = t.barycentric(t.v2).unwrap();
        assert!((b.l2 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn barycentric_sums_to_one() {
        let t = tri();
        for p in [
            Vec2::new(1.0, 1.0),
            Vec2::new(20.0, -3.0),
            Vec2::new(3.3, 3.3),
        ] {
            let b = t.barycentric(p).unwrap();
            assert!((b.l0 + b.l1 + b.l2 - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn covers_inside_and_outside() {
        let t = tri();
        assert!(t.covers(Vec2::new(2.0, 2.0)));
        assert!(t.covers(Vec2::new(0.0, 0.0)), "vertex is covered");
        assert!(t.covers(Vec2::new(5.0, 0.0)), "edge is covered");
        assert!(!t.covers(Vec2::new(6.0, 6.0)));
        assert!(!t.covers(Vec2::new(-0.1, 0.0)));
    }

    #[test]
    fn covers_works_for_both_windings() {
        let t = tri();
        let rev = Triangle2::new(t.v2, t.v1, t.v0);
        assert!(rev.covers(Vec2::new(2.0, 2.0)));
        assert!(!rev.covers(Vec2::new(6.0, 6.0)));
    }

    #[test]
    fn degenerate_triangle() {
        let t = Triangle2::new(
            Vec2::new(1.0, 1.0),
            Vec2::new(2.0, 2.0),
            Vec2::new(3.0, 3.0),
        );
        assert!(t.is_degenerate());
        assert!(t.barycentric(Vec2::new(1.5, 1.5)).is_none());
        assert!(!t.covers(Vec2::new(1.5, 1.5)));
    }

    #[test]
    fn interpolation_is_linear() {
        let t = tri();
        // attribute equal to x coordinate
        let b = t.barycentric(Vec2::new(3.0, 4.0)).unwrap();
        let x = b.interpolate(t.v0.x, t.v1.x, t.v2.x);
        assert!((x - 3.0).abs() < 1e-5);
        let p = b.interpolate2(t.v0, t.v1, t.v2);
        assert!((p - Vec2::new(3.0, 4.0)).length() < 1e-4);
    }

    #[test]
    fn pixel_bounds_conservative() {
        let t = Triangle2::new(
            Vec2::new(0.5, 0.5),
            Vec2::new(9.5, 0.5),
            Vec2::new(0.5, 9.5),
        );
        let b = t.pixel_bounds();
        assert_eq!(b, Rect::new(0, 0, 10, 10));
    }

    #[test]
    fn double_area_sign_tracks_winding() {
        let t = tri();
        let rev = Triangle2::new(t.v2, t.v1, t.v0);
        assert_eq!(t.double_area(), -rev.double_area());
        assert_eq!(t.double_area().abs(), 100.0);
    }
}
