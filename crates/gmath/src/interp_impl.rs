//! Perspective-correct interpolation and screen-space derivatives.
//!
//! The rasterizer interpolates vertex attributes (texture coordinates,
//! depth) across a primitive. With a perspective projection, attributes
//! must be interpolated as `a/w` and divided by interpolated `1/w`
//! ("perspective-correct"). Texture LOD selection needs the screen-space
//! derivatives `∂(u,v)/∂x` and `∂(u,v)/∂y`, which the hardware computes
//! per 2×2 quad by finite differences — exactly what
//! [`attr_derivatives`] does.

use crate::{Barycentric, Vec2};

/// Per-primitive attribute plane set up once per triangle: stores the
/// per-vertex `a/w` values plus per-vertex `1/w`, and evaluates the
/// perspective-correct attribute at any barycentric position.
///
/// # Examples
///
/// ```
/// use dtexl_gmath::interp::AttrPlane;
/// use dtexl_gmath::{Barycentric, Vec2};
///
/// // All three vertices at w = 1 degenerate to linear interpolation.
/// let plane = AttrPlane::new(
///     [Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0), Vec2::new(0.0, 1.0)],
///     [1.0, 1.0, 1.0],
/// );
/// let mid = Barycentric { l0: 1.0 / 3.0, l1: 1.0 / 3.0, l2: 1.0 / 3.0 };
/// let uv = plane.eval(mid);
/// assert!((uv.x - 1.0 / 3.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttrPlane {
    a_over_w: [Vec2; 3],
    inv_w: [f32; 3],
}

impl AttrPlane {
    /// Set up the plane from per-vertex attribute values and per-vertex
    /// clip-space `w`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any `w` is zero (primitives are clipped
    /// against the near plane before rasterization).
    #[must_use]
    pub fn new(attrs: [Vec2; 3], w: [f32; 3]) -> Self {
        debug_assert!(w.iter().all(|&w| w != 0.0));
        let inv_w = [1.0 / w[0], 1.0 / w[1], 1.0 / w[2]];
        Self {
            a_over_w: [
                attrs[0] * inv_w[0],
                attrs[1] * inv_w[1],
                attrs[2] * inv_w[2],
            ],
            inv_w,
        }
    }

    /// Evaluate the perspective-correct attribute at `b`.
    #[must_use]
    pub fn eval(&self, b: Barycentric) -> Vec2 {
        let aw = self.a_over_w[0] * b.l0 + self.a_over_w[1] * b.l1 + self.a_over_w[2] * b.l2;
        let iw = b.l0 * self.inv_w[0] + b.l1 * self.inv_w[1] + b.l2 * self.inv_w[2];
        persp_correct(aw, iw)
    }
}

/// Recover an attribute from its interpolated `a/w` and `1/w`.
///
/// Falls back to returning `a_over_w` unchanged when `inv_w` is zero,
/// which can only happen for samples outside the clipped primitive.
#[must_use]
pub fn persp_correct(a_over_w: Vec2, inv_w: f32) -> Vec2 {
    if inv_w == 0.0 {
        a_over_w
    } else {
        a_over_w / inv_w
    }
}

/// Finite-difference derivatives over a 2×2 quad of attribute samples.
///
/// `q` is laid out `[top-left, top-right, bottom-left, bottom-right]`
/// with one-pixel spacing, as produced by the rasterizer. Returns
/// `(d/dx, d/dy)` — exactly what GPUs feed into texture LOD selection.
#[must_use]
pub fn attr_derivatives(q: [Vec2; 4]) -> (Vec2, Vec2) {
    let ddx = ((q[1] - q[0]) + (q[3] - q[2])) * 0.5;
    let ddy = ((q[2] - q[0]) + (q[3] - q[1])) * 0.5;
    (ddx, ddy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triangle2;

    #[test]
    fn affine_case_matches_linear_interpolation() {
        let plane = AttrPlane::new(
            [
                Vec2::new(0.0, 0.0),
                Vec2::new(2.0, 0.0),
                Vec2::new(0.0, 2.0),
            ],
            [1.0, 1.0, 1.0],
        );
        let b = Barycentric {
            l0: 0.5,
            l1: 0.25,
            l2: 0.25,
        };
        let v = plane.eval(b);
        assert!((v - Vec2::new(0.5, 0.5)).length() < 1e-6);
    }

    #[test]
    fn perspective_correct_differs_from_affine() {
        // Vertex 1 is twice as far (w = 2); midpoint between v0 and v1 in
        // screen space is NOT the attribute midpoint.
        let plane = AttrPlane::new(
            [
                Vec2::new(0.0, 0.0),
                Vec2::new(1.0, 0.0),
                Vec2::new(0.0, 1.0),
            ],
            [1.0, 2.0, 1.0],
        );
        let b = Barycentric {
            l0: 0.5,
            l1: 0.5,
            l2: 0.0,
        };
        let v = plane.eval(b);
        // perspective-correct value is u = (0.5*0 + 0.5*0.5)/(0.5 + 0.25) = 1/3
        assert!((v.x - 1.0 / 3.0).abs() < 1e-6, "got {}", v.x);
    }

    #[test]
    fn eval_at_vertices_returns_vertex_attr() {
        let attrs = [
            Vec2::new(0.1, 0.9),
            Vec2::new(0.7, 0.2),
            Vec2::new(0.4, 0.4),
        ];
        let plane = AttrPlane::new(attrs, [1.0, 3.0, 0.5]);
        for (i, b) in [
            Barycentric {
                l0: 1.0,
                l1: 0.0,
                l2: 0.0,
            },
            Barycentric {
                l0: 0.0,
                l1: 1.0,
                l2: 0.0,
            },
            Barycentric {
                l0: 0.0,
                l1: 0.0,
                l2: 1.0,
            },
        ]
        .iter()
        .enumerate()
        {
            assert!((plane.eval(*b) - attrs[i]).length() < 1e-5);
        }
    }

    #[test]
    fn derivatives_of_linear_field() {
        // u = 0.25 x, v = 0.5 y sampled on a unit quad
        let q = [
            Vec2::new(0.0, 0.0),
            Vec2::new(0.25, 0.0),
            Vec2::new(0.0, 0.5),
            Vec2::new(0.25, 0.5),
        ];
        let (ddx, ddy) = attr_derivatives(q);
        assert!((ddx - Vec2::new(0.25, 0.0)).length() < 1e-6);
        assert!((ddy - Vec2::new(0.0, 0.5)).length() < 1e-6);
    }

    #[test]
    fn plane_and_triangle_agree_on_screen_positions() {
        // Interpolating the screen position itself must reproduce p.
        let t = Triangle2::new(
            Vec2::new(0.0, 0.0),
            Vec2::new(8.0, 0.0),
            Vec2::new(0.0, 8.0),
        );
        let plane = AttrPlane::new([t.v0, t.v1, t.v2], [1.0, 1.0, 1.0]);
        let p = Vec2::new(2.5, 3.5);
        let b = t.barycentric(p).unwrap();
        assert!((plane.eval(b) - p).length() < 1e-4);
    }

    #[test]
    fn persp_correct_zero_inv_w() {
        let v = Vec2::new(0.3, 0.4);
        assert_eq!(persp_correct(v, 0.0), v);
    }
}
