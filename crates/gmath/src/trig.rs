//! Bit-deterministic sine/cosine for transforms and scene generation.
//!
//! `f32::sin`/`cos`/`tan` lower to libm calls. When inlining makes an
//! argument a compile-time constant, LLVM folds the call using the
//! *compiler's* math library, which can disagree with the runtime
//! libm by an ulp — so the same source produced different rotation
//! matrices (and thus different simulation metrics) depending on how
//! aggressively the build inlined (plain release vs. thin-LTO). The
//! functions here use only +, −, ×, ÷ and exactly-specified intrinsics
//! (`round`), all of which constant-fold to the exact runtime result,
//! making every build profile bit-identical.
//!
//! Accuracy is a few ulps over the ranges the generators use (|angle|
//! up to a few multiples of τ) — far below anything the simulation
//! can observe, and determinism, not last-ulp fidelity, is the
//! contract here.

use std::f32::consts::FRAC_PI_2;

/// Odd polynomial for `sin r`, `r ∈ [-π/4, π/4]` (Taylor to `r⁷`,
/// max error ≈ 2⁻²⁷ at the interval edge — below half an ulp of the
/// result there).
#[inline]
fn sin_kernel(r: f32) -> f32 {
    let r2 = r * r;
    r + r * r2 * (-1.0 / 6.0 + r2 * (1.0 / 120.0 + r2 * (-1.0 / 5040.0)))
}

/// Even polynomial for `cos r`, `r ∈ [-π/4, π/4]` (Taylor to `r⁸`).
#[inline]
fn cos_kernel(r: f32) -> f32 {
    let r2 = r * r;
    1.0 + r2 * (-1.0 / 2.0 + r2 * (1.0 / 24.0 + r2 * (-1.0 / 720.0 + r2 * (1.0 / 40320.0))))
}

/// Deterministic `(sin angle, cos angle)`; drop-in for
/// [`f32::sin_cos`]. `angle` is in radians.
#[must_use]
pub fn sin_cos(angle: f32) -> (f32, f32) {
    // Quadrant reduction: angle = k·(π/2) + r with r ∈ [-π/4, π/4].
    // π/2 is not exactly representable, so the reduction itself loses
    // accuracy for huge angles; generators only pass a few radians.
    let k = (angle * std::f32::consts::FRAC_2_PI).round();
    let r = angle - k * FRAC_PI_2;
    let (s, c) = (sin_kernel(r), cos_kernel(r));
    match (k as i64).rem_euclid(4) {
        0 => (s, c),
        1 => (c, -s),
        2 => (-s, -c),
        _ => (-c, s),
    }
}

/// Deterministic `sin angle` (radians).
#[must_use]
pub fn sin(angle: f32) -> f32 {
    sin_cos(angle).0
}

/// Deterministic `cos angle` (radians).
#[must_use]
pub fn cos(angle: f32) -> f32 {
    sin_cos(angle).1
}

/// Deterministic `1 / tan angle` (radians), the cotangent form
/// perspective projections need.
#[must_use]
pub fn cot(angle: f32) -> f32 {
    let (s, c) = sin_cos(angle);
    c / s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, FRAC_PI_4, PI, TAU};

    #[test]
    fn matches_libm_closely() {
        // Sweep the range the generators use; a few ulps of slack.
        let mut worst = 0f32;
        for i in -2000..=2000 {
            let a = i as f32 * (TAU / 1000.0);
            let (s, c) = sin_cos(a);
            worst = worst.max((s - a.sin()).abs()).max((c - a.cos()).abs());
        }
        assert!(worst < 1e-6, "max deviation from libm: {worst}");
    }

    #[test]
    fn exact_at_quadrant_multiples() {
        // k·π/2 reduces to r = 0 where the kernels are exact.
        assert_eq!(sin_cos(0.0), (0.0, 1.0));
        let (s, c) = sin_cos(FRAC_PI_2);
        assert_eq!(s, 1.0);
        assert!(c.abs() < 1e-7);
        let (s, c) = sin_cos(PI);
        assert!(s.abs() < 1e-7);
        assert_eq!(c, -1.0);
    }

    #[test]
    fn pythagorean_identity_holds() {
        for i in 0..100 {
            let a = i as f32 * 0.1 - 5.0;
            let (s, c) = sin_cos(a);
            assert!((s * s + c * c - 1.0).abs() < 1e-6, "at {a}");
        }
    }

    #[test]
    fn cot_matches_reciprocal_tan() {
        for a in [0.3f32, FRAC_PI_4, 1.0, 1.4] {
            assert!((cot(a) - 1.0 / a.tan()).abs() < 1e-5, "at {a}");
        }
    }
}
