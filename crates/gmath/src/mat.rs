//! 4×4 column-major matrices.

use crate::{Vec3, Vec4};
use std::fmt;
use std::ops::Mul;

/// A 4×4 column-major `f32` matrix.
///
/// Column-major storage matches OpenGL conventions: `cols[c]` is the
/// `c`-th column, and transforming a vector is `m * v`.
///
/// # Examples
///
/// ```
/// use dtexl_gmath::{Mat4, Vec3, Vec4};
/// let t = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
/// let p = t * Vec4::new(0.0, 0.0, 0.0, 1.0);
/// assert_eq!(p.xyz(), Vec3::new(1.0, 2.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    cols: [Vec4; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        cols: [
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        ],
    };

    /// Build a matrix from four columns.
    #[must_use]
    pub const fn from_cols(c0: Vec4, c1: Vec4, c2: Vec4, c3: Vec4) -> Self {
        Self {
            cols: [c0, c1, c2, c3],
        }
    }

    /// The `c`-th column.
    ///
    /// # Panics
    ///
    /// Panics if `c >= 4`.
    #[must_use]
    pub fn col(&self, c: usize) -> Vec4 {
        self.cols[c]
    }

    /// Element at row `r`, column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 4` or `c >= 4`.
    #[must_use]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.cols[c][r]
    }

    /// Translation by `t`.
    #[must_use]
    pub fn translation(t: Vec3) -> Self {
        let mut m = Self::IDENTITY;
        m.cols[3] = Vec4::new(t.x, t.y, t.z, 1.0);
        m
    }

    /// Non-uniform scale.
    #[must_use]
    pub fn scale(s: Vec3) -> Self {
        Self::from_cols(
            Vec4::new(s.x, 0.0, 0.0, 0.0),
            Vec4::new(0.0, s.y, 0.0, 0.0),
            Vec4::new(0.0, 0.0, s.z, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation of `angle` radians around the X axis.
    #[must_use]
    pub fn rotation_x(angle: f32) -> Self {
        let (s, c) = crate::trig::sin_cos(angle);
        Self::from_cols(
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, c, s, 0.0),
            Vec4::new(0.0, -s, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation of `angle` radians around the Y axis.
    #[must_use]
    pub fn rotation_y(angle: f32) -> Self {
        let (s, c) = crate::trig::sin_cos(angle);
        Self::from_cols(
            Vec4::new(c, 0.0, -s, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(s, 0.0, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation of `angle` radians around the Z axis.
    #[must_use]
    pub fn rotation_z(angle: f32) -> Self {
        let (s, c) = crate::trig::sin_cos(angle);
        Self::from_cols(
            Vec4::new(c, s, 0.0, 0.0),
            Vec4::new(-s, c, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Right-handed perspective projection (OpenGL clip conventions,
    /// z ∈ [-w, w]).
    ///
    /// `fovy` is the vertical field of view in radians.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `near >= far`, `near <= 0` or
    /// `aspect <= 0`.
    #[must_use]
    pub fn perspective(fovy: f32, aspect: f32, near: f32, far: f32) -> Self {
        debug_assert!(near > 0.0 && far > near && aspect > 0.0);
        let f = crate::trig::cot(fovy / 2.0);
        Self::from_cols(
            Vec4::new(f / aspect, 0.0, 0.0, 0.0),
            Vec4::new(0.0, f, 0.0, 0.0),
            Vec4::new(0.0, 0.0, (far + near) / (near - far), -1.0),
            Vec4::new(0.0, 0.0, 2.0 * far * near / (near - far), 0.0),
        )
    }

    /// Right-handed orthographic projection (OpenGL clip conventions).
    #[must_use]
    pub fn orthographic(left: f32, right: f32, bottom: f32, top: f32, near: f32, far: f32) -> Self {
        let rl = right - left;
        let tb = top - bottom;
        let fne = far - near;
        Self::from_cols(
            Vec4::new(2.0 / rl, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 2.0 / tb, 0.0, 0.0),
            Vec4::new(0.0, 0.0, -2.0 / fne, 0.0),
            Vec4::new(
                -(right + left) / rl,
                -(top + bottom) / tb,
                -(far + near) / fne,
                1.0,
            ),
        )
    }

    /// Right-handed view matrix looking from `eye` toward `center`.
    #[must_use]
    pub fn look_at(eye: Vec3, center: Vec3, up: Vec3) -> Self {
        let f = (center - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Self::from_cols(
            Vec4::new(s.x, u.x, -f.x, 0.0),
            Vec4::new(s.y, u.y, -f.y, 0.0),
            Vec4::new(s.z, u.z, -f.z, 0.0),
            Vec4::new(-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0),
        )
    }

    /// Matrix transpose.
    #[must_use]
    pub fn transposed(&self) -> Self {
        let m = self;
        Self::from_cols(
            Vec4::new(m.at(0, 0), m.at(0, 1), m.at(0, 2), m.at(0, 3)),
            Vec4::new(m.at(1, 0), m.at(1, 1), m.at(1, 2), m.at(1, 3)),
            Vec4::new(m.at(2, 0), m.at(2, 1), m.at(2, 2), m.at(2, 3)),
            Vec4::new(m.at(3, 0), m.at(3, 1), m.at(3, 2), m.at(3, 3)),
        )
    }
}

impl Mul<Vec4> for Mat4 {
    type Output = Vec4;

    fn mul(self, v: Vec4) -> Vec4 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z + self.cols[3] * v.w
    }
}

impl Mul for Mat4 {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        Self {
            cols: [
                self * rhs.cols[0],
                self * rhs.cols[1],
                self * rhs.cols[2],
                self * rhs.cols[3],
            ],
        }
    }
}

impl fmt::Display for Mat4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..4 {
            writeln!(
                f,
                "[{:8.4} {:8.4} {:8.4} {:8.4}]",
                self.at(r, 0),
                self.at(r, 1),
                self.at(r, 2),
                self.at(r, 3)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec2;

    fn approx(a: Vec4, b: Vec4) -> bool {
        (a - b).length() < 1e-5
    }

    #[test]
    fn identity_is_neutral() {
        let v = Vec4::new(1.0, -2.0, 3.0, 1.0);
        assert_eq!(Mat4::IDENTITY * v, v);
        let m = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(Mat4::IDENTITY * m, m);
        assert_eq!(m * Mat4::IDENTITY, m);
    }

    #[test]
    fn translation_moves_points_not_directions() {
        let t = Mat4::translation(Vec3::new(5.0, 0.0, 0.0));
        let p = t * Vec4::new(1.0, 1.0, 1.0, 1.0);
        assert_eq!(p.xyz(), Vec3::new(6.0, 1.0, 1.0));
        let d = t * Vec4::new(1.0, 1.0, 1.0, 0.0);
        assert_eq!(d.xyz(), Vec3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn scale_scales() {
        let s = Mat4::scale(Vec3::new(2.0, 3.0, 4.0));
        let p = s * Vec4::new(1.0, 1.0, 1.0, 1.0);
        assert_eq!(p.xyz(), Vec3::new(2.0, 3.0, 4.0));
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let r = Mat4::rotation_z(std::f32::consts::FRAC_PI_2);
        let p = r * Vec4::new(1.0, 0.0, 0.0, 1.0);
        assert!(approx(p, Vec4::new(0.0, 1.0, 0.0, 1.0)));
    }

    #[test]
    fn rotation_preserves_length() {
        let r = Mat4::rotation_x(0.7) * Mat4::rotation_y(-1.3) * Mat4::rotation_z(2.1);
        let v = Vec4::new(1.0, 2.0, 3.0, 0.0);
        assert!(((r * v).length() - v.length()).abs() < 1e-5);
    }

    #[test]
    fn matrix_multiply_composes() {
        let a = Mat4::translation(Vec3::new(1.0, 0.0, 0.0));
        let b = Mat4::scale(Vec3::new(2.0, 2.0, 2.0));
        let v = Vec4::new(1.0, 1.0, 1.0, 1.0);
        // (a*b) v == a (b v)
        assert_eq!((a * b) * v, a * (b * v));
    }

    #[test]
    fn perspective_maps_near_far_to_clip_bounds() {
        let p = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 1.0, 100.0);
        let near = (p * Vec4::new(0.0, 0.0, -1.0, 1.0)).project();
        let far = (p * Vec4::new(0.0, 0.0, -100.0, 1.0)).project();
        assert!((near.z + 1.0).abs() < 1e-4, "near plane maps to -1");
        assert!((far.z - 1.0).abs() < 1e-4, "far plane maps to +1");
    }

    #[test]
    fn orthographic_maps_box_to_ndc() {
        let o = Mat4::orthographic(0.0, 10.0, 0.0, 5.0, 1.0, 11.0);
        let lo = (o * Vec4::new(0.0, 0.0, -1.0, 1.0)).project();
        let hi = (o * Vec4::new(10.0, 5.0, -11.0, 1.0)).project();
        assert!((lo.xy() - Vec2::new(-1.0, -1.0)).length() < 1e-5);
        assert!((hi.xy() - Vec2::new(1.0, 1.0)).length() < 1e-5);
    }

    #[test]
    fn look_at_centers_target() {
        let v = Mat4::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        let c = v * Vec4::new(0.0, 0.0, 0.0, 1.0);
        assert!(approx(c, Vec4::new(0.0, 0.0, -5.0, 1.0)));
    }

    #[test]
    fn transpose_involution() {
        let m = Mat4::perspective(1.0, 1.5, 0.1, 10.0);
        assert_eq!(m.transposed().transposed(), m);
    }
}
