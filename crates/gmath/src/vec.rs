//! Column vectors with component-wise arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

macro_rules! impl_binop {
    ($ty:ident, $($f:ident),+) => {
        impl Add for $ty {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self { $($f: self.$f + rhs.$f),+ }
            }
        }
        impl Sub for $ty {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self { $($f: self.$f - rhs.$f),+ }
            }
        }
        impl Neg for $ty {
            type Output = Self;
            fn neg(self) -> Self {
                Self { $($f: -self.$f),+ }
            }
        }
        impl Mul<f32> for $ty {
            type Output = Self;
            fn mul(self, s: f32) -> Self {
                Self { $($f: self.$f * s),+ }
            }
        }
        impl Mul<$ty> for f32 {
            type Output = $ty;
            fn mul(self, v: $ty) -> $ty {
                v * self
            }
        }
        impl Div<f32> for $ty {
            type Output = Self;
            fn div(self, s: f32) -> Self {
                Self { $($f: self.$f / s),+ }
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }
        impl MulAssign<f32> for $ty {
            fn mul_assign(&mut self, s: f32) {
                *self = *self * s;
            }
        }
        impl DivAssign<f32> for $ty {
            fn div_assign(&mut self, s: f32) {
                *self = *self / s;
            }
        }
        impl $ty {
            /// Dot product.
            #[must_use]
            pub fn dot(self, rhs: Self) -> f32 {
                let mut acc = 0.0;
                $(acc += self.$f * rhs.$f;)+
                acc
            }

            /// Euclidean length.
            #[must_use]
            pub fn length(self) -> f32 {
                self.dot(self).sqrt()
            }

            /// Unit-length copy of this vector.
            ///
            /// Returns the vector unchanged when its length is zero, so
            /// degenerate primitives never produce NaNs downstream.
            #[must_use]
            pub fn normalized(self) -> Self {
                let len = self.length();
                if len == 0.0 {
                    self
                } else {
                    self / len
                }
            }

            /// Component-wise multiplication.
            #[must_use]
            pub fn mul_elem(self, rhs: Self) -> Self {
                Self { $($f: self.$f * rhs.$f),+ }
            }

            /// Component-wise minimum.
            #[must_use]
            pub fn min_elem(self, rhs: Self) -> Self {
                Self { $($f: self.$f.min(rhs.$f)),+ }
            }

            /// Component-wise maximum.
            #[must_use]
            pub fn max_elem(self, rhs: Self) -> Self {
                Self { $($f: self.$f.max(rhs.$f)),+ }
            }

            /// Linear interpolation: `self + (rhs - self) * t`.
            #[must_use]
            pub fn lerp(self, rhs: Self, t: f32) -> Self {
                self + (rhs - self) * t
            }
        }
    };
}

/// A 2-component `f32` vector (screen positions, texture coordinates).
///
/// # Examples
///
/// ```
/// use dtexl_gmath::Vec2;
/// let uv = Vec2::new(0.25, 0.75);
/// assert_eq!(uv + uv, Vec2::new(0.5, 1.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f32,
    /// Vertical component.
    pub y: f32,
}

/// A 3-component `f32` vector (object-space positions, normals, colors).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// A 4-component `f32` vector (homogeneous/clip-space positions, RGBA).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W (homogeneous) component.
    pub w: f32,
}

impl_binop!(Vec2, x, y);
impl_binop!(Vec3, x, y, z);
impl_binop!(Vec4, x, y, z, w);

impl Vec2 {
    /// Create a vector from components.
    #[must_use]
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// The zero vector.
    pub const ZERO: Self = Self::new(0.0, 0.0);

    /// 2-D cross product (z of the 3-D cross), twice the signed area of
    /// the triangle `(0, self, rhs)`.
    #[must_use]
    pub fn cross(self, rhs: Self) -> f32 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Perpendicular (rotated 90° counter-clockwise).
    #[must_use]
    pub fn perp(self) -> Self {
        Self::new(-self.y, self.x)
    }
}

impl Vec3 {
    /// Create a vector from components.
    #[must_use]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Self = Self::new(0.0, 0.0, 0.0);

    /// 3-D cross product.
    #[must_use]
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Extend to a homogeneous [`Vec4`] with the given `w`.
    #[must_use]
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }

    /// Drop the z component.
    #[must_use]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

impl Vec4 {
    /// Create a vector from components.
    #[must_use]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// The zero vector.
    pub const ZERO: Self = Self::new(0.0, 0.0, 0.0, 0.0);

    /// Drop the w component.
    #[must_use]
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Drop the z and w components.
    #[must_use]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Perspective division: `(x/w, y/w, z/w)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `w == 0`; the geometry pipeline clips
    /// against the near plane before dividing so this never fires there.
    #[must_use]
    pub fn project(self) -> Vec3 {
        debug_assert!(self.w != 0.0, "perspective division by w = 0");
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }
}

impl From<[f32; 2]> for Vec2 {
    fn from(a: [f32; 2]) -> Self {
        Self::new(a[0], a[1])
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl From<[f32; 4]> for Vec4 {
    fn from(a: [f32; 4]) -> Self {
        Self::new(a[0], a[1], a[2], a[3])
    }
}

impl From<Vec2> for [f32; 2] {
    fn from(v: Vec2) -> Self {
        [v.x, v.y]
    }
}

impl From<Vec3> for [f32; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl From<Vec4> for [f32; 4] {
    fn from(v: Vec4) -> Self {
        [v.x, v.y, v.z, v.w]
    }
}

impl Index<usize> for Vec4 {
    type Output = f32;

    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            3 => &self.w,
            // lint: allow(no-panic) -- std::ops::Index's contract requires a panic on out-of-range indices
            _ => panic!("Vec4 index {i} out of range"),
        }
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl fmt::Display for Vec4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.x, self.y, self.z, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
    }

    #[test]
    fn vec2_cross_is_signed_area() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn vec3_cross_orthogonal() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        let c = a.cross(b);
        assert_eq!(c, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(c.dot(a), 0.0);
        assert_eq!(c.dot(b), 0.0);
    }

    #[test]
    fn dot_and_length() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.dot(v), 25.0);
        assert_eq!(v.length(), 5.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_is_identity() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn project_divides_by_w() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.project(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn elementwise_min_max() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(3.0, 2.0);
        assert_eq!(a.min_elem(b), Vec2::new(1.0, 2.0));
        assert_eq!(a.max_elem(b), Vec2::new(3.0, 5.0));
    }

    #[test]
    fn conversions_roundtrip() {
        let v = Vec4::new(1.0, 2.0, 3.0, 4.0);
        let a: [f32; 4] = v.into();
        assert_eq!(Vec4::from(a), v);
        assert_eq!(v.xyz().xy(), Vec2::new(1.0, 2.0));
        assert_eq!(v[0], 1.0);
        assert_eq!(v[3], 4.0);
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::new(1.0, 2.0, 3.0);
        v -= Vec3::new(0.0, 1.0, 0.0);
        v *= 2.0;
        v /= 4.0;
        assert_eq!(v, Vec3::new(1.0, 1.0, 2.0));
    }

    #[test]
    fn perp_rotates_ccw() {
        assert_eq!(Vec2::new(1.0, 0.0).perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn vec4_index_reads_all_lanes() {
        // The checked counterpart of `vec4_index_out_of_range`: every
        // in-range index resolves to its component.
        let v = Vec4::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!((v[0], v[1], v[2], v[3]), (1.0, 2.0, 3.0, 4.0));
    }

    #[test]
    // lint: typed-sibling(vec4_index_reads_all_lanes)
    #[should_panic(expected = "out of range")]
    fn vec4_index_out_of_range() {
        let _ = Vec4::ZERO[4];
    }
}
