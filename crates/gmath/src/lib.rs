//! Math substrate for the DTexL GPU simulator.
//!
//! This crate provides the small, dependency-free linear-algebra and
//! rasterization-geometry toolkit used by the geometry pipeline, the
//! tiling engine and the rasterizer:
//!
//! * [`Vec2`], [`Vec3`], [`Vec4`] — column vectors with the usual
//!   component-wise arithmetic, dot/cross products and swizzle helpers.
//! * [`Mat4`] — 4×4 column-major matrices with the standard model/view/
//!   projection constructors ([`Mat4::perspective`], [`Mat4::look_at`],
//!   [`Mat4::translation`], …).
//! * [`Rect`] — half-open integer rectangles used for tiles, subtiles and
//!   scissor regions.
//! * [`Triangle2`] — screen-space triangles with edge functions and
//!   barycentric interpolation, the core of the rasterizer.
//! * [`interp`] — perspective-correct attribute interpolation and the
//!   finite-difference derivative estimates used for texture LOD.
//!
//! # Examples
//!
//! ```
//! use dtexl_gmath::{Mat4, Vec3, Vec4};
//!
//! let mvp = Mat4::perspective(60f32.to_radians(), 16.0 / 9.0, 0.1, 100.0)
//!     * Mat4::translation(Vec3::new(0.0, 0.0, -5.0));
//! let clip = mvp * Vec4::new(0.0, 0.0, 0.0, 1.0);
//! assert!(clip.w > 0.0, "point in front of the camera");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interp_impl;
mod mat;
mod rect;
mod tri;
pub mod trig;
mod vec;

pub use mat::Mat4;
pub use rect::Rect;
pub use tri::{Barycentric, Triangle2};
pub use vec::{Vec2, Vec3, Vec4};

/// Perspective-correct interpolation and quad-derivative helpers.
pub mod interp {
    pub use crate::interp_impl::{attr_derivatives, persp_correct, AttrPlane};
}

/// Clamp `v` into `[lo, hi]`, tolerating `lo > hi` by returning `lo`.
///
/// A small convenience used throughout the rasterizer when intersecting
/// primitive bounding boxes with tile bounds.
///
/// # Examples
///
/// ```
/// assert_eq!(dtexl_gmath::clamp_i32(5, 0, 3), 3);
/// ```
#[must_use]
pub fn clamp_i32(v: i32, lo: i32, hi: i32) -> i32 {
    if hi < lo {
        return lo;
    }
    v.max(lo).min(hi)
}
