//! Deterministic sim-time observability for the DTexL pipeline.
//!
//! The simulator's headline numbers are two aggregate cycle counts out
//! of `compose_frame` — useless for explaining *why* decoupled barriers
//! win. This crate supplies the event layer underneath those numbers:
//! the pipeline stages record, per (SC, stage, tile), how many cycles a
//! unit spent busy versus waiting, and the memory hierarchy records per
//! subtile L1/L2 hit/miss and DRAM-spike counts.
//!
//! Design constraints (all load-bearing, mirroring `dtexl-alloc`):
//!
//! * **Zero dependencies.** The [`perfetto`] exporter hand-rolls its
//!   JSON; nothing here touches the vendored registry.
//! * **Compiles to a no-op when disabled.** Instrumented code is
//!   generic over [`Probe`]; the default [`NullProbe`] reports
//!   `enabled() == false` from an inlined constant, so the
//!   uninstrumented monomorphization carries no event plumbing and the
//!   sweep/bench paths keep their allocation profile.
//! * **Determinism is non-negotiable.** An [`Event`] carries *simulated*
//!   time stamps and counters only — never wall-clock values — and the
//!   pipeline records events on its serial replay path in tile-major /
//!   SC-ascending order, so the event stream is bit-identical across
//!   `threads` settings (pinned by `tests/obs_determinism.rs`).
//! * **Bounded memory.** [`EventSink`] is a ring buffer: recording never
//!   allocates past the configured capacity, and overflow is surfaced
//!   as a [`dropped`](EventSink::dropped) count instead of silent loss.

pub mod perfetto;
pub mod rollup;

pub use rollup::{ObsRollup, RollupMode, RollupProbe, StallRollup};

/// A pipeline stage, in dataflow order. `Fetch` and `Raster` are serial
/// units (their spans always carry `sc == 0`); the back half runs four
/// parallel shader-core units per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Texture/vertex fetch (serial front-end unit).
    Fetch,
    /// Rasterization into quads (serial front-end unit).
    Raster,
    /// Early depth test (4 SC units).
    EarlyZ,
    /// Fragment shading (4 SC units).
    Fragment,
    /// Blend/output merge (4 SC units).
    Blend,
}

impl Stage {
    /// All stages in dataflow order.
    pub const ALL: [Stage; 5] = [
        Stage::Fetch,
        Stage::Raster,
        Stage::EarlyZ,
        Stage::Fragment,
        Stage::Blend,
    ];

    /// Stable display name (also the Perfetto track-name prefix).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Fetch => "fetch",
            Stage::Raster => "raster",
            Stage::EarlyZ => "early_z",
            Stage::Fragment => "fragment",
            Stage::Blend => "blend",
        }
    }

    /// Whether the stage has one unit per shader core (the back half)
    /// as opposed to a single serial unit.
    #[must_use]
    pub fn is_per_sc(self) -> bool {
        matches!(self, Stage::EarlyZ | Stage::Fragment | Stage::Blend)
    }
}

/// What a unit was doing during a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Executing its per-tile work.
    Busy,
    /// Stalled on its producer stage (no input available yet).
    WaitUpstream,
    /// Finished its work but held by a barrier: sibling units under a
    /// coupled barrier, or the credit floor under a bounded decoupled
    /// barrier.
    WaitBarrier,
}

impl SpanKind {
    /// Stable display name (also used in Perfetto event args).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Busy => "busy",
            SpanKind::WaitUpstream => "wait_upstream",
            SpanKind::WaitBarrier => "wait_barrier",
        }
    }
}

/// One half-open interval `[start, end)` of simulated cycles on one
/// unit, attributed to busy work or a specific kind of wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Stage the unit belongs to.
    pub stage: Stage,
    /// Shader core index (always 0 for the serial front-end stages).
    pub sc: u8,
    /// Tile index the interval is attributed to.
    pub tile: u32,
    /// Attribution.
    pub kind: SpanKind,
    /// Start cycle (inclusive).
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
}

impl Span {
    /// Interval length in cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Memory-hierarchy counters for one fragment subtile (one SC's share
/// of one tile), deltas over that subtile's trace + replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemSample {
    /// Tile index.
    pub tile: u32,
    /// Shader core the subtile ran on.
    pub sc: u8,
    /// Private-L1 hits during the trace pass.
    pub l1_hits: u64,
    /// Private-L1 misses (these become L2 requests).
    pub l1_misses: u64,
    /// Shared-L2 hits during demand replay.
    pub l2_hits: u64,
    /// Shared-L2 misses (these become DRAM requests).
    pub l2_misses: u64,
    /// DRAM requests issued during demand replay.
    pub dram_requests: u64,
    /// DRAM requests that landed on a modeled latency spike.
    pub dram_spikes: u64,
}

/// Per-tile rasterizer statistics (serial front end).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RasterSample {
    /// Tile index.
    pub tile: u32,
    /// Primitives from the tile's bin that were scan-converted.
    pub prims: u32,
    /// Covered quads emitted into the tile's quad list.
    pub quads: u32,
}

/// One observability event. Everything in here is simulated state —
/// wall-clock values never enter the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Event {
    /// A busy/wait interval on one unit.
    Span(Span),
    /// Memory-hierarchy counters for one fragment subtile.
    Mem(MemSample),
    /// Rasterizer output counts for one tile.
    Raster(RasterSample),
}

/// An event consumer threaded through the instrumented pipeline.
///
/// Instrumented code is generic over this trait and guards any
/// non-trivial event construction behind [`enabled`](Probe::enabled),
/// so the [`NullProbe`] monomorphization compiles the instrumentation
/// out entirely.
pub trait Probe {
    /// Whether this probe wants events at all. Callers may skip event
    /// construction when this is `false`.
    fn enabled(&self) -> bool;
    /// Record one event. Must never panic.
    fn record(&mut self, event: Event);
}

/// Forwarding impl so instrumented helpers can take `&mut P` and pass
/// the probe further down without extra generics gymnastics.
impl<P: Probe + ?Sized> Probe for &mut P {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn record(&mut self, event: Event) {
        (**self).record(event);
    }
}

/// The disabled probe: `enabled()` is a constant `false` and
/// [`record`](Probe::record) is an empty inlined body, so instrumented
/// code monomorphized over it is identical to uninstrumented code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

/// A bounded, ring-buffered event collector.
///
/// Events are kept oldest-first up to `capacity`; past that, each new
/// event overwrites the oldest and bumps [`dropped`](EventSink::dropped)
/// — recording never grows memory past the configured bound and never
/// fails.
#[derive(Debug, Clone)]
pub struct EventSink {
    buf: Vec<Event>,
    cap: usize,
    /// Next write position once the buffer is full (ring head).
    next: usize,
    dropped: u64,
}

impl EventSink {
    /// Default capacity: roomy enough for every span + mem sample of a
    /// full-resolution frame under both barrier modes (~16 events per
    /// tile per mode) with two orders of magnitude to spare.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A sink with [`DEFAULT_CAPACITY`](Self::DEFAULT_CAPACITY).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A sink bounded at `capacity` events (clamped to at least 1).
    /// The buffer grows lazily — capacity is a bound, not a
    /// preallocation.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::new(),
            cap: capacity.max(1),
            next: 0,
            dropped: 0,
        }
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events have been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (newer, older) = self.buf.split_at(self.next.min(self.buf.len()));
        older.iter().chain(newer.iter())
    }

    /// Retained events, oldest first, as an owned vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<Event> {
        self.iter().copied().collect()
    }

    /// Just the [`Span`] events, oldest first.
    #[must_use]
    pub fn spans(&self) -> Vec<Span> {
        self.iter()
            .filter_map(|e| match e {
                Event::Span(s) => Some(*s),
                _ => None,
            })
            .collect()
    }

    /// Just the [`MemSample`] events, oldest first.
    #[must_use]
    pub fn mem_samples(&self) -> Vec<MemSample> {
        self.iter()
            .filter_map(|e| match e {
                Event::Mem(m) => Some(*m),
                _ => None,
            })
            .collect()
    }

    /// Just the [`RasterSample`] events, oldest first.
    #[must_use]
    pub fn raster_samples(&self) -> Vec<RasterSample> {
        self.iter()
            .filter_map(|e| match e {
                Event::Raster(r) => Some(*r),
                _ => None,
            })
            .collect()
    }

    /// Drop all retained events and reset the drop counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.dropped = 0;
    }
}

impl Default for EventSink {
    fn default() -> Self {
        Self::new()
    }
}

impl Probe for EventSink {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.next] = event;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(tile: u32, start: u64, end: u64) -> Event {
        Event::Span(Span {
            stage: Stage::Fragment,
            sc: 1,
            tile,
            kind: SpanKind::Busy,
            start,
            end,
        })
    }

    #[test]
    fn null_probe_is_disabled() {
        let mut p = NullProbe;
        assert!(!p.enabled());
        p.record(span(0, 0, 1)); // no-op, must not panic
    }

    #[test]
    fn sink_retains_in_order() {
        let mut sink = EventSink::new();
        for t in 0..5 {
            sink.record(span(t, u64::from(t), u64::from(t) + 1));
        }
        assert_eq!(sink.len(), 5);
        assert_eq!(sink.dropped(), 0);
        let tiles: Vec<u32> = sink.spans().iter().map(|s| s.tile).collect();
        assert_eq!(tiles, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut sink = EventSink::with_capacity(3);
        for t in 0..7 {
            sink.record(span(t, 0, 1));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 4);
        let tiles: Vec<u32> = sink.spans().iter().map(|s| s.tile).collect();
        assert_eq!(tiles, [4, 5, 6], "oldest-first after wrap");
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut sink = EventSink::with_capacity(0);
        sink.record(span(1, 0, 1));
        sink.record(span(2, 0, 1));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.spans()[0].tile, 2);
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn filters_split_event_kinds() {
        let mut sink = EventSink::new();
        sink.record(span(0, 0, 1));
        sink.record(Event::Mem(MemSample {
            tile: 0,
            sc: 2,
            l1_hits: 3,
            ..MemSample::default()
        }));
        sink.record(Event::Raster(RasterSample {
            tile: 0,
            prims: 1,
            quads: 9,
        }));
        assert_eq!(sink.spans().len(), 1);
        assert_eq!(sink.mem_samples().len(), 1);
        assert_eq!(sink.mem_samples()[0].sc, 2);
        assert_eq!(sink.to_vec().len(), 3);
    }

    #[test]
    fn span_cycles_saturate() {
        let s = Span {
            stage: Stage::Fetch,
            sc: 0,
            tile: 0,
            kind: SpanKind::Busy,
            start: 10,
            end: 4,
        };
        assert_eq!(s.cycles(), 0);
    }
}
