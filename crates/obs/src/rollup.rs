//! Deterministic per-job rollups of the observability event stream.
//!
//! A full [`EventSink`](crate::EventSink) capture is the right tool for
//! one frame under a microscope; a fleet sweep needs something it can
//! journal per job without storing megabytes of spans. [`ObsRollup`] is
//! that fixed-field aggregate: per-(SC, stage) busy / wait-upstream /
//! wait-barrier cycle totals under both barrier compositions, plus the
//! frame's memory-hierarchy counters. Aggregation is O(1) state per
//! event — a rollup probe can never drop events or grow memory — and
//! everything in it is simulated-time arithmetic, so rollups inherit
//! the event stream's bit-identity across thread counts and memoized
//! vs fresh execution (pinned by `tests/obs_rollup.rs`).
//!
//! The hand-rolled JSON round-trip ([`ObsRollup::to_json`] /
//! [`ObsRollup::parse`]) is what the sweep journal embeds as each
//! record's `obs` object; it deliberately contains no nested `{}` so
//! journal parsers can slice the object out with a single brace scan.

use crate::{Event, Probe, SpanKind, Stage};

/// Number of (stage, SC) units: two serial front-end units plus three
/// back-half stages × four shader cores.
pub const UNIT_COUNT: usize = 14;

/// Units in dataflow order: the serial front-end stages, then each
/// back-half stage across its four SC units. This is the row order of
/// `dtexl profile`'s stall table and the element order of
/// [`StallRollup::units`].
#[must_use]
pub fn unit_order() -> [(Stage, u8); UNIT_COUNT] {
    [
        (Stage::Fetch, 0),
        (Stage::Raster, 0),
        (Stage::EarlyZ, 0),
        (Stage::EarlyZ, 1),
        (Stage::EarlyZ, 2),
        (Stage::EarlyZ, 3),
        (Stage::Fragment, 0),
        (Stage::Fragment, 1),
        (Stage::Fragment, 2),
        (Stage::Fragment, 3),
        (Stage::Blend, 0),
        (Stage::Blend, 1),
        (Stage::Blend, 2),
        (Stage::Blend, 3),
    ]
}

/// Index of a (stage, SC) unit in [`unit_order`]. Serial front-end
/// stages ignore `sc` (their spans always carry 0); back-half `sc` is
/// clamped to the four modeled shader cores.
#[must_use]
pub fn unit_index(stage: Stage, sc: u8) -> usize {
    let sc = usize::from(sc.min(3));
    match stage {
        Stage::Fetch => 0,
        Stage::Raster => 1,
        Stage::EarlyZ => 2 + sc,
        Stage::Fragment => 6 + sc,
        Stage::Blend => 10 + sc,
    }
}

/// Per-unit cycle totals for one barrier composition:
/// `[busy, wait_upstream, wait_barrier]` per unit, in
/// [`unit_order`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallRollup {
    /// `[busy, wait_upstream, wait_barrier]` cycle totals per unit.
    pub units: [[u64; 3]; UNIT_COUNT],
}

impl StallRollup {
    /// Busy cycles for one unit.
    #[must_use]
    pub fn busy(&self, stage: Stage, sc: u8) -> u64 {
        self.units[unit_index(stage, sc)][0]
    }

    /// Upstream-wait cycles for one unit.
    #[must_use]
    pub fn wait_upstream(&self, stage: Stage, sc: u8) -> u64 {
        self.units[unit_index(stage, sc)][1]
    }

    /// Barrier-wait cycles for one unit.
    #[must_use]
    pub fn wait_barrier(&self, stage: Stage, sc: u8) -> u64 {
        self.units[unit_index(stage, sc)][2]
    }

    /// Column totals across all units:
    /// `[busy, wait_upstream, wait_barrier]`.
    #[must_use]
    pub fn totals(&self) -> [u64; 3] {
        let mut t = [0u64; 3];
        for unit in &self.units {
            for (slot, v) in t.iter_mut().zip(unit) {
                *slot += v;
            }
        }
        t
    }

    fn to_json(self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("[");
        for (i, [b, u, w]) in self.units.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{b},{u},{w}]");
        }
        s.push(']');
        s
    }

    fn parse(body: &str) -> Option<Self> {
        let body = body.trim().strip_prefix('[')?.strip_suffix(']')?;
        let mut units = [[0u64; 3]; UNIT_COUNT];
        let mut count = 0usize;
        for (i, triple) in body.split("],").enumerate() {
            let triple = triple.trim().trim_start_matches('[').trim_end_matches(']');
            let mut vals = triple.split(',');
            let slot = units.get_mut(i)?;
            for v in slot.iter_mut() {
                *v = vals.next()?.trim().parse().ok()?;
            }
            if vals.next().is_some() {
                return None;
            }
            count = i + 1;
        }
        (count == UNIT_COUNT).then_some(Self { units })
    }
}

/// Which pass a [`RollupProbe`] is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollupMode {
    /// The functional simulation pass: accumulate [`Event::Mem`]
    /// counters (spans are not emitted there).
    Sim,
    /// Coupled frame-time composition: accumulate spans into the
    /// coupled stall rollup.
    Coupled,
    /// Decoupled frame-time composition: accumulate spans into the
    /// decoupled stall rollup.
    Decoupled,
}

/// The full per-job rollup: both barrier compositions' stall totals
/// plus the frame's memory-hierarchy counters. Busy cycles are
/// mode-invariant by construction (both compositions replay the same
/// durations), so `coupled.units[i][0] == decoupled.units[i][0]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsRollup {
    /// Stall totals under coupled barriers.
    pub coupled: StallRollup,
    /// Stall totals under (pure) decoupled barriers — `wait_barrier`
    /// is structurally zero there.
    pub decoupled: StallRollup,
    /// Private-L1 hits across all fragment subtiles.
    pub l1_hits: u64,
    /// Private-L1 misses across all fragment subtiles.
    pub l1_misses: u64,
    /// Shared-L2 hits during demand replay.
    pub l2_hits: u64,
    /// Shared-L2 misses during demand replay.
    pub l2_misses: u64,
    /// DRAM requests issued during demand replay.
    pub dram_requests: u64,
    /// DRAM requests that landed on a modeled latency spike.
    pub dram_spikes: u64,
}

impl ObsRollup {
    /// A probe that folds one pass's events into this rollup. Attach a
    /// `Sim` probe to the functional simulation, then a `Coupled` and a
    /// `Decoupled` probe to the two frame-time compositions.
    pub fn probe(&mut self, mode: RollupMode) -> RollupProbe<'_> {
        RollupProbe { rollup: self, mode }
    }

    /// The dominant stall category across all units, as a stall-table
    /// column name (`c-barrier`, `c-upstream`, `d-barrier`,
    /// `d-upstream`), with its cycle total — `("none", 0)` when the
    /// frame never waited. Ties keep the earlier column.
    #[must_use]
    pub fn top_stall(&self) -> (&'static str, u64) {
        let c = self.coupled.totals();
        let d = self.decoupled.totals();
        let mut best = ("none", 0u64);
        for (name, total) in [
            ("c-barrier", c[2]),
            ("c-upstream", c[1]),
            ("d-barrier", d[2]),
            ("d-upstream", d[1]),
        ] {
            if total > best.1 {
                best = (name, total);
            }
        }
        best
    }

    /// Render the rollup as one compact JSON object (no nested braces,
    /// no whitespace) — the journal's `obs` field.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"coupled\":{},\"decoupled\":{},\"l1_hits\":{},\"l1_misses\":{},\
             \"l2_hits\":{},\"l2_misses\":{},\"dram_requests\":{},\"dram_spikes\":{}}}",
            self.coupled.to_json(),
            self.decoupled.to_json(),
            self.l1_hits,
            self.l1_misses,
            self.l2_hits,
            self.l2_misses,
            self.dram_requests,
            self.dram_spikes
        )
    }

    /// Parse a document rendered by [`to_json`](Self::to_json); `None`
    /// for truncated or corrupt input.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        let text = text.trim();
        if !text.starts_with('{') || !text.ends_with('}') {
            return None;
        }
        Some(Self {
            coupled: StallRollup::parse(array_field(text, "coupled")?)?,
            decoupled: StallRollup::parse(array_field(text, "decoupled")?)?,
            l1_hits: num_field(text, "l1_hits")?,
            l1_misses: num_field(text, "l1_misses")?,
            l2_hits: num_field(text, "l2_hits")?,
            l2_misses: num_field(text, "l2_misses")?,
            dram_requests: num_field(text, "dram_requests")?,
            dram_spikes: num_field(text, "dram_spikes")?,
        })
    }
}

/// Slice out a `"field":[[…]]` nested-array value (balanced-bracket
/// scan; the rollup arrays nest exactly two deep).
fn array_field<'a>(text: &'a str, field: &str) -> Option<&'a str> {
    let tag = format!("\"{field}\":[");
    let start = text.find(&tag)? + tag.len() - 1;
    let mut depth = 0usize;
    for (i, c) in text[start..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&text[start..=start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extract an unsigned integer field from the rollup document.
fn num_field(text: &str, field: &str) -> Option<u64> {
    let tag = format!("\"{field}\":");
    let start = text.find(&tag)? + tag.len();
    let digits: String = text[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// A [`Probe`] that folds events into an [`ObsRollup`] — O(1) state,
/// never drops, never allocates per event.
#[derive(Debug)]
pub struct RollupProbe<'a> {
    rollup: &'a mut ObsRollup,
    mode: RollupMode,
}

impl Probe for RollupProbe<'_> {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: Event) {
        match (self.mode, event) {
            (RollupMode::Sim, Event::Mem(m)) => {
                self.rollup.l1_hits += m.l1_hits;
                self.rollup.l1_misses += m.l1_misses;
                self.rollup.l2_hits += m.l2_hits;
                self.rollup.l2_misses += m.l2_misses;
                self.rollup.dram_requests += m.dram_requests;
                self.rollup.dram_spikes += m.dram_spikes;
            }
            (RollupMode::Coupled | RollupMode::Decoupled, Event::Span(s)) => {
                let stalls = match self.mode {
                    RollupMode::Coupled => &mut self.rollup.coupled,
                    _ => &mut self.rollup.decoupled,
                };
                let col = match s.kind {
                    SpanKind::Busy => 0,
                    SpanKind::WaitUpstream => 1,
                    SpanKind::WaitBarrier => 2,
                };
                stalls.units[unit_index(s.stage, s.sc)][col] += s.cycles();
            }
            // Raster samples and cross-pass events carry nothing the
            // rollup aggregates.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemSample, Span};

    fn span(stage: Stage, sc: u8, kind: SpanKind, cycles: u64) -> Event {
        Event::Span(Span {
            stage,
            sc,
            tile: 0,
            kind,
            start: 100,
            end: 100 + cycles,
        })
    }

    fn sample_rollup() -> ObsRollup {
        let mut r = ObsRollup::default();
        {
            let mut p = r.probe(RollupMode::Sim);
            p.record(Event::Mem(MemSample {
                tile: 0,
                sc: 2,
                l1_hits: 10,
                l1_misses: 4,
                l2_hits: 3,
                l2_misses: 1,
                dram_requests: 1,
                dram_spikes: 0,
            }));
            p.record(Event::Mem(MemSample {
                tile: 1,
                sc: 0,
                l1_hits: 5,
                l1_misses: 2,
                l2_hits: 1,
                l2_misses: 1,
                dram_requests: 1,
                dram_spikes: 1,
            }));
        }
        {
            let mut p = r.probe(RollupMode::Coupled);
            p.record(span(Stage::Fragment, 1, SpanKind::Busy, 50));
            p.record(span(Stage::Fragment, 1, SpanKind::WaitBarrier, 30));
            p.record(span(Stage::Blend, 3, SpanKind::WaitUpstream, 20));
            p.record(span(Stage::Fetch, 0, SpanKind::Busy, 7));
        }
        {
            let mut p = r.probe(RollupMode::Decoupled);
            p.record(span(Stage::Fragment, 1, SpanKind::Busy, 50));
            p.record(span(Stage::Blend, 3, SpanKind::WaitUpstream, 12));
        }
        r
    }

    #[test]
    fn probe_accumulates_per_unit_and_mem_counters() {
        let r = sample_rollup();
        assert_eq!(r.coupled.busy(Stage::Fragment, 1), 50);
        assert_eq!(r.coupled.wait_barrier(Stage::Fragment, 1), 30);
        assert_eq!(r.coupled.wait_upstream(Stage::Blend, 3), 20);
        assert_eq!(r.decoupled.wait_barrier(Stage::Fragment, 1), 0);
        assert_eq!(r.decoupled.wait_upstream(Stage::Blend, 3), 12);
        assert_eq!(r.l1_hits, 15);
        assert_eq!(r.l1_misses, 6);
        assert_eq!(r.dram_requests, 2);
        assert_eq!(r.dram_spikes, 1);
    }

    #[test]
    fn top_stall_picks_the_dominant_category() {
        let r = sample_rollup();
        assert_eq!(r.top_stall(), ("c-barrier", 30));
        assert_eq!(ObsRollup::default().top_stall(), ("none", 0));
    }

    #[test]
    fn json_round_trips() {
        let r = sample_rollup();
        let json = r.to_json();
        assert!(!json.contains(' '), "compact form");
        // No nested braces: journal parsers slice the object with a
        // single brace scan.
        assert_eq!(json.matches('{').count(), 1);
        assert_eq!(json.matches('}').count(), 1);
        let parsed = ObsRollup::parse(&json).expect("parse own rendering");
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_garbage_and_truncation() {
        assert!(ObsRollup::parse("").is_none());
        assert!(ObsRollup::parse("not json").is_none());
        let full = sample_rollup().to_json();
        assert!(ObsRollup::parse(&full[..full.len() / 2]).is_none());
        // A units array with the wrong arity is corrupt, not padded.
        let short = full.replacen("],[", "]~[", 1).replace("]~[", "],["); // no-op sanity
        assert_eq!(short, full);
        assert!(
            ObsRollup::parse(&full.replacen("\"coupled\":[", "\"coupled\":[[0,0,0],[", 1))
                .is_none()
        );
    }

    #[test]
    fn unit_index_matches_unit_order() {
        for (i, (stage, sc)) in unit_order().iter().enumerate() {
            assert_eq!(unit_index(*stage, *sc), i);
        }
    }
}
