//! Chrome-trace / Perfetto JSON export.
//!
//! Renders recorded [`Span`]s as a [Trace Event Format] stream that
//! both `chrome://tracing` and [ui.perfetto.dev] open directly: one
//! *process* per track group (one per `BarrierMode`, by convention) and
//! one *thread* (track) per (SC, stage) unit, so coupled-vs-decoupled
//! slack is visible as whitespace between busy blocks. Fragment busy
//! spans carry their subtile's [`MemSample`] counters in `args`, which
//! Perfetto shows in the selection panel.
//!
//! Everything is rendered with hand-rolled JSON (no dependencies) and
//! in a deterministic order — metadata first (pid- then tid-sorted),
//! then spans in recording order — so the bytes are reproducible and
//! CI can diff traces across thread counts.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::{MemSample, Span, SpanKind, Stage};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One process row in the exported trace: a named group of unit tracks
/// (one `BarrierMode` composition, by convention).
#[derive(Debug)]
pub struct TrackGroup<'a> {
    /// Trace-local process id (must be unique across groups).
    pub pid: u32,
    /// Process name shown by the viewer (e.g. `"coupled"`).
    pub name: &'a str,
    /// Busy/wait spans, in recording order.
    pub spans: &'a [Span],
    /// Per-subtile memory counters, merged into fragment busy spans by
    /// (tile, sc). May be empty.
    pub mem: &'a [MemSample],
}

/// Trace-local thread id for a unit: stages get decade offsets so the
/// numeric tid order matches dataflow order in the viewer.
#[must_use]
pub fn track_id(stage: Stage, sc: u8) -> u32 {
    let base = match stage {
        Stage::Fetch => 0,
        Stage::Raster => 10,
        Stage::EarlyZ => 20,
        Stage::Fragment => 30,
        Stage::Blend => 40,
    };
    base + u32::from(sc)
}

/// Human name for a unit track.
#[must_use]
pub fn track_name(stage: Stage, sc: u8) -> String {
    if stage.is_per_sc() {
        format!("{}/SC{sc}", stage.name())
    } else {
        stage.name().to_string()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn push_meta(out: &mut String, name: &str, pid: u32, tid: u32, value: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(value)
    );
}

/// Render track groups to a complete Chrome-trace JSON document.
///
/// Timestamps are simulated cycles reported through the microsecond
/// `ts`/`dur` fields (the viewer's time unit labels read as cycles);
/// spans of zero length are skipped.
#[must_use]
pub fn chrome_trace(groups: &[TrackGroup<'_>]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    // Metadata: process names, then the thread (track) names each
    // group actually uses, in (pid, tid) order.
    for g in groups {
        sep(&mut out);
        push_meta(&mut out, "process_name", g.pid, 0, g.name);
        let tracks: BTreeSet<(u32, Stage, u8)> = g
            .spans
            .iter()
            .map(|s| (track_id(s.stage, s.sc), s.stage, s.sc))
            .collect();
        for (tid, stage, sc) in tracks {
            sep(&mut out);
            push_meta(&mut out, "thread_name", g.pid, tid, &track_name(stage, sc));
        }
    }

    for g in groups {
        let mem: BTreeMap<(u32, u8), &MemSample> =
            g.mem.iter().map(|m| ((m.tile, m.sc), m)).collect();
        for s in g.spans {
            if s.end <= s.start {
                continue;
            }
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{} t{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"tile\":{},\"kind\":\"{}\"",
                s.kind.name(),
                s.tile,
                s.stage.name(),
                s.start,
                s.end - s.start,
                g.pid,
                track_id(s.stage, s.sc),
                s.tile,
                s.kind.name(),
            );
            if s.stage == Stage::Fragment && s.kind == SpanKind::Busy {
                if let Some(m) = mem.get(&(s.tile, s.sc)) {
                    let _ = write!(
                        out,
                        ",\"l1_hits\":{},\"l1_misses\":{},\"l2_hits\":{},\"l2_misses\":{},\
                         \"dram_requests\":{},\"dram_spikes\":{}",
                        m.l1_hits,
                        m.l1_misses,
                        m.l2_hits,
                        m.l2_misses,
                        m.dram_requests,
                        m.dram_spikes,
                    );
                }
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(stage: Stage, sc: u8, tile: u32, kind: SpanKind, start: u64, end: u64) -> Span {
        Span {
            stage,
            sc,
            tile,
            kind,
            start,
            end,
        }
    }

    #[test]
    fn track_ids_follow_dataflow_order() {
        assert!(track_id(Stage::Fetch, 0) < track_id(Stage::Raster, 0));
        assert!(track_id(Stage::Raster, 0) < track_id(Stage::EarlyZ, 0));
        assert!(track_id(Stage::EarlyZ, 3) < track_id(Stage::Fragment, 0));
        assert!(track_id(Stage::Fragment, 3) < track_id(Stage::Blend, 0));
        assert_eq!(track_name(Stage::Blend, 2), "blend/SC2");
        assert_eq!(track_name(Stage::Fetch, 0), "fetch");
    }

    #[test]
    fn trace_contains_metadata_spans_and_mem_args() {
        let spans = [
            span(Stage::Fetch, 0, 0, SpanKind::Busy, 0, 5),
            span(Stage::Fragment, 2, 0, SpanKind::Busy, 5, 9),
            span(Stage::Fragment, 2, 0, SpanKind::WaitBarrier, 9, 12),
        ];
        let mem = [MemSample {
            tile: 0,
            sc: 2,
            l1_hits: 7,
            l1_misses: 3,
            l2_hits: 2,
            l2_misses: 1,
            dram_requests: 1,
            dram_spikes: 0,
        }];
        let groups = [TrackGroup {
            pid: 1,
            name: "coupled",
            spans: &spans,
            mem: &mem,
        }];
        let json = chrome_trace(&groups);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("fragment/SC2"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"l1_hits\":7"));
        assert!(json.contains("wait_barrier"));
        // Balanced braces — a cheap structural sanity check on the
        // hand-rolled writer.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn zero_length_spans_are_skipped() {
        let spans = [span(Stage::Raster, 0, 3, SpanKind::WaitUpstream, 4, 4)];
        let json = chrome_trace(&[TrackGroup {
            pid: 1,
            name: "m",
            spans: &spans,
            mem: &[],
        }]);
        assert!(!json.contains("\"ph\":\"X\""), "{json}");
    }

    #[test]
    fn process_names_are_escaped() {
        let json = chrome_trace(&[TrackGroup {
            pid: 1,
            name: "we\"ird\\name",
            spans: &[],
            mem: &[],
        }]);
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn empty_input_is_a_valid_document() {
        assert_eq!(
            chrome_trace(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }
}
