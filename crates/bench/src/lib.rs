//! Shared helpers for the DTexL benchmark harness.
//!
//! The actual figure regeneration lives in two places:
//!
//! * the **`figures` binary** (`cargo run --release -p dtexl-bench --bin
//!   figures`) regenerates every table and figure of the paper at the
//!   full Table II resolution and prints the same rows/series the paper
//!   reports;
//! * the **criterion benches** (`cargo bench -p dtexl-bench`) measure
//!   the simulator's own performance per experiment kernel and print a
//!   reduced-size preview of each figure as they run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dtexl::experiments::Setup;
use dtexl_scene::Game;

/// The reduced setup used by the criterion benches and smoke runs:
/// quarter-ish resolution, three games spanning 2D/3D and small/large
/// texture footprints.
#[must_use]
pub fn bench_setup() -> Setup {
    Setup {
        width: 512,
        height: 256,
        frame: 0,
        games: vec![Game::CandyCrush, Game::TempleRun, Game::GravityTetris],
        threads: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4),
    }
}

/// The full paper setup (Table II resolution, all ten games).
#[must_use]
pub fn paper_setup() -> Setup {
    Setup::table2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_are_consistent() {
        let b = bench_setup();
        assert_eq!(b.games.len(), 3);
        assert!(b.width * b.height < 1960 * 768 / 4);
        let p = paper_setup();
        assert_eq!((p.width, p.height), (1960, 768));
        assert_eq!(p.games.len(), 10);
    }
}
