//! Wall-clock timing of the quick experiment sweep.
//!
//! Two modes:
//!
//! * **Default** — runs [`Lab::all_figures`] over [`Setup::quick`] with
//!   the Lab's own job fan-out pinned to a single thread, so the only
//!   parallelism left is the per-frame SC-lane simulation selected by
//!   `DTEXL_THREADS`. Run it twice to measure the serial-vs-parallel
//!   speedup of the lane pipeline (results are bit-identical either
//!   way):
//!
//!   ```text
//!   DTEXL_THREADS=1 cargo run --release -p dtexl-bench --bin sweep_timing
//!   DTEXL_THREADS=4 cargo run --release -p dtexl-bench --bin sweep_timing
//!   ```
//!
//! * **`--quick [--out BENCH_sweep.json] [--no-memoize]`** — runs the
//!   canonical 20-job quick sweep (all ten games × baseline,dtexl at
//!   480x192) through the sweep engine with one worker, and writes a
//!   JSON benchmark report with the total wall-clock plus per-job wall
//!   time and allocator high-water marks. `cargo xtask bench-compare`
//!   diffs two of these reports for the CI perf gate. Prefix
//!   memoization is on by default — it is what the perf gate measures —
//!   and `--no-memoize` runs every job from scratch (metrics are
//!   bit-identical either way; CI diffs `sweep canon` over both).

use dtexl::experiments::{Lab, Setup};
use dtexl::sweep::{json_escape, run_sweep, PrefixCache, SweepJob, SweepOptions};
use dtexl_pipeline::PipelineConfig;
use dtexl_scene::Game;
use dtexl_sched::ScheduleConfig;
use std::io::Write as _;
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = take_flag(&mut args, "--quick");
    let out = take_value(&mut args, "--out");
    let no_memoize = take_flag(&mut args, "--no-memoize");
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {args:?}");
        std::process::exit(1);
    }
    if quick {
        bench_quick_sweep(out.as_deref(), !no_memoize);
    } else {
        bench_all_figures();
    }
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    args.iter()
        .position(|a| a == name)
        .map(|i| args.remove(i))
        .is_some()
}

fn take_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        args.remove(i);
        return None;
    }
    args.remove(i);
    Some(args.remove(i))
}

fn bench_all_figures() {
    let lane_threads = PipelineConfig::default().threads;
    let setup = Setup {
        threads: 1,
        ..Setup::quick()
    };
    let start = Instant::now();
    let lab = Lab::new(setup);
    let figures = lab.all_figures();
    let elapsed = start.elapsed();
    let rows: usize = figures.iter().map(|t| t.rows.len()).sum();
    println!(
        "quick sweep: {} tables / {} rows, lane threads = {}, {:.3} s",
        figures.len(),
        rows,
        lane_threads,
        elapsed.as_secs_f64()
    );
}

/// The canonical 20-job quick sweep, timed job-by-job through the
/// sweep engine. One worker so the per-job wall times are not fighting
/// each other for cores; the journal-visible metrics are bit-identical
/// regardless.
fn bench_quick_sweep(out: Option<&str>, memoize: bool) {
    let lane_threads = PipelineConfig::default().threads;
    let jobs: Vec<SweepJob> = Game::ALL
        .into_iter()
        .flat_map(|game| {
            [ScheduleConfig::baseline(), ScheduleConfig::dtexl()]
                .into_iter()
                .map(move |schedule| SweepJob::new(game, schedule, false, 480, 192, 0))
        })
        .collect();
    let opts = SweepOptions {
        workers: 1,
        keep_going: true,
        // The job list interleaves each game's two legs back to back,
        // so one live entry at a time suffices; unbounded keeps the
        // bench independent of list order.
        prefix_cache: memoize.then(|| PrefixCache::new(None)),
        ..SweepOptions::default()
    };
    let start = Instant::now();
    let report = match run_sweep(&jobs, &opts, |_, _| {}) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let total = start.elapsed();
    if !report.is_success() {
        eprintln!("{}", report.summary());
        std::process::exit(1);
    }

    let mut json = format!(
        "{{\"total_wall_ms\":{},\"lane_threads\":{lane_threads},\"jobs\":[",
        total.as_millis()
    );
    for (i, r) in report.records.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n  {{\"key\":\"{}\",\"wall_ms\":{},\"peak_alloc_bytes\":{}}}",
            json_escape(&r.key),
            r.elapsed.as_millis(),
            r.peak_alloc.unwrap_or(0)
        ));
    }
    json.push_str("\n]}\n");

    match out {
        Some(path) => {
            let write = std::fs::File::create(path)
                .and_then(|f| std::io::BufWriter::new(f).write_all(json.as_bytes()));
            if let Err(e) = write {
                eprintln!("write {path}: {e}");
                std::process::exit(1);
            }
            println!(
                "quick sweep: {} jobs, lane threads = {}, {:.3} s -> {path}",
                report.records.len(),
                lane_threads,
                total.as_secs_f64()
            );
        }
        None => print!("{json}"),
    }
}
