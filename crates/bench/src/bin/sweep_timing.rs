//! Wall-clock timing of the quick experiment sweep.
//!
//! Two modes:
//!
//! * **Default** — runs [`Lab::all_figures`] over [`Setup::quick`] with
//!   the Lab's own job fan-out pinned to a single thread, so the only
//!   parallelism left is the per-frame SC-lane simulation selected by
//!   `DTEXL_THREADS`. Run it twice to measure the serial-vs-parallel
//!   speedup of the lane pipeline (results are bit-identical either
//!   way):
//!
//!   ```text
//!   DTEXL_THREADS=1 cargo run --release -p dtexl-bench --bin sweep_timing
//!   DTEXL_THREADS=4 cargo run --release -p dtexl-bench --bin sweep_timing
//!   ```
//!
//! * **`--quick [--out BENCH_sweep.json] [--no-memoize] [--spool]`** —
//!   runs the canonical 20-job quick sweep (all ten games ×
//!   baseline,dtexl at 480x192) through the sweep engine with one
//!   worker, and writes a JSON benchmark report with the total
//!   wall-clock plus per-job wall time and allocator high-water marks.
//!   `cargo xtask bench-compare` diffs two of these reports for the CI
//!   perf gate. Prefix memoization is on by default — it is what the
//!   perf gate measures — and `--no-memoize` runs every job from
//!   scratch (metrics are bit-identical either way; CI diffs `sweep
//!   canon` over both). `--spool` routes the same jobs through the
//!   daemon machinery instead of a direct `run_sweep` call — submitted
//!   as a content-addressed batch to a scratch spool, accepted, and
//!   drained by `run_spool_worker` — so the spool/daemon hot path sits
//!   under the identical deterministic peak-alloc gate (job keys are
//!   the same, so one baseline gates both legs).

use dtexl::daemon::{run_spool_worker, WorkerOptions};
use dtexl::experiments::{Lab, Setup};
use dtexl::spool::{JobSpec, Spool};
use dtexl::sweep::{
    json_escape, run_sweep, JobRecord, PrefixCache, Progress, ProgressKind, SweepJob, SweepOptions,
};
use dtexl_pipeline::PipelineConfig;
use dtexl_scene::Game;
use dtexl_sched::ScheduleConfig;
use std::io::Write as _;
use std::sync::Mutex;
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = take_flag(&mut args, "--quick");
    let out = take_value(&mut args, "--out");
    let no_memoize = take_flag(&mut args, "--no-memoize");
    let spool = take_flag(&mut args, "--spool");
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {args:?}");
        std::process::exit(1);
    }
    if quick {
        bench_quick_sweep(out.as_deref(), !no_memoize, spool);
    } else if spool {
        eprintln!("--spool requires --quick");
        std::process::exit(1);
    } else {
        bench_all_figures();
    }
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    args.iter()
        .position(|a| a == name)
        .map(|i| args.remove(i))
        .is_some()
}

fn take_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        args.remove(i);
        return None;
    }
    args.remove(i);
    Some(args.remove(i))
}

fn bench_all_figures() {
    let lane_threads = PipelineConfig::default().threads;
    let setup = Setup {
        threads: 1,
        ..Setup::quick()
    };
    let start = Instant::now();
    let lab = Lab::new(setup);
    let figures = lab.all_figures();
    let elapsed = start.elapsed();
    let rows: usize = figures.iter().map(|t| t.rows.len()).sum();
    println!(
        "quick sweep: {} tables / {} rows, lane threads = {}, {:.3} s",
        figures.len(),
        rows,
        lane_threads,
        elapsed.as_secs_f64()
    );
}

/// The canonical 20-job quick sweep, timed job-by-job through either
/// the direct sweep engine or (`--spool`) the daemon's spool-worker
/// path. One worker so the per-job wall times are not fighting each
/// other for cores; the journal-visible metrics are bit-identical
/// regardless.
fn bench_quick_sweep(out: Option<&str>, memoize: bool, through_spool: bool) {
    let lane_threads = PipelineConfig::default().threads;
    let jobs: Vec<SweepJob> = Game::ALL
        .into_iter()
        .flat_map(|game| {
            [ScheduleConfig::baseline(), ScheduleConfig::dtexl()]
                .into_iter()
                .map(move |schedule| SweepJob::new(game, schedule, false, 480, 192, 0))
        })
        .collect();
    let opts = SweepOptions {
        workers: 1,
        keep_going: true,
        // The job list keeps each game's two legs back to back (the
        // spool path sorts specs per game too), so one live entry at a
        // time suffices; unbounded keeps the bench independent of list
        // order.
        prefix_cache: memoize.then(|| PrefixCache::new(None)),
        ..SweepOptions::default()
    };
    let start = Instant::now();
    let rows = if through_spool {
        bench_through_spool(opts)
    } else {
        let report = match run_sweep(&jobs, &opts, |_, _| {}) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("sweep failed: {e}");
                std::process::exit(1);
            }
        };
        if !report.is_success() {
            eprintln!("{}", report.summary());
            std::process::exit(1);
        }
        report
            .records
            .iter()
            .map(|r: &JobRecord| {
                (
                    r.key.clone(),
                    r.elapsed.as_millis() as u64,
                    r.peak_alloc.unwrap_or(0),
                )
            })
            .collect()
    };
    let total = start.elapsed();

    let mut json = format!(
        "{{\"total_wall_ms\":{},\"lane_threads\":{lane_threads},\"jobs\":[",
        total.as_millis()
    );
    for (i, (key, wall_ms, peak)) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n  {{\"key\":\"{}\",\"wall_ms\":{wall_ms},\"peak_alloc_bytes\":{peak}}}",
            json_escape(key),
        ));
    }
    json.push_str("\n]}\n");

    match out {
        Some(path) => {
            let write = std::fs::File::create(path)
                .and_then(|f| std::io::BufWriter::new(f).write_all(json.as_bytes()));
            if let Err(e) = write {
                eprintln!("write {path}: {e}");
                std::process::exit(1);
            }
            println!(
                "quick sweep{}: {} jobs, lane threads = {}, {:.3} s -> {path}",
                if through_spool { " (spool path)" } else { "" },
                rows.len(),
                lane_threads,
                total.as_secs_f64()
            );
        }
        None => print!("{json}"),
    }
}

/// Done events captured from the spool worker's progress stream —
/// per-job wall time and allocator peak live there, since the worker
/// consumes its own `JobRecord`s. A static because `SweepOptions`
/// takes a plain fn pointer.
static DONE_EVENTS: Mutex<Vec<(String, u64, u64)>> = Mutex::new(Vec::new());

fn record_done(p: &Progress) {
    if matches!(p.kind, ProgressKind::Done) {
        if let Ok(mut done) = DONE_EVENTS.lock() {
            done.push((
                p.key.clone(),
                p.elapsed.as_millis() as u64,
                p.peak_alloc_bytes,
            ));
        }
    }
}

/// Run the canonical quick jobs through the daemon machinery: submit
/// them as one content-addressed batch to a scratch spool, accept it,
/// pre-arm the drain marker, and let `run_spool_worker` drain the
/// queue. Rows come back in completion order (the worker's canonical
/// sorted-batch order).
fn bench_through_spool(mut sweep: SweepOptions) -> Vec<(String, u64, u64)> {
    let specs: Vec<JobSpec> = Game::ALL
        .into_iter()
        .flat_map(|game| {
            ["baseline", "dtexl"].into_iter().map(move |schedule| {
                JobSpec::new(game.alias(), schedule, 480, 192, 0, false)
                    .expect("canonical quick specs are valid")
            })
        })
        .collect();
    let root = std::env::temp_dir().join(format!("dtexl-bench-spool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let fail = |what: &str, e: String| -> ! {
        eprintln!("{what}: {e}");
        std::process::exit(1);
    };
    let spool = match Spool::open(&root) {
        Ok(s) => s,
        Err(e) => fail("open scratch spool", e.to_string()),
    };
    if let Err(e) = spool.submit(&specs) {
        fail("submit bench batch", e.to_string());
    }
    let accepted = spool.accept_incoming();
    if accepted.accepted.len() != 1 {
        fail("accept bench batch", format!("{accepted:?}"));
    }
    // Drain is pre-armed: the worker runs one generation and exits.
    if let Err(e) = spool.request_drain() {
        fail("arm drain marker", e.to_string());
    }
    sweep.journal = Some(root.join("bench.jsonl"));
    sweep.progress = Some(record_done as fn(&Progress));
    let wopts = WorkerOptions {
        sweep,
        ..WorkerOptions::default()
    };
    let report = match run_spool_worker(&spool, &wopts) {
        Ok(r) => r,
        Err(e) => fail("spool worker", e.to_string()),
    };
    if report.exit_code() != 0 || report.jobs_run != specs.len() {
        fail("spool worker", format!("incomplete drain: {report:?}"));
    }
    let _ = std::fs::remove_dir_all(&root);
    let rows = DONE_EVENTS.lock().map(|d| d.clone()).unwrap_or_default();
    if rows.len() != specs.len() {
        fail(
            "spool worker progress stream",
            format!("{} done events for {} jobs", rows.len(), specs.len()),
        );
    }
    rows
}
