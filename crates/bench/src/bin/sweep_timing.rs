//! Wall-clock timing of the quick experiment sweep.
//!
//! Runs [`Lab::all_figures`] over [`Setup::quick`] with the Lab's own
//! job fan-out pinned to a single thread, so the only parallelism left
//! is the per-frame SC-lane simulation selected by `DTEXL_THREADS`.
//! Run it twice to measure the serial-vs-parallel speedup of the lane
//! pipeline (results are bit-identical either way):
//!
//! ```text
//! DTEXL_THREADS=1 cargo run --release -p dtexl-bench --bin sweep_timing
//! DTEXL_THREADS=4 cargo run --release -p dtexl-bench --bin sweep_timing
//! ```

use dtexl::experiments::{Lab, Setup};
use dtexl_pipeline::PipelineConfig;
use std::time::Instant;

fn main() {
    let lane_threads = PipelineConfig::default().threads;
    let setup = Setup {
        threads: 1,
        ..Setup::quick()
    };
    let start = Instant::now();
    let lab = Lab::new(setup);
    let figures = lab.all_figures();
    let elapsed = start.elapsed();
    let rows: usize = figures.iter().map(|t| t.rows.len()).sum();
    println!(
        "quick sweep: {} tables / {} rows, lane threads = {}, {:.3} s",
        figures.len(),
        rows,
        lane_threads,
        elapsed.as_secs_f64()
    );
}
