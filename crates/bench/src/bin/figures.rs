//! Regenerate every table and figure of the DTexL paper.
//!
//! ```text
//! figures [--quick] [--csv DIR] [--frame N] [--avg-frames N] [ids...]
//!
//!   --quick     quarter resolution, three games (fast smoke run)
//!   --csv DIR   additionally write each table as DIR/<id>.csv
//!   --frame N   first animation frame to evaluate (default 0)
//!   --avg-frames N  average each table over N consecutive frames
//!   ids         subset to regenerate: table1 table2 replication fig1
//!               fig2 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18
//!               ablations
//!               (default: everything except ablations)
//! ```
//!
//! The full run (default) uses the Table II configuration — 1960×768,
//! ten games — and takes a couple of minutes on a laptop.
//!
//! The ablation sweeps run through the fault-tolerant lab
//! ([`Lab::try_ensure`] / [`Lab::try_result`]): a configuration the
//! simulator rejects becomes a `NaN` cell plus a `[gap]` note on
//! stderr, and the remaining ablations still run to completion.

use dtexl::experiments::{Lab, Setup};
use dtexl::report;
use dtexl::sweep::SweepOptions;
use dtexl::{Table, CLOCK_HZ};
use dtexl_bench::{bench_setup, paper_setup};
use dtexl_pipeline::{BarrierMode, FrameSim, PipelineConfig};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::{ScheduleConfig, TileOrder};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let frame: u32 = args
        .iter()
        .position(|a| a == "--frame")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let avg_frames: u32 = args
        .iter()
        .position(|a| a == "--avg-frames")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    let csv_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create --csv directory");
    }
    let mut skip_next = false;
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--csv" || *a == "--frame" || *a == "--avg-frames" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    let all = ids.is_empty();
    let want = |id: &str| all || ids.contains(&id);

    let mut setup = if quick { bench_setup() } else { paper_setup() };
    setup.frame = frame;
    eprintln!(
        "# DTexL figure regeneration — {}x{}, {} games, {} threads, {} frame(s) from {}",
        setup.width,
        setup.height,
        setup.games.len(),
        setup.threads,
        avg_frames,
        frame,
    );
    // One lab per animation frame; tables are averaged cell-wise.
    let labs: Vec<Lab> = (0..avg_frames)
        .map(|f| {
            let mut s = setup.clone();
            s.frame = frame + f;
            Lab::new(s)
        })
        .collect();

    if want("table2") || all {
        println!("{}", report::table2_text(&PipelineConfig::default()));
    }
    type FigFn = fn(&Lab) -> Table;
    let run_fig = |f: FigFn| -> Table {
        if labs.len() == 1 {
            f(&labs[0])
        } else {
            let per_frame: Vec<Table> = labs.iter().map(f).collect();
            Table::average(&per_frame)
        }
    };
    let figs: [(&str, FigFn); 12] = [
        ("table1", Lab::table1),
        ("replication", Lab::replication_table),
        ("fig1", Lab::fig1),
        ("fig2", Lab::fig2),
        ("fig11", Lab::fig11),
        ("fig12", Lab::fig12),
        ("fig13", Lab::fig13),
        ("fig14", Lab::fig14),
        ("fig15", Lab::fig15),
        ("fig16", Lab::fig16),
        ("fig17", Lab::fig17),
        ("fig18", Lab::fig18),
    ];
    for (id, f) in figs {
        if want(id) {
            let t0 = std::time::Instant::now();
            let table = run_fig(f);
            println!("{}", table.render());
            if let Some(dir) = &csv_dir {
                let path = dir.join(format!("{id}.csv"));
                std::fs::write(&path, table.to_csv()).expect("write csv");
                eprintln!("[wrote {}]", path.display());
            }
            eprintln!("[{id} in {:?}]", t0.elapsed());
        }
    }

    if want("ablations") && !all {
        ablations(quick);
    }
}

/// Record an ablation cell the simulator refused: `NaN` in the table,
/// a note on stderr, and the sweep moves on.
fn gap(table_id: &str, label: &str, err: &dyn std::fmt::Display) -> f64 {
    eprintln!("[gap] {table_id}/{label}: {err}");
    f64::NAN
}

/// Ablations of DESIGN.md §6: sensitivity of the headline result to the
/// design knobs.
///
/// Each pipeline-configuration cell is evaluated through a
/// fault-tolerant [`Lab`] ([`Lab::try_result`], backed by
/// [`Lab::try_ensure`]'s sweep isolation), so one bad configuration in
/// a knob sweep degrades to a reported gap instead of aborting the
/// run. Scene- and schedule-mutating cells use
/// [`FrameSim::try_run_with_resolution`] with the same policy.
fn ablations(quick: bool) {
    let (w, h) = if quick { (512, 256) } else { (1960, 768) };
    let game = Game::GravityTetris;
    let scene = game.scene(&SceneSpec::new(w, h, 0));
    let setup = Setup {
        width: w,
        height: h,
        games: vec![game],
        ..Setup::quick()
    };
    let opts = SweepOptions {
        keep_going: true,
        ..SweepOptions::default()
    };

    // Coupled-baseline over decoupled-DTexL speedup for one pipeline
    // configuration, isolated per cell.
    let speedup = |table_id: &str, label: &str, cfg: &PipelineConfig| -> f64 {
        let lab = Lab::with_pipeline(setup.clone(), *cfg);
        let base = lab.try_result(game, ScheduleConfig::baseline(), false, &opts);
        let dt = lab.try_result(game, ScheduleConfig::dtexl(), false, &opts);
        match (base, dt) {
            (Ok(b), Ok(d)) => {
                b.total_cycles(BarrierMode::Coupled) as f64
                    / d.total_cycles(BarrierMode::Decoupled) as f64
            }
            (Err(e), _) | (_, Err(e)) => gap(table_id, label, &e),
        }
    };

    let mut t = Table::new(
        "ablation-warps",
        format!("DTexL speedup vs warp slots ({game})"),
        vec!["speedup".into()],
    );
    for slots in [4usize, 8, 12, 24, 48] {
        let cfg = PipelineConfig {
            warp_slots: slots,
            ..PipelineConfig::default()
        };
        let label = format!("{slots} warps");
        let v = speedup("ablation-warps", &label, &cfg);
        t.push_row(label, vec![v]);
    }
    println!("{}", t.render());

    let mut t = Table::new(
        "ablation-l1",
        format!("DTexL speedup vs private L1 size ({game})"),
        vec!["speedup".into()],
    );
    for kib in [8u64, 16, 32, 64] {
        let mut cfg = PipelineConfig::default();
        cfg.hierarchy.l1.size_bytes = kib * 1024;
        let label = format!("{kib} KiB");
        let v = speedup("ablation-l1", &label, &cfg);
        t.push_row(label, vec![v]);
    }
    println!("{}", t.render());

    let mut t = Table::new(
        "ablation-hilbert",
        format!("DTexL FPS vs Hilbert sub-frame side ({game})"),
        vec!["fps".into()],
    );
    for sub in [4u32, 8, 16] {
        let sched = ScheduleConfig {
            order: TileOrder::Hilbert { sub },
            ..ScheduleConfig::dtexl()
        };
        let lab = Lab::new(setup.clone());
        let label = format!("sub {sub}");
        let v = match lab.try_result(game, sched, false, &opts) {
            Ok(r) => CLOCK_HZ / r.total_cycles(BarrierMode::Decoupled) as f64,
            Err(e) => gap("ablation-hilbert", &label, &e),
        };
        t.push_row(label, vec![v]);
    }
    println!("{}", t.render());

    let mut t = Table::new(
        "ablation-fill",
        format!("DTexL speedup vs L1 miss fill cost ({game})"),
        vec!["speedup".into()],
    );
    for fill in [0u32, 5, 10, 20] {
        let cfg = PipelineConfig {
            l1_miss_fill_cycles: fill,
            ..PipelineConfig::default()
        };
        let label = format!("{fill} cycles");
        let v = speedup("ablation-fill", &label, &cfg);
        t.push_row(label, vec![v]);
    }
    println!("{}", t.render());

    // Bounded decoupling: how much run-ahead credit the decoupled
    // pipeline needs before it matches the paper's unbounded proposal.
    // Composition-only, so this reuses a single functional pass.
    let mut t = Table::new(
        "ablation-credit",
        format!("DTexL speedup vs run-ahead credit ({game})"),
        vec!["speedup".into()],
    );
    {
        let lab = Lab::new(setup.clone());
        let base = lab.try_result(game, ScheduleConfig::baseline(), false, &opts);
        let dt = lab.try_result(game, ScheduleConfig::dtexl(), false, &opts);
        match (base, dt) {
            (Ok(base), Ok(dt)) => {
                let coupled = base.total_cycles(BarrierMode::Coupled) as f64;
                for ahead in [0u32, 1, 2, 4, 16] {
                    let mode = BarrierMode::DecoupledBounded { tiles_ahead: ahead };
                    t.push_row(
                        format!("credit {ahead}"),
                        vec![coupled / dt.total_cycles(mode) as f64],
                    );
                }
                t.push_row(
                    "unbounded",
                    vec![coupled / dt.total_cycles(BarrierMode::Decoupled) as f64],
                );
            }
            (Err(e), _) | (_, Err(e)) => {
                let v = gap("ablation-credit", "all credits", &e);
                for ahead in [0u32, 1, 2, 4, 16] {
                    t.push_row(format!("credit {ahead}"), vec![v]);
                }
                t.push_row("unbounded", vec![v]);
            }
        }
    }
    println!("{}", t.render());

    // Texture layout: Morton tiling vs linear scanlines. Linear lines
    // are 16×1 texel strips, so less 2-D locality is schedulable.
    // The scene itself is relaid out, which a game-keyed lab cannot
    // express — these cells run the fallible simulator directly.
    let mut t = Table::new(
        "ablation-layout",
        format!("CG-square L2 ratio vs texel layout ({game})"),
        vec!["CG/FG L2 ratio".into()],
    );
    for (name, layout) in [
        ("Morton", dtexl::texture::TexelLayout::Morton),
        ("RowMajor", dtexl::texture::TexelLayout::RowMajor),
    ] {
        let s = scene.relayout(layout);
        let cfg = PipelineConfig::default();
        let fg = FrameSim::try_run_with_resolution(&s, &ScheduleConfig::baseline(), &cfg, w, h);
        let cg = FrameSim::try_run_with_resolution(&s, &ScheduleConfig::dtexl(), &cfg, w, h);
        let v = match (fg, cg) {
            (Ok(fg), Ok(cg)) => cg.hierarchy.l2.accesses as f64 / fg.hierarchy.l2.accesses as f64,
            (Err(e), _) | (_, Err(e)) => gap("ablation-layout", name, &e),
        };
        t.push_row(name, vec![v]);
    }
    println!("{}", t.render());

    // Next-line prefetching (related-work interaction): does a simple
    // prefetcher already capture what DTexL captures?
    let mut t = Table::new(
        "ablation-prefetch",
        format!("Prefetch × scheduler interaction ({game})"),
        vec!["speedup vs base".into(), "L2 accesses".into()],
    );
    for (name, prefetch, sched) in [
        ("FG, no prefetch", false, ScheduleConfig::baseline()),
        ("FG + prefetch", true, ScheduleConfig::baseline()),
        ("DTexL, no prefetch", false, ScheduleConfig::dtexl()),
        ("DTexL + prefetch", true, ScheduleConfig::dtexl()),
    ] {
        let mut cfg = PipelineConfig::default();
        cfg.hierarchy.prefetch_next_line = prefetch;
        let base_lab = Lab::new(setup.clone());
        let lab = Lab::with_pipeline(setup.clone(), cfg);
        let base = base_lab.try_result(game, ScheduleConfig::baseline(), false, &opts);
        let r = lab.try_result(game, sched, false, &opts);
        // FG rows stay coupled (the paper's baseline pipeline);
        // DTexL rows use its decoupled barriers.
        let mode = if sched == ScheduleConfig::baseline() {
            BarrierMode::Coupled
        } else {
            BarrierMode::Decoupled
        };
        let (sp, l2) = match (base, r) {
            (Ok(base), Ok(r)) => (
                base.total_cycles(BarrierMode::Coupled) as f64 / r.total_cycles(mode) as f64,
                r.total_l2_accesses() as f64,
            ),
            (Err(e), _) | (_, Err(e)) => {
                let v = gap("ablation-prefetch", name, &e);
                (v, v)
            }
        };
        t.push_row(name, vec![sp, l2]);
    }
    println!("{}", t.render());

    // Replacement policy: DTexL's gain is not an LRU artifact.
    let mut t = Table::new(
        "ablation-replacement",
        format!("DTexL speedup vs cache replacement policy ({game})"),
        vec!["speedup".into(), "L2 decrease %".into()],
    );
    for (name, kind) in [
        ("LRU", dtexl::mem::ReplacementKind::Lru),
        ("FIFO", dtexl::mem::ReplacementKind::Fifo),
        ("Random", dtexl::mem::ReplacementKind::Random),
    ] {
        let mut cfg = PipelineConfig::default();
        cfg.hierarchy.replacement = kind;
        let lab = Lab::with_pipeline(setup.clone(), cfg);
        let base = lab.try_result(game, ScheduleConfig::baseline(), false, &opts);
        let dt = lab.try_result(game, ScheduleConfig::dtexl(), false, &opts);
        let (sp, dec) = match (base, dt) {
            (Ok(base), Ok(dt)) => (
                base.total_cycles(BarrierMode::Coupled) as f64
                    / dt.total_cycles(BarrierMode::Decoupled) as f64,
                100.0 * (1.0 - dt.total_l2_accesses() as f64 / base.total_l2_accesses() as f64),
            ),
            (Err(e), _) | (_, Err(e)) => {
                let v = gap("ablation-replacement", name, &e);
                (v, v)
            }
        };
        t.push_row(name, vec![sp, dec]);
    }
    println!("{}", t.render());

    // Late-Z pressure: how the speedup behaves when a fraction of the
    // shading can no longer be early-culled. Scene-mutating, so the
    // cells run the fallible simulator directly.
    let mut t = Table::new(
        "ablation-latez",
        format!("DTexL speedup vs late-Z draw fraction ({game})"),
        vec!["speedup".into()],
    );
    for pct in [0u32, 25, 50, 100] {
        let mut s = scene.clone();
        for (i, d) in s.draws.iter_mut().enumerate() {
            if (i as u32 * 100 / s_len(&scene)) < pct {
                d.depth_mode = dtexl_scene::DepthMode::Late;
            }
        }
        let cfg = PipelineConfig::default();
        let label = format!("{pct}% late-Z");
        let v =
            try_speedup_scene(&s, &cfg, w, h).unwrap_or_else(|e| gap("ablation-latez", &label, &e));
        t.push_row(label, vec![v]);
    }
    println!("{}", t.render());
}

fn s_len(scene: &dtexl_scene::Scene) -> u32 {
    scene.draws.len().max(1) as u32
}

fn try_speedup_scene(
    scene: &dtexl_scene::Scene,
    cfg: &PipelineConfig,
    w: u32,
    h: u32,
) -> Result<f64, dtexl_pipeline::SimError> {
    let base = FrameSim::try_run_with_resolution(scene, &ScheduleConfig::baseline(), cfg, w, h)?;
    let dt = FrameSim::try_run_with_resolution(scene, &ScheduleConfig::dtexl(), cfg, w, h)?;
    Ok(base.total_cycles(BarrierMode::Coupled) as f64
        / dt.total_cycles(BarrierMode::Decoupled) as f64)
}
