//! One criterion bench per reproduced table/figure.
//!
//! Each benchmark measures the simulation kernel behind the
//! corresponding figure at a reduced size, and the whole suite first
//! prints a reduced-size preview of every figure (the full-size tables
//! come from the `figures` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use dtexl::experiments::Lab;
use dtexl::Distribution;
use dtexl_bench::bench_setup;
use dtexl_mem::energy::EnergyModel;
use dtexl_pipeline::{BarrierMode, FrameSim, PipelineConfig};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::{NamedMapping, QuadGrouping, ScheduleConfig, TileOrder};
use std::hint::black_box;
use std::sync::OnceLock;

const W: u32 = 256;
const H: u32 = 128;

fn scene(game: Game) -> dtexl_scene::Scene {
    game.scene(&SceneSpec::new(W, H, 0))
}

fn run(scene: &dtexl_scene::Scene, sched: &ScheduleConfig) -> dtexl_pipeline::FrameResult {
    FrameSim::run_with_resolution(scene, sched, &PipelineConfig::default(), W, H)
}

fn grouping_sched(g: QuadGrouping) -> ScheduleConfig {
    ScheduleConfig {
        grouping: g,
        order: TileOrder::ZOrder,
        assignment: dtexl_sched::AssignMode::Const,
    }
}

/// Print the reduced-size preview of every figure exactly once.
fn print_preview() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let lab = Lab::new(bench_setup());
        eprintln!("# Reduced-size figure preview (512x256, 3 games)");
        for t in lab.all_figures() {
            eprintln!("{}", t.render());
        }
    });
}

fn bench_table1_workloads(c: &mut Criterion) {
    print_preview();
    c.bench_function("table1_workloads", |b| {
        b.iter(|| {
            for game in Game::ALL {
                black_box(scene(game).triangle_count());
            }
        });
    });
}

fn bench_fig01_load_balance(c: &mut Criterion) {
    let s = scene(Game::GravityTetris);
    c.bench_function("fig01_load_balance", |b| {
        b.iter(|| black_box(run(&s, &ScheduleConfig::baseline()).mean_quad_deviation()));
    });
}

fn bench_fig02_l2_accesses(c: &mut Criterion) {
    let s = scene(Game::GravityTetris);
    c.bench_function("fig02_l2_accesses", |b| {
        b.iter(|| black_box(run(&s, &grouping_sched(QuadGrouping::CgSquare)).total_l2_accesses()));
    });
}

fn bench_fig11_groupings_l2(c: &mut Criterion) {
    let s = scene(Game::TempleRun);
    let mut g = c.benchmark_group("fig11_groupings_l2");
    for grouping in [
        QuadGrouping::FgXShift2,
        QuadGrouping::CgSquare,
        QuadGrouping::CgTri,
    ] {
        g.bench_function(grouping.name(), |b| {
            b.iter(|| black_box(run(&s, &grouping_sched(grouping)).total_l2_accesses()));
        });
    }
    g.finish();
}

fn bench_fig12_groupings_balance(c: &mut Criterion) {
    let s = scene(Game::TempleRun);
    c.bench_function("fig12_groupings_balance", |b| {
        b.iter(|| black_box(run(&s, &grouping_sched(QuadGrouping::CgYRect)).mean_quad_deviation()));
    });
}

fn bench_fig13_coupled_speedup(c: &mut Criterion) {
    let s = scene(Game::CandyCrush);
    c.bench_function("fig13_coupled_speedup", |b| {
        b.iter(|| {
            let base = run(&s, &ScheduleConfig::baseline());
            let cg = run(&s, &grouping_sched(QuadGrouping::CgSquare));
            black_box(
                base.total_cycles(BarrierMode::Coupled) as f64
                    / cg.total_cycles(BarrierMode::Coupled) as f64,
            )
        });
    });
}

fn bench_fig14_time_imbalance(c: &mut Criterion) {
    let s = scene(Game::TempleRun);
    let r = run(&s, &grouping_sched(QuadGrouping::CgSquare));
    c.bench_function("fig14_time_imbalance", |b| {
        b.iter(|| black_box(Distribution::from_samples(&r.time_deviation_samples())));
    });
}

fn bench_fig15_quad_imbalance(c: &mut Criterion) {
    let s = scene(Game::TempleRun);
    let r = run(&s, &grouping_sched(QuadGrouping::CgSquare));
    c.bench_function("fig15_quad_imbalance", |b| {
        b.iter(|| black_box(Distribution::from_samples(&r.quad_deviation_samples())));
    });
}

fn bench_fig16_subtile_l2(c: &mut Criterion) {
    let s = scene(Game::GravityTetris);
    let mut g = c.benchmark_group("fig16_subtile_l2");
    for mapping in [
        NamedMapping::ZorderConst,
        NamedMapping::HilbertFlip2,
        NamedMapping::SorderFlip,
    ] {
        g.bench_function(mapping.name(), |b| {
            b.iter(|| black_box(run(&s, &mapping.config()).total_l2_accesses()));
        });
    }
    g.finish();
}

fn bench_fig17_dtexl_speedup(c: &mut Criterion) {
    let s = scene(Game::GravityTetris);
    let base = run(&s, &ScheduleConfig::baseline());
    let dtexl = run(&s, &ScheduleConfig::dtexl());
    // The composition itself is the kernel here: the same functional
    // pass serves both barrier modes.
    c.bench_function("fig17_dtexl_speedup", |b| {
        b.iter(|| {
            black_box(
                base.total_cycles(BarrierMode::Coupled) as f64
                    / dtexl.total_cycles(BarrierMode::Decoupled) as f64,
            )
        });
    });
}

fn bench_fig18_energy(c: &mut Criterion) {
    let s = scene(Game::GravityTetris);
    let r = run(&s, &ScheduleConfig::dtexl());
    let model = EnergyModel::default();
    c.bench_function("fig18_energy", |b| {
        b.iter(|| {
            black_box(
                model
                    .evaluate(&r.energy_events(BarrierMode::Decoupled))
                    .total_pj(),
            )
        });
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
        bench_table1_workloads,
        bench_fig01_load_balance,
        bench_fig02_l2_accesses,
        bench_fig11_groupings_l2,
        bench_fig12_groupings_balance,
        bench_fig13_coupled_speedup,
        bench_fig14_time_imbalance,
        bench_fig15_quad_imbalance,
        bench_fig16_subtile_l2,
        bench_fig17_dtexl_speedup,
        bench_fig18_energy,
}
criterion_main!(figures);
