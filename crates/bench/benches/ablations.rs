//! Ablation benches for the design choices called out in DESIGN.md §6.
//!
//! Each bench measures the end-to-end frame simulation under one knob
//! setting and prints the resulting DTexL speedup so `cargo bench`
//! output doubles as an ablation record (the full-resolution ablation
//! tables come from `figures ablations`).

use criterion::{criterion_group, criterion_main, Criterion};
use dtexl_pipeline::{BarrierMode, FrameSim, PipelineConfig};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::{ScheduleConfig, TileOrder};
use std::hint::black_box;

const W: u32 = 256;
const H: u32 = 128;

fn speedup(scene: &dtexl_scene::Scene, cfg: &PipelineConfig, dtexl: &ScheduleConfig) -> f64 {
    let base = FrameSim::run_with_resolution(scene, &ScheduleConfig::baseline(), cfg, W, H);
    let dt = FrameSim::run_with_resolution(scene, dtexl, cfg, W, H);
    base.total_cycles(BarrierMode::Coupled) as f64 / dt.total_cycles(BarrierMode::Decoupled) as f64
}

fn bench_warp_slots(c: &mut Criterion) {
    let scene = Game::GravityTetris.scene(&SceneSpec::new(W, H, 0));
    let mut g = c.benchmark_group("ablation_warp_slots");
    for slots in [4usize, 12, 48] {
        let cfg = PipelineConfig {
            warp_slots: slots,
            ..PipelineConfig::default()
        };
        eprintln!(
            "ablation warp_slots={slots}: DTexL speedup {:.3}",
            speedup(&scene, &cfg, &ScheduleConfig::dtexl())
        );
        g.bench_function(format!("warps_{slots}"), |b| {
            b.iter(|| black_box(speedup(&scene, &cfg, &ScheduleConfig::dtexl())));
        });
    }
    g.finish();
}

fn bench_l1_size(c: &mut Criterion) {
    let scene = Game::GravityTetris.scene(&SceneSpec::new(W, H, 0));
    let mut g = c.benchmark_group("ablation_l1_size");
    for kib in [8u64, 16, 64] {
        let mut cfg = PipelineConfig::default();
        cfg.hierarchy.l1.size_bytes = kib * 1024;
        eprintln!(
            "ablation l1={kib}KiB: DTexL speedup {:.3}",
            speedup(&scene, &cfg, &ScheduleConfig::dtexl())
        );
        g.bench_function(format!("l1_{kib}kib"), |b| {
            b.iter(|| black_box(speedup(&scene, &cfg, &ScheduleConfig::dtexl())));
        });
    }
    g.finish();
}

fn bench_hilbert_subframe(c: &mut Criterion) {
    let scene = Game::GravityTetris.scene(&SceneSpec::new(W, H, 0));
    let cfg = PipelineConfig::default();
    let mut g = c.benchmark_group("ablation_hilbert_subframe");
    for sub in [4u32, 8] {
        let sched = ScheduleConfig {
            order: TileOrder::Hilbert { sub },
            ..ScheduleConfig::dtexl()
        };
        eprintln!(
            "ablation hilbert sub={sub}: DTexL speedup {:.3}",
            speedup(&scene, &cfg, &sched)
        );
        g.bench_function(format!("sub_{sub}"), |b| {
            b.iter(|| black_box(speedup(&scene, &cfg, &sched)));
        });
    }
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_warp_slots, bench_l1_size, bench_hilbert_subframe,
}
criterion_main!(ablations);
