//! Performance benches of the simulator's own building blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use dtexl::gmath::Vec2;
use dtexl_mem::{SetAssocCache, TextureHierarchy, TextureHierarchyConfig};
use dtexl_pipeline::{Rasterizer, ShaderCore, ZBuffer};
use dtexl_scene::{DepthMode, Game, SceneSpec, ShaderProfile};
use dtexl_sched::{hilbert_d2xy, TileOrder, TileSchedule};
use dtexl_texture::{morton, Filter, Sampler, TextureDesc};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_access_stream", |b| {
        let mut cache = SetAssocCache::new(dtexl_mem::CacheConfig::texture_l1());
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 17) % 4096;
            black_box(cache.access(i).hit)
        });
    });
    c.bench_function("hierarchy_access", |b| {
        let mut h = TextureHierarchy::new(TextureHierarchyConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 13;
            black_box(h.access((i % 4) as usize, i % 65_536).latency)
        });
    });
}

fn bench_morton_and_hilbert(c: &mut Criterion) {
    c.bench_function("morton_encode", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(97) & 0xFFFF;
            black_box(morton::encode(x, x ^ 0x5555))
        });
    });
    c.bench_function("hilbert_d2xy", |b| {
        let mut d = 0u64;
        b.iter(|| {
            d = (d + 31) % (64 * 64);
            black_box(hilbert_d2xy(64, d))
        });
    });
    c.bench_function("tile_schedule_build", |b| {
        let cfg = dtexl_sched::ScheduleConfig::dtexl();
        b.iter(|| black_box(TileSchedule::build(&cfg, 62, 24).len()));
    });
    c.bench_function("tile_order_zorder_62x24", |b| {
        b.iter(|| black_box(TileOrder::ZOrder.sequence(62, 24).len()));
    });
}

fn bench_sampler(c: &mut Criterion) {
    let tex = TextureDesc::new(0, 512, 512, 0x1000_0000);
    let quad = [
        Vec2::new(0.1, 0.1),
        Vec2::new(0.102, 0.1),
        Vec2::new(0.1, 0.102),
        Vec2::new(0.102, 0.102),
    ];
    for (name, filter) in [
        ("sampler_bilinear", Filter::Bilinear),
        ("sampler_trilinear", Filter::Trilinear),
        ("sampler_aniso", Filter::Anisotropic { max_ratio: 8 }),
    ] {
        let s = Sampler::new(filter);
        c.bench_function(name, |b| {
            b.iter(|| black_box(s.quad_footprint(&tex, quad).len()));
        });
    }
}

fn bench_raster_and_z(c: &mut Criterion) {
    use dtexl::gmath::{Rect, Triangle2};
    use dtexl_pipeline::RasterPrim;
    let prim = RasterPrim {
        tri: Triangle2::new(
            Vec2::new(-4.0, -4.0),
            Vec2::new(80.0, -4.0),
            Vec2::new(-4.0, 80.0),
        ),
        z: [0.2, 0.5, 0.8],
        w: [1.0; 3],
        uv: [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, 1.0),
        ],
        texture: 0,
        shader: ShaderProfile::standard(),
        opaque: true,
        uv_scale: 1.0,
        depth_mode: DepthMode::Early,
        draw_index: 0,
    };
    let raster = Rasterizer::new(32);
    let screen = Rect::new(0, 0, 64, 64);
    c.bench_function("rasterize_full_tile", |b| {
        let mut out = Vec::with_capacity(256);
        b.iter(|| {
            out.clear();
            black_box(raster.rasterize_into(&prim, 0, 0, screen, &mut out))
        });
    });
    c.bench_function("early_z_tile", |b| {
        let mut out = Vec::with_capacity(256);
        raster.rasterize_into(&prim, 0, 0, screen, &mut out);
        let mut zb = ZBuffer::new(32);
        b.iter(|| {
            zb.clear();
            let mut survived = 0u32;
            for q in &out {
                survived += u32::from(zb.test_and_update(q) != 0);
            }
            black_box(survived)
        });
    });
}

fn bench_shader_core(c: &mut Criterion) {
    use dtexl_pipeline::Quad;
    let textures = vec![TextureDesc::new(0, 256, 256, 0x1000_0000)];
    let quads: Vec<Quad> = (0..64)
        .map(|i| {
            let x = (i % 16) as f32 * 2.0;
            let y = (i / 16) as f32 * 2.0;
            let uv = |px: f32, py: f32| Vec2::new(px / 256.0, py / 256.0);
            Quad {
                qx: i % 16,
                qy: i / 16,
                mask: 0b1111,
                z: [0.5; 4],
                uv: [
                    uv(x, y),
                    uv(x + 1.0, y),
                    uv(x, y + 1.0),
                    uv(x + 1.0, y + 1.0),
                ],
                texture: 0,
                shader: ShaderProfile::standard(),
                opaque: true,
                late_z: false,
            }
        })
        .collect();
    let core = ShaderCore::new(12, 10);
    c.bench_function("shader_core_subtile", |b| {
        let mut h = TextureHierarchy::new(TextureHierarchyConfig::default());
        b.iter(|| black_box(core.run_subtile(0, &quads, &textures, &mut h).0));
    });
}

fn bench_scene_gen(c: &mut Criterion) {
    c.bench_function("scene_gen_3d", |b| {
        b.iter(|| {
            black_box(
                Game::SonicDash
                    .scene(&SceneSpec::new(512, 256, 0))
                    .triangle_count(),
            )
        });
    });
    c.bench_function("scene_gen_2d", |b| {
        b.iter(|| {
            black_box(
                Game::CandyCrush
                    .scene(&SceneSpec::new(512, 256, 0))
                    .triangle_count(),
            )
        });
    });
}

fn bench_frame_scaling(c: &mut Criterion) {
    use dtexl_pipeline::{FrameSim, PipelineConfig};
    use dtexl_sched::ScheduleConfig;
    let mut g = c.benchmark_group("frame_sim_scaling");
    g.sample_size(10);
    for (w, h) in [(128u32, 64u32), (256, 128), (512, 256)] {
        let scene = Game::TempleRun.scene(&SceneSpec::new(w, h, 0));
        g.bench_function(format!("{w}x{h}"), |b| {
            b.iter(|| {
                black_box(
                    FrameSim::run_with_resolution(
                        &scene,
                        &ScheduleConfig::dtexl(),
                        &PipelineConfig::default(),
                        w,
                        h,
                    )
                    .total_quads_shaded(),
                )
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets =
        bench_cache,
        bench_morton_and_hilbert,
        bench_sampler,
        bench_raster_and_z,
        bench_shader_core,
        bench_scene_gen,
        bench_frame_scaling,
}
criterion_main!(components);
