//! Property-based tests for the raster pipeline's components.

use dtexl_gmath::{Rect, Triangle2, Vec2};
use dtexl_pipeline::{
    compose_frame, BarrierMode, Quad, RasterPrim, Rasterizer, StageDurations, ZBuffer,
};
use dtexl_scene::{DepthMode, ShaderProfile};
use proptest::prelude::*;

fn arb_durations() -> impl Strategy<Value = StageDurations> {
    let unit4 = proptest::array::uniform4(0u64..200);
    (
        proptest::collection::vec(0u64..50, 1..40),
        proptest::collection::vec(0u64..50, 1..40),
        proptest::collection::vec(unit4.clone(), 1..40),
        proptest::collection::vec(unit4.clone(), 1..40),
        proptest::collection::vec(unit4, 1..40),
    )
        .prop_map(|(fetch, raster, ez, fr, bl)| {
            let n = fetch
                .len()
                .min(raster.len())
                .min(ez.len())
                .min(fr.len())
                .min(bl.len());
            StageDurations {
                fetch: fetch[..n].to_vec(),
                raster: raster[..n].to_vec(),
                early_z: ez[..n].to_vec(),
                fragment: fr[..n].to_vec(),
                blend: bl[..n].to_vec(),
            }
        })
}

fn arb_tri() -> impl Strategy<Value = Triangle2> {
    let pt = (-8.0f32..72.0, -8.0f32..72.0).prop_map(|(x, y)| Vec2::new(x, y));
    (pt.clone(), pt.clone(), pt).prop_map(|(a, b, c)| Triangle2::new(a, b, c))
}

fn prim(tri: Triangle2) -> RasterPrim {
    RasterPrim {
        tri,
        z: [0.3, 0.5, 0.7],
        w: [1.0; 3],
        uv: [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, 1.0),
        ],
        texture: 0,
        shader: ShaderProfile::simple(),
        opaque: true,
        uv_scale: 1.0,
        depth_mode: DepthMode::Early,
        draw_index: 0,
    }
}

proptest! {
    /// Barrier ordering: unbounded decoupled ≤ any bounded credit ≤
    /// coupled-ish, and more credit never hurts — for arbitrary stage
    /// durations.
    #[test]
    fn barrier_mode_ordering(d in arb_durations()) {
        let coupled = compose_frame(&d, BarrierMode::Coupled);
        let unbounded = compose_frame(&d, BarrierMode::Decoupled);
        prop_assert!(unbounded <= coupled);
        let mut prev = u64::MAX;
        for ahead in [0u32, 1, 3, 8] {
            let b = compose_frame(&d, BarrierMode::DecoupledBounded { tiles_ahead: ahead });
            prop_assert!(b >= unbounded, "credit {ahead} beats unbounded");
            prop_assert!(b <= prev, "credit {ahead} worse than smaller credit");
            prev = b;
        }
    }

    /// Frame time is monotone in stage durations: growing any fragment
    /// duration never shortens the frame.
    #[test]
    fn frame_time_monotone(d in arb_durations(), tile_frac in 0.0f64..1.0, unit in 0usize..4, extra in 1u64..100) {
        let t = (tile_frac * d.fragment.len() as f64) as usize % d.fragment.len();
        let mut bigger = d.clone();
        bigger.fragment[t][unit] += extra;
        for mode in [BarrierMode::Coupled, BarrierMode::Decoupled] {
            prop_assert!(compose_frame(&bigger, mode) >= compose_frame(&d, mode));
        }
    }

    /// Rasterizer coverage equals brute-force point-in-triangle testing
    /// at pixel centers.
    #[test]
    fn raster_matches_brute_force(tri in arb_tri()) {
        let p = prim(tri);
        let screen = Rect::new(0, 0, 64, 64);
        let raster = Rasterizer::new(32);
        let mut quads = Vec::new();
        for (tx, ty) in [(0, 0), (32, 0), (0, 32), (32, 32)] {
            raster.rasterize_into(&p, tx, ty, screen, &mut quads);
        }
        // Collect covered pixels from quads (tile-local → global needs
        // the tile origin; recompute by brute force instead and compare
        // total counts).
        let brute: usize = (0..64)
            .flat_map(|y| (0..64).map(move |x| (x, y)))
            .filter(|&(x, y)| {
                p.tri.covers(Vec2::new(x as f32 + 0.5, y as f32 + 0.5))
            })
            .count();
        let covered: u32 = quads.iter().map(Quad::live_fragments).sum();
        prop_assert_eq!(covered as usize, brute);
    }

    /// Z-buffer correctness: after submitting opaque quads in any
    /// order, each pixel's stored depth is the minimum of the depths
    /// submitted to it.
    #[test]
    fn zbuffer_keeps_minimum(depths in proptest::collection::vec(0.0f32..1.0, 1..20)) {
        let mut zb = ZBuffer::new(32);
        for &z in &depths {
            let q = Quad {
                qx: 2,
                qy: 3,
                mask: 0b1111,
                z: [z; 4],
                uv: [Vec2::ZERO; 4],
                texture: 0,
                shader: ShaderProfile::simple(),
                opaque: true,
                late_z: false,
            };
            zb.test_and_update(&q);
        }
        let min = depths.iter().copied().fold(f32::MAX, f32::min);
        prop_assert_eq!(zb.depth_at(4, 6), min);
    }

    /// A quad passes the early-Z test iff it is strictly in front of
    /// everything opaque submitted before it.
    #[test]
    fn zbuffer_pass_iff_in_front(zs in proptest::collection::vec(0.05f32..0.95, 2..12)) {
        let mut zb = ZBuffer::new(32);
        let mut front = f32::MAX;
        for &z in &zs {
            let q = Quad {
                qx: 0,
                qy: 0,
                mask: 0b0001,
                z: [z; 4],
                uv: [Vec2::ZERO; 4],
                texture: 0,
                shader: ShaderProfile::simple(),
                opaque: true,
                late_z: false,
            };
            let passed = zb.test_and_update(&q) != 0;
            prop_assert_eq!(passed, z < front);
            front = front.min(z);
        }
    }
}
