//! Pipeline configuration (Table II defaults).

use crate::error::SimError;
use crate::fault::FaultPlan;
use dtexl_mem::{CacheConfig, TextureHierarchyConfig};
use serde::{Deserialize, Serialize};

/// Barrier organization of the last three raster stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BarrierMode {
    /// Baseline (Fig. 4): Early-Z, Fragment and Blend each process one
    /// tile at a time; all four units synchronize at tile boundaries.
    Coupled,
    /// DTexL (Fig. 10): each parallel unit only waits for *its own*
    /// previous subtile; color-buffer banks flush independently.
    Decoupled,
    /// Decoupled, but a unit may run at most `tiles_ahead` tiles ahead
    /// of the slowest sibling unit (a bounded run-ahead credit). The
    /// paper's proposal is unbounded; this variant shows how quickly
    /// the benefit converges with modest buffering (DESIGN.md §6).
    DecoupledBounded {
        /// Maximum tiles a unit may lead the slowest unit by (0 ≡
        /// coupled for the fragment chain).
        tiles_ahead: u32,
    },
}

/// Hardware configuration of the modeled GPU.
///
/// Defaults reproduce Table II: 600 MHz, 32×32 tiles, 4 SCs with 16 KiB
/// private texture L1s, 1 MiB shared L2, 50–100-cycle DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Tile side in pixels (Table II: 32).
    pub tile_size: u32,
    /// Number of parallel raster pipelines / shader cores (4).
    pub num_sc: usize,
    /// Warp slots per shader core (multithreading depth for latency
    /// hiding).
    pub warp_slots: usize,
    /// Rasterizer throughput in quads per cycle (feeds all pipelines).
    pub raster_quads_per_cycle: u32,
    /// Texture memory hierarchy (L1s + L2 + DRAM).
    pub hierarchy: TextureHierarchyConfig,
    /// L1 vertex cache geometry.
    pub vertex_cache: CacheConfig,
    /// Tile cache geometry (parameter buffer traffic).
    pub tile_cache: CacheConfig,
    /// Cycles the tile fetcher spends per primitive list entry.
    pub fetch_cycles_per_prim: u32,
    /// Cycles an L1 texture miss occupies the shader core's texture
    /// unit (MSHR allocation + line fill). This bounds the miss
    /// bandwidth of each core: multithreading hides miss *latency*, but
    /// the fill port is a throughput resource, which is how reduced
    /// replication (fewer L1 misses) turns into shader-core throughput
    /// (§V-C2).
    pub l1_miss_fill_cycles: u32,
    /// Cycles to flush one color-buffer bank to memory at tile end.
    pub flush_cycles_per_bank: u32,
    /// Model the Fig. 16 upper bound: a single SC whose L1 aggregates
    /// all private capacity (4×), eliminating replication.
    pub upper_bound: bool,
    /// Simulator worker threads for the fragment stage (one per SC
    /// lane) and for frame-sequence fan-out. `1` is the fully serial
    /// reference path; parallel runs are bit-identical to it by
    /// construction (each lane's L1 is traced independently and the
    /// shared L2 replays the miss streams in serial order). Defaults
    /// to the `DTEXL_THREADS` environment variable when set, else 1.
    pub threads: usize,
    /// Deterministic fault injection (robustness testing; off by
    /// default — see [`FaultPlan`]).
    pub fault: FaultPlan,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            tile_size: 32,
            num_sc: 4,
            warp_slots: 12,
            raster_quads_per_cycle: 4,
            hierarchy: TextureHierarchyConfig::default(),
            vertex_cache: CacheConfig::vertex_l1(),
            tile_cache: CacheConfig::tile_cache(),
            fetch_cycles_per_prim: 2,
            l1_miss_fill_cycles: 10,
            // One bank holds 1/4 of a 32×32 RGBA8 tile = 1 KiB = 16
            // lines; one line per cycle.
            flush_cycles_per_bank: 16,
            upper_bound: false,
            threads: Self::default_threads(),
            fault: FaultPlan::default(),
        }
    }
}

impl PipelineConfig {
    /// The default simulator thread count: `DTEXL_THREADS` when set to
    /// a positive integer, else 1 (serial).
    #[must_use]
    pub fn default_threads() -> usize {
        // lint: allow(determinism-env) -- documented DTEXL_THREADS knob; thread count is metric-invariant (pinned by tests/parallel_equivalence.rs)
        std::env::var("DTEXL_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&t| t > 0)
            .unwrap_or(1)
    }
    /// Quads per tile row/column.
    #[must_use]
    pub fn quads_per_side(&self) -> u32 {
        self.tile_size / 2
    }

    /// The effective texture-hierarchy configuration, honoring
    /// [`upper_bound`](Self::upper_bound) and merging in any DRAM
    /// fault injection from [`fault`](Self::fault).
    #[must_use]
    pub fn effective_hierarchy(&self) -> TextureHierarchyConfig {
        let mut h = if self.upper_bound {
            self.hierarchy.upper_bound(self.num_sc as u64)
        } else {
            self.hierarchy
        };
        if let Some(spike) = self.fault.dram_spike {
            h.dram.spike_period = spike.period;
            h.dram.spike_extra = spike.extra_cycles;
        }
        h
    }

    /// Number of shader cores actually instantiated (1 in upper-bound
    /// mode).
    #[must_use]
    pub fn effective_num_sc(&self) -> usize {
        if self.upper_bound {
            1
        } else {
            self.num_sc
        }
    }

    /// Validate invariants the simulator depends on.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] when the configuration is
    /// inconsistent, or [`SimError::Fault`] when the fault plan does
    /// not fit the hardware.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.tile_size == 0 || !self.tile_size.is_multiple_of(2) {
            return Err(SimError::Config(format!(
                "tile size {} must be even and non-zero",
                self.tile_size
            )));
        }
        if self.num_sc != 4 {
            return Err(SimError::Config(format!(
                "num_sc = {} is unsupported: the modeled raster pipeline has exactly 4 \
                 parallel units (Fig. 4); use `upper_bound` for the aggregated-cache study",
                self.num_sc
            )));
        }
        if self.warp_slots == 0 {
            return Err(SimError::Config("need at least one warp slot".into()));
        }
        if self.threads == 0 {
            return Err(SimError::Config(
                "threads must be >= 1 (1 selects the serial reference path)".into(),
            ));
        }
        if self.raster_quads_per_cycle == 0 {
            return Err(SimError::Config(
                "rasterizer throughput must be non-zero".into(),
            ));
        }
        self.fault
            .validate(self.effective_num_sc())
            .map_err(SimError::Fault)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = PipelineConfig::default();
        assert_eq!(c.tile_size, 32);
        assert_eq!(c.num_sc, 4);
        assert_eq!(c.quads_per_side(), 16);
        assert_eq!(c.hierarchy.l1.size_bytes, 16 * 1024);
        assert_eq!(c.hierarchy.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.vertex_cache.size_bytes, 8 * 1024);
        assert_eq!(c.tile_cache.size_bytes, 64 * 1024);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn upper_bound_rewires_hierarchy() {
        let c = PipelineConfig {
            upper_bound: true,
            ..PipelineConfig::default()
        };
        assert_eq!(c.effective_num_sc(), 1);
        let h = c.effective_hierarchy();
        assert_eq!(h.num_l1, 1);
        assert_eq!(h.l1.size_bytes, 64 * 1024);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let c = PipelineConfig {
            tile_size: 31,
            ..PipelineConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PipelineConfig {
            warp_slots: 0,
            ..PipelineConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PipelineConfig {
            num_sc: 8,
            ..PipelineConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(
            err.to_string().contains("num_sc = 8"),
            "error names the value: {err}"
        );
        let c = PipelineConfig {
            threads: 0,
            ..PipelineConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_covers_the_fault_plan() {
        use crate::fault::LaneStall;
        let c = PipelineConfig {
            fault: crate::fault::FaultPlan {
                lane_stall: Some(LaneStall { lane: 9, cycles: 1 }),
                ..crate::fault::FaultPlan::default()
            },
            ..PipelineConfig::default()
        };
        assert!(matches!(c.validate(), Err(SimError::Fault(_))));
    }

    #[test]
    fn dram_spike_merges_into_effective_hierarchy() {
        use crate::fault::DramSpike;
        let mut c = PipelineConfig::default();
        assert_eq!(c.effective_hierarchy().dram.spike_period, 0);
        c.fault.dram_spike = Some(DramSpike {
            period: 7,
            extra_cycles: 300,
        });
        let h = c.effective_hierarchy();
        assert_eq!(h.dram.spike_period, 7);
        assert_eq!(h.dram.spike_extra, 300);
    }

    #[test]
    fn threads_default_is_serial_without_env() {
        // The test environment does not set DTEXL_THREADS, so the
        // default must be the serial path.
        if std::env::var("DTEXL_THREADS").is_err() {
            assert_eq!(PipelineConfig::default().threads, 1);
        } else {
            assert!(PipelineConfig::default().threads >= 1);
        }
    }
}
