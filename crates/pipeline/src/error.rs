//! Typed simulation errors.
//!
//! The workspace-wide error surface for everything that can go wrong
//! when preparing or running a frame simulation. Modeled on
//! `dtexl_trace::TraceError`: a small closed enum whose variants name
//! the layer that rejected the input, each carrying the human-readable
//! detail the panicking API used to print.
//!
//! The leaf crates (`dtexl-scene`, `dtexl-sched`) keep their
//! lightweight `String`-based validation results so they stay
//! dependency-free; this type wraps them at the pipeline boundary.
//! The historical panicking entry points ([`crate::FrameSim::run`] and
//! friends) are thin wrappers that format a [`SimError`] into the same
//! panic messages they always produced, so `#[should_panic]` callers
//! and scripts matching on stderr keep working unchanged.

use std::fmt;

/// An error rejected by the simulator before (or instead of) running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The [`crate::PipelineConfig`] violates a hardware invariant
    /// (see [`crate::PipelineConfig::validate`]).
    Config(String),
    /// The scene failed [`dtexl_scene::Scene::validate`] (dangling
    /// texture ids, bad vertex ranges, …) or had an invalid spec.
    Scene(String),
    /// A schedule name did not parse (see
    /// [`dtexl_sched::ScheduleConfig`]'s `FromStr`).
    Schedule(String),
    /// The scene's texture table is not densely indexed
    /// (`textures[i].id() != i`).
    SparseTextureIds {
        /// Position in the texture table.
        index: usize,
        /// The id found there.
        id: u32,
    },
    /// The [`crate::FaultPlan`] is inconsistent with the configuration
    /// (e.g. stalling a lane that does not exist).
    Fault(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(m) => write!(f, "invalid pipeline configuration: {m}"),
            SimError::Scene(m) => write!(f, "invalid scene: {m}"),
            SimError::Schedule(m) => write!(f, "invalid schedule: {m}"),
            SimError::SparseTextureIds { index, id } => write!(
                f,
                "texture ids must be dense: textures[{index}] has id {id}"
            ),
            SimError::Fault(m) => write!(f, "invalid fault plan: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<dtexl_sched::ParseScheduleError> for SimError {
    fn from(e: dtexl_sched::ParseScheduleError) -> Self {
        SimError::Schedule(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_name_the_layer() {
        assert!(SimError::Config("x".into())
            .to_string()
            .starts_with("invalid pipeline configuration"));
        assert!(SimError::Scene("x".into())
            .to_string()
            .starts_with("invalid scene"));
        let e = SimError::SparseTextureIds { index: 0, id: 5 };
        assert!(e.to_string().contains("texture ids must be dense"));
        assert!(e.to_string().contains("id 5"));
    }

    #[test]
    fn schedule_parse_errors_convert() {
        let err: SimError = "not-a-schedule"
            .parse::<dtexl_sched::ScheduleConfig>()
            .unwrap_err()
            .into();
        assert!(matches!(err, SimError::Schedule(_)));
        assert!(err.to_string().contains("not-a-schedule"));
    }
}
