//! Screen-space primitives and quads.

use dtexl_gmath::{Rect, Triangle2, Vec2};
use dtexl_scene::{DepthMode, ShaderProfile};
use dtexl_texture::TextureId;

/// A triangle after the geometry pipeline: screen-space positions plus
/// the per-vertex data the rasterizer interpolates.
#[derive(Debug, Clone, PartialEq)]
pub struct RasterPrim {
    /// Screen-space triangle (pixel coordinates).
    pub tri: Triangle2,
    /// Per-vertex depth in [0, 1] (after viewport transform).
    pub z: [f32; 3],
    /// Per-vertex clip-space w (for perspective-correct interpolation).
    pub w: [f32; 3],
    /// Per-vertex texture coordinates.
    pub uv: [Vec2; 3],
    /// Texture bound to the draw.
    pub texture: TextureId,
    /// Fragment-shader profile of the draw.
    pub shader: ShaderProfile,
    /// Whether the primitive writes depth (opaque) or blends.
    pub opaque: bool,
    /// Extra texture-coordinate scaling applied at sampling.
    pub uv_scale: f32,
    /// Early or late depth testing.
    pub depth_mode: DepthMode,
    /// Index of the originating draw command (program order).
    pub draw_index: u32,
}

impl RasterPrim {
    /// Conservative pixel bounding box, clipped to the screen.
    #[must_use]
    pub fn bounds(&self, screen: Rect) -> Rect {
        self.tri.pixel_bounds().intersect(&screen)
    }
}

/// A shaded work unit: 2×2 fragments at even pixel coordinates.
///
/// `mask` marks which of the four fragments are covered and alive;
/// bit *i* corresponds to fragment *i* in the order top-left, top-right,
/// bottom-left, bottom-right.
#[derive(Debug, Clone, PartialEq)]
pub struct Quad {
    /// Quad x coordinate local to the tile (0..quads_per_side).
    pub qx: u32,
    /// Quad y coordinate local to the tile.
    pub qy: u32,
    /// Alive-fragment mask (non-zero).
    pub mask: u8,
    /// Per-fragment depth.
    pub z: [f32; 4],
    /// Per-fragment texture coordinates (already uv-scaled).
    pub uv: [Vec2; 4],
    /// Texture to sample.
    pub texture: TextureId,
    /// Shader cost profile.
    pub shader: ShaderProfile,
    /// Depth-writing primitive?
    pub opaque: bool,
    /// Late-Z quad: shaded unconditionally, depth-resolved after the
    /// fragment stage.
    pub late_z: bool,
}

impl Quad {
    /// Number of live fragments.
    #[must_use]
    pub fn live_fragments(&self) -> u32 {
        self.mask.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtexl_gmath::Vec2;

    #[test]
    fn bounds_are_clipped() {
        let p = RasterPrim {
            tri: Triangle2::new(
                Vec2::new(-10.0, -10.0),
                Vec2::new(50.0, 0.0),
                Vec2::new(0.0, 50.0),
            ),
            z: [0.5; 3],
            w: [1.0; 3],
            uv: [Vec2::ZERO; 3],
            texture: 0,
            shader: ShaderProfile::simple(),
            opaque: true,
            uv_scale: 1.0,
            depth_mode: DepthMode::Early,
            draw_index: 0,
        };
        let b = p.bounds(Rect::new(0, 0, 32, 32));
        assert_eq!(b, Rect::new(0, 0, 32, 32));
    }

    #[test]
    fn live_fragment_count() {
        let q = Quad {
            qx: 0,
            qy: 0,
            mask: 0b1011,
            z: [0.0; 4],
            uv: [Vec2::ZERO; 4],
            texture: 0,
            shader: ShaderProfile::simple(),
            opaque: true,
            late_z: false,
        };
        assert_eq!(q.live_fragments(), 3);
    }
}
