//! Functional rendering: produce the actual output image of a frame.
//!
//! This is the correctness backbone of the reproduction: the paper's
//! schedulers reorder work "without violating the correctness of the
//! pipeline", so the rendered image must be **bit-identical** for every
//! quad grouping, tile order, subtile assignment and barrier mode. The
//! renderer processes quads exactly as the hardware would — per tile in
//! schedule order, per subtile in its shader core's stream order — and
//! relies on the same property the hardware does: subtiles partition
//! the tile's pixels, so per-bank in-order blending is globally
//! in-order per pixel.

use crate::config::PipelineConfig;
use crate::geometry::GeometryPipeline;
use crate::prim::Quad;
use crate::raster::Rasterizer;
use crate::tiling::TilingEngine;
use crate::zbuffer::ZBuffer;
use dtexl_gmath::{interp::attr_derivatives, Rect};
use dtexl_scene::Scene;
use dtexl_sched::{ScheduleConfig, TileSchedule};
use dtexl_texture::Sampler;

/// An RGBA8 output image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: u32,
    height: u32,
    pixels: Vec<[u8; 4]>,
}

impl Image {
    /// A black, opaque image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0);
        Self {
            width,
            height,
            pixels: vec![[0, 0, 0, 255]; (width * height) as usize],
        }
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn pixel(&self, x: u32, y: u32) -> [u8; 4] {
        assert!(x < self.width && y < self.height);
        self.pixels[(y * self.width + x) as usize]
    }

    fn pixel_mut(&mut self, x: u32, y: u32) -> &mut [u8; 4] {
        &mut self.pixels[(y * self.width + x) as usize]
    }

    /// A 64-bit content digest (FNV over the pixel bytes); equal images
    /// have equal digests.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for p in &self.pixels {
            for &b in p {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Serialize as a binary PPM (P6) file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_ppm<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "P6\n{} {}\n255", self.width, self.height)?;
        for p in &self.pixels {
            w.write_all(&p[..3])?;
        }
        Ok(())
    }
}

/// The functional renderer.
#[derive(Debug)]
pub struct Renderer;

impl Renderer {
    /// Render `scene` at `width × height` using the given schedule.
    ///
    /// The schedule affects only the *processing order*; the output
    /// image is invariant — which is exactly what the invariance tests
    /// assert.
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations or scenes (see
    /// [`PipelineConfig::validate`] and [`Scene::validate`]).
    #[must_use]
    pub fn render(
        scene: &Scene,
        schedule: &ScheduleConfig,
        config: &PipelineConfig,
        width: u32,
        height: u32,
    ) -> Image {
        // lint: allow(no-panic) -- documented panicking debug renderer; simulation paths use the try_ APIs
        config.validate().unwrap_or_else(|e| panic!("{e}"));
        scene
            .validate()
            // lint: allow(no-panic) -- documented panicking debug renderer; simulation paths use the try_ APIs
            .unwrap_or_else(|e| panic!("invalid scene: {e}"));

        let mut geom = GeometryPipeline::new(config.vertex_cache);
        let gout = geom.run(scene, width, height);
        let mut tiling = TilingEngine::new(config.tile_cache, config.tile_size);
        let bins = tiling.bin(&gout.prims, width, height);
        let tsched = TileSchedule::build(schedule, bins.tiles_w(), bins.tiles_h());
        let raster = Rasterizer::new(config.tile_size);
        let mut zbuf = ZBuffer::new(config.tile_size);
        let screen = Rect::new(0, 0, width as i32, height as i32);
        let qps = config.quads_per_side();

        let mut image = Image::new(width, height);
        let mut tile_quads: Vec<Quad> = Vec::new();
        let mut per_sc: [Vec<Quad>; 4] = Default::default();

        for (ti, (tx, ty), _assign) in tsched.iter() {
            let tile_px = (tx * config.tile_size) as i32;
            let tile_py = (ty * config.tile_size) as i32;
            tile_quads.clear();
            for &pi in bins.list(tx, ty) {
                raster.rasterize_into(
                    &gout.prims[pi as usize],
                    tile_px,
                    tile_py,
                    screen,
                    &mut tile_quads,
                );
            }
            // Depth resolve in submission order (the hardware's early/
            // late Z stages preserve it), then partition into per-bank
            // streams.
            zbuf.clear();
            for q in per_sc.iter_mut() {
                q.clear();
            }
            for q in &tile_quads {
                let surviving = zbuf.test_and_update(q);
                let mask = if q.late_z {
                    q.mask & surviving
                } else {
                    surviving
                };
                if mask != 0 {
                    let sc = tsched.sc_of_quad(ti, q.qx, q.qy, qps, qps);
                    let mut alive = q.clone();
                    alive.mask = mask;
                    per_sc[sc].push(alive);
                }
            }
            // Each bank blends its own stream; the streams touch
            // disjoint pixels, so any interleaving yields the same
            // image.
            for stream in &per_sc {
                for q in stream {
                    blend_quad(&mut image, q, scene, tile_px, tile_py);
                }
            }
        }
        image
    }
}

/// Shade and blend one quad's live fragments into the image.
fn blend_quad(image: &mut Image, q: &Quad, scene: &Scene, tile_px: i32, tile_py: i32) {
    // lint: allow(no-panic) -- scene.validate() above guarantees every quad's texture id resolves
    let tex = scene.texture(q.texture).expect("validated scene");
    let sampler = Sampler::new(q.shader.filter);
    // Per-quad LOD from the UV footprint, as the texture unit computes.
    let scale = dtexl_gmath::Vec2::new(tex.width() as f32, tex.height() as f32);
    let texel = q.uv.map(|uv| uv.mul_elem(scale));
    let (ddx, ddy) = attr_derivatives(texel);
    let lod = ddx.length().max(ddy.length()).max(1e-6).log2().max(0.0);

    for (i, (dx, dy)) in [(0u32, 0u32), (1, 0), (0, 1), (1, 1)].iter().enumerate() {
        if q.mask & (1 << i) == 0 {
            continue;
        }
        let px = tile_px + (q.qx * 2 + dx) as i32;
        let py = tile_py + (q.qy * 2 + dy) as i32;
        if px < 0 || py < 0 || px as u32 >= image.width() || py as u32 >= image.height() {
            continue;
        }
        let c = sampler.sample_color(tex, q.uv[i], lod);
        let dst = image.pixel_mut(px as u32, py as u32);
        if q.opaque {
            for ch in 0..3 {
                dst[ch] = (c[ch] * 255.0) as u8;
            }
            dst[3] = 255;
        } else {
            // Source-over with the texture's alpha.
            let a = c[3];
            for ch in 0..3 {
                let src = c[ch] * 255.0;
                let d = f32::from(dst[ch]);
                dst[ch] = (src * a + d * (1.0 - a)).clamp(0.0, 255.0) as u8;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtexl_scene::{Game, SceneSpec};
    use dtexl_sched::NamedMapping;

    const W: u32 = 160;
    const H: u32 = 96;

    fn render(game: Game, schedule: &ScheduleConfig) -> Image {
        let scene = game.scene(&SceneSpec::new(W, H, 0));
        Renderer::render(&scene, schedule, &PipelineConfig::default(), W, H)
    }

    #[test]
    fn renders_nonblack_content() {
        let img = render(Game::CandyCrush, &ScheduleConfig::baseline());
        let lit = (0..H)
            .flat_map(|y| (0..W).map(move |x| (x, y)))
            .filter(|&(x, y)| img.pixel(x, y)[..3] != [0, 0, 0])
            .count();
        assert!(
            lit > (W * H) as usize / 2,
            "most of the screen is drawn, got {lit}"
        );
    }

    #[test]
    fn image_is_schedule_invariant() {
        // The paper's correctness requirement: scheduling must not
        // change the output.
        let reference = render(Game::SonicDash, &ScheduleConfig::baseline());
        for mapping in NamedMapping::FIG16 {
            let img = render(Game::SonicDash, &mapping.config());
            assert_eq!(
                img.digest(),
                reference.digest(),
                "{} changed the rendered image",
                mapping.name()
            );
        }
    }

    #[test]
    fn different_games_render_differently() {
        let a = render(Game::CandyCrush, &ScheduleConfig::baseline());
        let b = render(Game::Maze, &ScheduleConfig::baseline());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn ppm_roundtrip_header() {
        let img = Image::new(4, 2);
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n4 2\n255\n"));
        assert_eq!(buf.len(), "P6\n4 2\n255\n".len() + 4 * 2 * 3);
    }

    #[test]
    fn digest_detects_single_pixel_change() {
        let mut a = Image::new(8, 8);
        let d0 = a.digest();
        a.pixel_mut(3, 3)[0] = 7;
        assert_ne!(a.digest(), d0);
    }

    #[test]
    fn opaque_overwrite_and_blend_differ() {
        // A scene with a transparent layer must differ from the same
        // scene drawn opaque.
        let mut scene = Game::CandyCrush.scene(&SceneSpec::new(W, H, 0));
        let transparent = Renderer::render(
            &scene,
            &ScheduleConfig::baseline(),
            &PipelineConfig::default(),
            W,
            H,
        );
        for d in &mut scene.draws {
            d.opaque = true;
        }
        let opaque = Renderer::render(
            &scene,
            &ScheduleConfig::baseline(),
            &PipelineConfig::default(),
            W,
            H,
        );
        assert_ne!(transparent.digest(), opaque.digest());
    }
}
