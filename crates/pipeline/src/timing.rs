//! Frame-time composition under coupled and decoupled barriers.

use crate::config::BarrierMode;
use dtexl_obs::{Event, NullProbe, Probe, Span, SpanKind, Stage};

/// Per-tile durations of every raster-pipeline stage, in traversal
/// order. Index `[t][u]` is tile `t`, parallel unit `u`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageDurations {
    /// Tile fetcher (serial unit): cycles to fetch tile `t`'s list.
    pub fetch: Vec<u64>,
    /// Rasterizer (serial unit): cycles to emit tile `t`'s quads.
    pub raster: Vec<u64>,
    /// Early-Z units.
    pub early_z: Vec<[u64; 4]>,
    /// Fragment stage (shader cores) — measured by the SC model.
    pub fragment: Vec<[u64; 4]>,
    /// Blend units, including the per-bank color flush.
    pub blend: Vec<[u64; 4]>,
}

impl StageDurations {
    /// Number of tiles recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fragment.len()
    }

    /// Whether no tiles were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fragment.is_empty()
    }

    fn assert_consistent(&self) {
        let n = self.len();
        assert!(
            self.fetch.len() == n
                && self.raster.len() == n
                && self.early_z.len() == n
                && self.blend.len() == n,
            "stage duration vectors must have equal length"
        );
    }
}

/// Compose the raster-phase execution time (in cycles) from per-tile
/// stage durations under the given barrier mode.
///
/// Both modes share the front of the pipe: the tile fetcher and the
/// rasterizer are single units processing tiles in order. The last
/// three stages each have four parallel units:
///
/// * **Coupled** (Fig. 4): a stage starts tile *t* only after all of
///   its units finished tile *t−1*, so each stage's tile time is the
///   max over its units.
/// * **Decoupled** (Fig. 10): unit *u* of a stage starts its subtile of
///   tile *t* as soon as (a) the producing stage's unit delivered it
///   and (b) *u* itself finished tile *t−1* — the per-unit chains
///   advance independently.
///
/// # Panics
///
/// Panics if the duration vectors have inconsistent lengths.
#[must_use]
pub fn compose_frame(d: &StageDurations, mode: BarrierMode) -> u64 {
    compose_frame_probed(d, mode, &mut NullProbe)
}

/// [`compose_frame`] with an observability probe: the same composition
/// walk, additionally attributing every cycle of every unit to a
/// [`Span`] — busy, waiting on the producer stage (`WaitUpstream`), or
/// held by a barrier (`WaitBarrier`: sibling units under a coupled
/// barrier, the credit floor under a bounded decoupled one).
///
/// The returned frame time is identical to [`compose_frame`]'s — the
/// probe observes the walk, it never changes it — and with
/// [`NullProbe`] this *is* [`compose_frame`] (the span plumbing
/// monomorphizes away). Spans are emitted tile-major, stage-major,
/// unit-ascending, carry only simulated cycle stamps, and zero-length
/// intervals are skipped.
///
/// # Panics
///
/// Panics if the duration vectors have inconsistent lengths.
pub fn compose_frame_probed<P: Probe>(d: &StageDurations, mode: BarrierMode, probe: &mut P) -> u64 {
    d.assert_consistent();
    if d.is_empty() {
        return 0;
    }
    match mode {
        BarrierMode::Coupled => compose_coupled(d, probe),
        BarrierMode::Decoupled => compose_decoupled(d, None, probe),
        BarrierMode::DecoupledBounded { tiles_ahead } => {
            compose_decoupled(d, Some(tiles_ahead as usize), probe)
        }
    }
}

/// Emit one attributed interval; empty intervals are dropped.
fn span<P: Probe>(
    probe: &mut P,
    stage: Stage,
    sc: usize,
    tile: usize,
    kind: SpanKind,
    start: u64,
    end: u64,
) {
    if end > start {
        probe.record(Event::Span(Span {
            stage,
            sc: sc as u8,
            tile: tile as u32,
            kind,
            start,
            end,
        }));
    }
}

/// Advance the serial front half (tile fetcher + rasterizer) by one
/// tile — shared verbatim between the two compositions, which is why
/// the front-end spans are identical across barrier modes.
fn front_half<P: Probe>(
    d: &StageDurations,
    t: usize,
    fetch_done: &mut u64,
    raster_done: &mut u64,
    probe: &mut P,
) {
    let f_start = *fetch_done;
    *fetch_done += d.fetch[t];
    span(
        probe,
        Stage::Fetch,
        0,
        t,
        SpanKind::Busy,
        f_start,
        *fetch_done,
    );
    let r_start = (*raster_done).max(*fetch_done);
    span(
        probe,
        Stage::Raster,
        0,
        t,
        SpanKind::WaitUpstream,
        *raster_done,
        r_start,
    );
    *raster_done = r_start + d.raster[t];
    span(
        probe,
        Stage::Raster,
        0,
        t,
        SpanKind::Busy,
        r_start,
        *raster_done,
    );
}

/// The per-SC back half, in dataflow order.
const BACK_STAGES: [Stage; 3] = [Stage::EarlyZ, Stage::Fragment, Stage::Blend];

fn compose_coupled<P: Probe>(d: &StageDurations, probe: &mut P) -> u64 {
    let mut fetch_done = 0u64;
    let mut raster_done = 0u64;
    // Stage-done times for early-Z / fragment / blend: under a coupled
    // barrier each stage advances as one unit, so a scalar per stage.
    let mut done = [0u64; 3];
    for t in 0..d.len() {
        front_half(d, t, &mut fetch_done, &mut raster_done, probe);
        let mut producer = raster_done;
        for (si, stage) in BACK_STAGES.into_iter().enumerate() {
            let durs = match stage {
                Stage::EarlyZ => d.early_z[t],
                Stage::Fragment => d.fragment[t],
                _ => d.blend[t],
            };
            let tile_max = durs.iter().copied().max().unwrap_or(0);
            // All units released tile t-1 together (the barrier), so
            // each is ready at done[si]; the stage starts tile t when
            // the producer has delivered it.
            let start = done[si].max(producer);
            for (u, &dur) in durs.iter().enumerate() {
                span(probe, stage, u, t, SpanKind::WaitUpstream, done[si], start);
                span(probe, stage, u, t, SpanKind::Busy, start, start + dur);
                span(
                    probe,
                    stage,
                    u,
                    t,
                    SpanKind::WaitBarrier,
                    start + dur,
                    start + tile_max,
                );
            }
            done[si] = start + tile_max;
            producer = done[si];
        }
    }
    done[2]
}

/// Decoupled composition; with `credit = Some(k)`, a unit of a stage
/// may not start its subtile of tile `t` before *every* unit of that
/// same stage has finished tile `t - k - 1` — i.e. units of a stage can
/// spread over at most `k + 1` consecutive tiles (bounded run-ahead
/// buffering). Stages still hand subtiles to each other per unit, so
/// even `k = 0` decouples *within* a tile; `k = ∞` (`None`) is the
/// paper's fully decoupled pipeline.
///
/// Wait attribution: a unit's idle gap before starting tile `t` is
/// `WaitBarrier` when the credit floor is the binding constraint and
/// `WaitUpstream` (producer not done) otherwise.
fn compose_decoupled<P: Probe>(d: &StageDurations, credit: Option<usize>, probe: &mut P) -> u64 {
    let mut fetch_done = 0u64;
    let mut raster_done = 0u64;
    let mut ez_done = [0u64; 4];
    let mut fr_done = [0u64; 4];
    let mut bl_done = [0u64; 4];
    // Per-stage history of "all units finished tile t" times, used only
    // when a credit bound is in force.
    let mut ez_hist: Vec<u64> = Vec::new();
    let mut fr_hist: Vec<u64> = Vec::new();
    let mut bl_hist: Vec<u64> = Vec::new();
    for t in 0..d.len() {
        front_half(d, t, &mut fetch_done, &mut raster_done, probe);
        let (mut ez_floor, mut fr_floor, mut bl_floor) = (0u64, 0u64, 0u64);
        if let Some(k) = credit {
            if t > k {
                ez_floor = ez_hist[t - k - 1];
                fr_floor = fr_hist[t - k - 1];
                bl_floor = bl_hist[t - k - 1];
            }
        }
        let (mut ez_max, mut fr_max, mut bl_max) = (0u64, 0u64, 0u64);
        for u in 0..4 {
            let start = step_unit(
                probe,
                Stage::EarlyZ,
                u,
                t,
                ez_done[u],
                raster_done,
                ez_floor,
            );
            ez_done[u] = start + d.early_z[t][u];
            span(
                probe,
                Stage::EarlyZ,
                u,
                t,
                SpanKind::Busy,
                start,
                ez_done[u],
            );

            let start = step_unit(
                probe,
                Stage::Fragment,
                u,
                t,
                fr_done[u],
                ez_done[u],
                fr_floor,
            );
            fr_done[u] = start + d.fragment[t][u];
            span(
                probe,
                Stage::Fragment,
                u,
                t,
                SpanKind::Busy,
                start,
                fr_done[u],
            );

            let start = step_unit(probe, Stage::Blend, u, t, bl_done[u], fr_done[u], bl_floor);
            bl_done[u] = start + d.blend[t][u];
            span(probe, Stage::Blend, u, t, SpanKind::Busy, start, bl_done[u]);

            ez_max = ez_max.max(ez_done[u]);
            fr_max = fr_max.max(fr_done[u]);
            bl_max = bl_max.max(bl_done[u]);
        }
        if credit.is_some() {
            ez_hist.push(ez_max);
            fr_hist.push(fr_max);
            bl_hist.push(bl_max);
        }
    }
    bl_done.iter().copied().max().unwrap_or(0)
}

/// One decoupled unit taking up tile `t`: returns its start time
/// `max(ready, producer, floor)` and attributes any idle gap since
/// `ready` to the binding constraint.
fn step_unit<P: Probe>(
    probe: &mut P,
    stage: Stage,
    u: usize,
    t: usize,
    ready: u64,
    producer: u64,
    floor: u64,
) -> u64 {
    let start = ready.max(producer).max(floor);
    if start > ready {
        let kind = if floor > producer {
            SpanKind::WaitBarrier
        } else {
            SpanKind::WaitUpstream
        };
        span(probe, stage, u, t, kind, ready, start);
    }
    start
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(tiles: usize, fr: [u64; 4]) -> StageDurations {
        StageDurations {
            fetch: vec![1; tiles],
            raster: vec![2; tiles],
            early_z: vec![[4; 4]; tiles],
            fragment: vec![fr; tiles],
            blend: vec![[4; 4]; tiles],
        }
    }

    #[test]
    fn empty_frame_is_zero() {
        assert_eq!(
            compose_frame(&StageDurations::default(), BarrierMode::Coupled),
            0
        );
        assert_eq!(
            compose_frame(&StageDurations::default(), BarrierMode::Decoupled),
            0
        );
    }

    #[test]
    fn decoupled_never_slower() {
        for fr in [[10, 10, 10, 10], [40, 10, 10, 10], [1, 2, 3, 100]] {
            let d = uniform(20, fr);
            assert!(
                compose_frame(&d, BarrierMode::Decoupled)
                    <= compose_frame(&d, BarrierMode::Coupled),
                "{fr:?}"
            );
        }
    }

    #[test]
    fn balanced_load_gains_nothing_from_decoupling() {
        let d = uniform(50, [25, 25, 25, 25]);
        assert_eq!(
            compose_frame(&d, BarrierMode::Coupled),
            compose_frame(&d, BarrierMode::Decoupled)
        );
    }

    #[test]
    fn imbalance_hurts_coupled_only() {
        // Alternating bottleneck unit: coupled pays max every tile,
        // decoupled lets the idle units run ahead.
        let tiles = 100;
        let mut d = uniform(tiles, [0; 4]);
        for t in 0..tiles {
            let mut fr = [10u64; 4];
            fr[t % 4] = 70; // rotating hot subtile
            d.fragment[t] = fr;
        }
        let coupled = compose_frame(&d, BarrierMode::Coupled);
        let decoupled = compose_frame(&d, BarrierMode::Decoupled);
        // Coupled: ≥ 70 per tile. Decoupled: each unit does 70 only
        // every 4th tile → ~(70 + 3*10)/4 = 25 per tile amortized.
        assert!(
            decoupled * 2 < coupled,
            "decoupled {decoupled} vs coupled {coupled}"
        );
    }

    #[test]
    fn permanently_hot_unit_limits_decoupling() {
        // If the SAME unit is always the bottleneck (the paper's
        // "partial" mapping problem), decoupling cannot help steady-state
        // throughput.
        let tiles = 200;
        let mut d = uniform(tiles, [0; 4]);
        for t in 0..tiles {
            d.fragment[t] = [80, 10, 10, 10];
        }
        let coupled = compose_frame(&d, BarrierMode::Coupled);
        let decoupled = compose_frame(&d, BarrierMode::Decoupled);
        // Both are dominated by unit 0's 80-cycle chain.
        assert!(decoupled >= tiles as u64 * 80);
        assert!(coupled >= decoupled);
        assert!((coupled - decoupled) < coupled / 10, "gain must be small");
    }

    #[test]
    fn fetch_bound_pipeline() {
        // A slow tile fetcher starves both modes equally.
        let mut d = uniform(50, [5, 5, 5, 5]);
        d.fetch = vec![1000; 50];
        let c = compose_frame(&d, BarrierMode::Coupled);
        let dec = compose_frame(&d, BarrierMode::Decoupled);
        assert!(c >= 50_000 && dec >= 50_000);
        assert!(c - dec <= 20, "bottleneck upstream → no decoupling gain");
    }

    #[test]
    fn bounded_decoupling_interpolates() {
        // Rotating hot unit: unbounded decoupling wins big; credit 0 is
        // close to coupled; larger credits converge to unbounded.
        let tiles = 100;
        let mut d = uniform(tiles, [0; 4]);
        for t in 0..tiles {
            let mut fr = [10u64; 4];
            fr[t % 4] = 70;
            d.fragment[t] = fr;
        }
        let coupled = compose_frame(&d, BarrierMode::Coupled);
        let unbounded = compose_frame(&d, BarrierMode::Decoupled);
        let mut prev = coupled;
        for ahead in [0u32, 1, 2, 4, 16] {
            let bounded = compose_frame(&d, BarrierMode::DecoupledBounded { tiles_ahead: ahead });
            assert!(bounded >= unbounded, "credit {ahead} can't beat unbounded");
            assert!(bounded <= coupled, "credit {ahead} can't lose to coupled");
            assert!(bounded <= prev, "more credit never hurts");
            prev = bounded;
        }
        let wide = compose_frame(&d, BarrierMode::DecoupledBounded { tiles_ahead: 16 });
        assert!(
            wide <= unbounded + unbounded / 20,
            "16 tiles of credit ≈ unbounded ({wide} vs {unbounded})"
        );
    }

    #[test]
    fn consistent_lengths_compose() {
        // The checked counterpart of `inconsistent_lengths_panic`:
        // equal-length stage traces compose in every barrier mode.
        let d = uniform(3, [1; 4]);
        for mode in [
            BarrierMode::Coupled,
            BarrierMode::Decoupled,
            BarrierMode::DecoupledBounded { tiles_ahead: 1 },
        ] {
            assert!(compose_frame(&d, mode) > 0);
        }
    }

    #[test]
    // lint: typed-sibling(consistent_lengths_compose)
    #[should_panic(expected = "equal length")]
    fn inconsistent_lengths_panic() {
        let mut d = uniform(3, [1; 4]);
        d.fetch.pop();
        let _ = compose_frame(&d, BarrierMode::Coupled);
    }

    use dtexl_obs::EventSink;

    fn rotating_hot(tiles: usize) -> StageDurations {
        let mut d = uniform(tiles, [0; 4]);
        for t in 0..tiles {
            let mut fr = [10u64; 4];
            fr[t % 4] = 70;
            d.fragment[t] = fr;
        }
        d
    }

    const ALL_MODES: [BarrierMode; 3] = [
        BarrierMode::Coupled,
        BarrierMode::Decoupled,
        BarrierMode::DecoupledBounded { tiles_ahead: 1 },
    ];

    #[test]
    fn probed_composition_matches_unprobed() {
        let d = rotating_hot(40);
        for mode in ALL_MODES {
            let mut sink = EventSink::new();
            let probed = compose_frame_probed(&d, mode, &mut sink);
            assert_eq!(probed, compose_frame(&d, mode), "{mode:?}");
            assert!(!sink.is_empty());
            assert_eq!(sink.dropped(), 0);
        }
    }

    #[test]
    fn busy_spans_account_for_every_duration_cycle() {
        let d = rotating_hot(25);
        let per_stage_expected = |stage: Stage| -> u64 {
            match stage {
                Stage::Fetch => d.fetch.iter().sum(),
                Stage::Raster => d.raster.iter().sum(),
                Stage::EarlyZ => d.early_z.iter().flatten().sum(),
                Stage::Fragment => d.fragment.iter().flatten().sum(),
                Stage::Blend => d.blend.iter().flatten().sum(),
            }
        };
        for mode in ALL_MODES {
            let mut sink = EventSink::new();
            compose_frame_probed(&d, mode, &mut sink);
            for stage in Stage::ALL {
                let busy: u64 = sink
                    .spans()
                    .iter()
                    .filter(|s| s.stage == stage && s.kind == SpanKind::Busy)
                    .map(Span::cycles)
                    .sum();
                assert_eq!(busy, per_stage_expected(stage), "{mode:?} {stage:?}");
            }
        }
    }

    #[test]
    fn per_unit_spans_never_overlap() {
        let d = rotating_hot(30);
        for mode in ALL_MODES {
            let mut sink = EventSink::new();
            compose_frame_probed(&d, mode, &mut sink);
            for stage in Stage::ALL {
                for sc in 0..4u8 {
                    let mut cursor = 0u64;
                    for s in sink
                        .spans()
                        .iter()
                        .filter(|s| s.stage == stage && s.sc == sc)
                    {
                        assert!(
                            s.start >= cursor,
                            "{mode:?} {stage:?}/SC{sc}: span {s:?} overlaps previous end {cursor}"
                        );
                        cursor = s.end;
                    }
                }
            }
        }
    }

    #[test]
    fn coupled_barrier_aligns_units_and_decoupled_has_no_barrier_waits() {
        let d = rotating_hot(20);
        // Coupled: per (stage, tile), every unit's timeline ends on the
        // same cycle — that is what the barrier *is*.
        let mut sink = EventSink::new();
        compose_frame_probed(&d, BarrierMode::Coupled, &mut sink);
        let spans = sink.spans();
        for stage in [Stage::EarlyZ, Stage::Fragment, Stage::Blend] {
            for t in 0..d.len() as u32 {
                let ends: Vec<u64> = (0..4u8)
                    .map(|sc| {
                        spans
                            .iter()
                            .filter(|s| s.stage == stage && s.tile == t && s.sc == sc)
                            .map(|s| s.end)
                            .max()
                            .unwrap()
                    })
                    .collect();
                assert!(
                    ends.iter().all(|&e| e == ends[0]),
                    "{stage:?} t{t}: units release together, got {ends:?}"
                );
            }
        }
        // The rotating hot subtile makes sibling waits substantial.
        assert!(spans.iter().any(|s| s.kind == SpanKind::WaitBarrier));

        // Unbounded decoupled: nothing to wait on but producers.
        let mut sink = EventSink::new();
        compose_frame_probed(&d, BarrierMode::Decoupled, &mut sink);
        assert!(
            sink.spans().iter().all(|s| s.kind != SpanKind::WaitBarrier),
            "unbounded decoupling has no barrier waits"
        );

        // A tight credit bound reintroduces barrier waits.
        let mut sink = EventSink::new();
        compose_frame_probed(
            &d,
            BarrierMode::DecoupledBounded { tiles_ahead: 0 },
            &mut sink,
        );
        assert!(
            sink.spans().iter().any(|s| s.kind == SpanKind::WaitBarrier),
            "credit floor must surface as barrier waits"
        );
    }

    #[test]
    fn front_end_spans_are_mode_invariant() {
        let d = rotating_hot(15);
        let front = |mode: BarrierMode| -> Vec<Span> {
            let mut sink = EventSink::new();
            compose_frame_probed(&d, mode, &mut sink);
            sink.spans()
                .into_iter()
                .filter(|s| !s.stage.is_per_sc())
                .collect()
        };
        let coupled = front(BarrierMode::Coupled);
        for mode in [
            BarrierMode::Decoupled,
            BarrierMode::DecoupledBounded { tiles_ahead: 2 },
        ] {
            assert_eq!(coupled, front(mode), "{mode:?}");
        }
    }
}
