//! Frame-time composition under coupled and decoupled barriers.

use crate::config::BarrierMode;

/// Per-tile durations of every raster-pipeline stage, in traversal
/// order. Index `[t][u]` is tile `t`, parallel unit `u`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageDurations {
    /// Tile fetcher (serial unit): cycles to fetch tile `t`'s list.
    pub fetch: Vec<u64>,
    /// Rasterizer (serial unit): cycles to emit tile `t`'s quads.
    pub raster: Vec<u64>,
    /// Early-Z units.
    pub early_z: Vec<[u64; 4]>,
    /// Fragment stage (shader cores) — measured by the SC model.
    pub fragment: Vec<[u64; 4]>,
    /// Blend units, including the per-bank color flush.
    pub blend: Vec<[u64; 4]>,
}

impl StageDurations {
    /// Number of tiles recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fragment.len()
    }

    /// Whether no tiles were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fragment.is_empty()
    }

    fn assert_consistent(&self) {
        let n = self.len();
        assert!(
            self.fetch.len() == n
                && self.raster.len() == n
                && self.early_z.len() == n
                && self.blend.len() == n,
            "stage duration vectors must have equal length"
        );
    }
}

/// Compose the raster-phase execution time (in cycles) from per-tile
/// stage durations under the given barrier mode.
///
/// Both modes share the front of the pipe: the tile fetcher and the
/// rasterizer are single units processing tiles in order. The last
/// three stages each have four parallel units:
///
/// * **Coupled** (Fig. 4): a stage starts tile *t* only after all of
///   its units finished tile *t−1*, so each stage's tile time is the
///   max over its units.
/// * **Decoupled** (Fig. 10): unit *u* of a stage starts its subtile of
///   tile *t* as soon as (a) the producing stage's unit delivered it
///   and (b) *u* itself finished tile *t−1* — the per-unit chains
///   advance independently.
///
/// # Panics
///
/// Panics if the duration vectors have inconsistent lengths.
#[must_use]
pub fn compose_frame(d: &StageDurations, mode: BarrierMode) -> u64 {
    d.assert_consistent();
    if d.is_empty() {
        return 0;
    }

    let mut fetch_done = 0u64;
    let mut raster_done = 0u64;
    match mode {
        BarrierMode::Coupled => {
            let mut ez_done = 0u64;
            let mut fr_done = 0u64;
            let mut bl_done = 0u64;
            for t in 0..d.len() {
                fetch_done += d.fetch[t];
                raster_done = raster_done.max(fetch_done) + d.raster[t];
                // lint: allow(no-panic) -- per-unit arrays are fixed [u64; 4], never empty
                let ez = *d.early_z[t].iter().max().expect("4 units");
                ez_done = ez_done.max(raster_done) + ez;
                // lint: allow(no-panic) -- per-unit arrays are fixed [u64; 4], never empty
                let fr = *d.fragment[t].iter().max().expect("4 units");
                fr_done = fr_done.max(ez_done) + fr;
                // lint: allow(no-panic) -- per-unit arrays are fixed [u64; 4], never empty
                let bl = *d.blend[t].iter().max().expect("4 units");
                bl_done = bl_done.max(fr_done) + bl;
            }
            bl_done
        }
        BarrierMode::Decoupled => compose_decoupled(d, None),
        BarrierMode::DecoupledBounded { tiles_ahead } => {
            compose_decoupled(d, Some(tiles_ahead as usize))
        }
    }
}

/// Decoupled composition; with `credit = Some(k)`, a unit of a stage
/// may not start its subtile of tile `t` before *every* unit of that
/// same stage has finished tile `t - k - 1` — i.e. units of a stage can
/// spread over at most `k + 1` consecutive tiles (bounded run-ahead
/// buffering). Stages still hand subtiles to each other per unit, so
/// even `k = 0` decouples *within* a tile; `k = ∞` (`None`) is the
/// paper's fully decoupled pipeline.
fn compose_decoupled(d: &StageDurations, credit: Option<usize>) -> u64 {
    let mut fetch_done = 0u64;
    let mut raster_done = 0u64;
    let mut ez_done = [0u64; 4];
    let mut fr_done = [0u64; 4];
    let mut bl_done = [0u64; 4];
    // Per-stage history of "all units finished tile t" times, used only
    // when a credit bound is in force.
    let mut ez_hist: Vec<u64> = Vec::new();
    let mut fr_hist: Vec<u64> = Vec::new();
    let mut bl_hist: Vec<u64> = Vec::new();
    for t in 0..d.len() {
        fetch_done += d.fetch[t];
        raster_done = raster_done.max(fetch_done) + d.raster[t];
        let (mut ez_floor, mut fr_floor, mut bl_floor) = (0u64, 0u64, 0u64);
        if let Some(k) = credit {
            if t > k {
                ez_floor = ez_hist[t - k - 1];
                fr_floor = fr_hist[t - k - 1];
                bl_floor = bl_hist[t - k - 1];
            }
        }
        let (mut ez_max, mut fr_max, mut bl_max) = (0u64, 0u64, 0u64);
        for u in 0..4 {
            ez_done[u] = ez_done[u].max(raster_done).max(ez_floor) + d.early_z[t][u];
            fr_done[u] = fr_done[u].max(ez_done[u]).max(fr_floor) + d.fragment[t][u];
            bl_done[u] = bl_done[u].max(fr_done[u]).max(bl_floor) + d.blend[t][u];
            ez_max = ez_max.max(ez_done[u]);
            fr_max = fr_max.max(fr_done[u]);
            bl_max = bl_max.max(bl_done[u]);
        }
        if credit.is_some() {
            ez_hist.push(ez_max);
            fr_hist.push(fr_max);
            bl_hist.push(bl_max);
        }
    }
    // lint: allow(no-panic) -- per-unit arrays are fixed [u64; 4], never empty
    *bl_done.iter().max().expect("4 units")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(tiles: usize, fr: [u64; 4]) -> StageDurations {
        StageDurations {
            fetch: vec![1; tiles],
            raster: vec![2; tiles],
            early_z: vec![[4; 4]; tiles],
            fragment: vec![fr; tiles],
            blend: vec![[4; 4]; tiles],
        }
    }

    #[test]
    fn empty_frame_is_zero() {
        assert_eq!(
            compose_frame(&StageDurations::default(), BarrierMode::Coupled),
            0
        );
        assert_eq!(
            compose_frame(&StageDurations::default(), BarrierMode::Decoupled),
            0
        );
    }

    #[test]
    fn decoupled_never_slower() {
        for fr in [[10, 10, 10, 10], [40, 10, 10, 10], [1, 2, 3, 100]] {
            let d = uniform(20, fr);
            assert!(
                compose_frame(&d, BarrierMode::Decoupled)
                    <= compose_frame(&d, BarrierMode::Coupled),
                "{fr:?}"
            );
        }
    }

    #[test]
    fn balanced_load_gains_nothing_from_decoupling() {
        let d = uniform(50, [25, 25, 25, 25]);
        assert_eq!(
            compose_frame(&d, BarrierMode::Coupled),
            compose_frame(&d, BarrierMode::Decoupled)
        );
    }

    #[test]
    fn imbalance_hurts_coupled_only() {
        // Alternating bottleneck unit: coupled pays max every tile,
        // decoupled lets the idle units run ahead.
        let tiles = 100;
        let mut d = uniform(tiles, [0; 4]);
        for t in 0..tiles {
            let mut fr = [10u64; 4];
            fr[t % 4] = 70; // rotating hot subtile
            d.fragment[t] = fr;
        }
        let coupled = compose_frame(&d, BarrierMode::Coupled);
        let decoupled = compose_frame(&d, BarrierMode::Decoupled);
        // Coupled: ≥ 70 per tile. Decoupled: each unit does 70 only
        // every 4th tile → ~(70 + 3*10)/4 = 25 per tile amortized.
        assert!(
            decoupled * 2 < coupled,
            "decoupled {decoupled} vs coupled {coupled}"
        );
    }

    #[test]
    fn permanently_hot_unit_limits_decoupling() {
        // If the SAME unit is always the bottleneck (the paper's
        // "partial" mapping problem), decoupling cannot help steady-state
        // throughput.
        let tiles = 200;
        let mut d = uniform(tiles, [0; 4]);
        for t in 0..tiles {
            d.fragment[t] = [80, 10, 10, 10];
        }
        let coupled = compose_frame(&d, BarrierMode::Coupled);
        let decoupled = compose_frame(&d, BarrierMode::Decoupled);
        // Both are dominated by unit 0's 80-cycle chain.
        assert!(decoupled >= tiles as u64 * 80);
        assert!(coupled >= decoupled);
        assert!((coupled - decoupled) < coupled / 10, "gain must be small");
    }

    #[test]
    fn fetch_bound_pipeline() {
        // A slow tile fetcher starves both modes equally.
        let mut d = uniform(50, [5, 5, 5, 5]);
        d.fetch = vec![1000; 50];
        let c = compose_frame(&d, BarrierMode::Coupled);
        let dec = compose_frame(&d, BarrierMode::Decoupled);
        assert!(c >= 50_000 && dec >= 50_000);
        assert!(c - dec <= 20, "bottleneck upstream → no decoupling gain");
    }

    #[test]
    fn bounded_decoupling_interpolates() {
        // Rotating hot unit: unbounded decoupling wins big; credit 0 is
        // close to coupled; larger credits converge to unbounded.
        let tiles = 100;
        let mut d = uniform(tiles, [0; 4]);
        for t in 0..tiles {
            let mut fr = [10u64; 4];
            fr[t % 4] = 70;
            d.fragment[t] = fr;
        }
        let coupled = compose_frame(&d, BarrierMode::Coupled);
        let unbounded = compose_frame(&d, BarrierMode::Decoupled);
        let mut prev = coupled;
        for ahead in [0u32, 1, 2, 4, 16] {
            let bounded = compose_frame(&d, BarrierMode::DecoupledBounded { tiles_ahead: ahead });
            assert!(bounded >= unbounded, "credit {ahead} can't beat unbounded");
            assert!(bounded <= coupled, "credit {ahead} can't lose to coupled");
            assert!(bounded <= prev, "more credit never hurts");
            prev = bounded;
        }
        let wide = compose_frame(&d, BarrierMode::DecoupledBounded { tiles_ahead: 16 });
        assert!(
            wide <= unbounded + unbounded / 20,
            "16 tiles of credit ≈ unbounded ({wide} vs {unbounded})"
        );
    }

    #[test]
    fn consistent_lengths_compose() {
        // The checked counterpart of `inconsistent_lengths_panic`:
        // equal-length stage traces compose in every barrier mode.
        let d = uniform(3, [1; 4]);
        for mode in [
            BarrierMode::Coupled,
            BarrierMode::Decoupled,
            BarrierMode::DecoupledBounded { tiles_ahead: 1 },
        ] {
            assert!(compose_frame(&d, mode) > 0);
        }
    }

    #[test]
    // lint: typed-sibling(consistent_lengths_compose)
    #[should_panic(expected = "equal length")]
    fn inconsistent_lengths_panic() {
        let mut d = uniform(3, [1; 4]);
        d.fetch.pop();
        let _ = compose_frame(&d, BarrierMode::Coupled);
    }
}
