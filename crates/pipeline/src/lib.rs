//! Cycle-level Tile-Based-Rendering graphics pipeline for DTexL.
//!
//! This crate is the TEAPOT stand-in: it models the full TBR pipeline of
//! Fig. 3 at the granularity the paper's results depend on.
//!
//! ```text
//!  Geometry Pipeline          Tiling Engine              Raster Pipeline
//! ┌──────────────────┐   ┌─────────────────────┐   ┌───────────────────────────┐
//! │ Vertex fetch      │   │ Polygon List Builder │   │ Tile Fetcher → Rasterizer │
//! │  (L1 vertex cache)│ → │  (Parameter Buffer,  │ → │  → Early-Z (4 units)      │
//! │ Transform, Prim   │   │   Tile Cache)        │   │  → Fragment (4 SCs + L1s) │
//! │ Assembly, Clip    │   │ Tile Fetcher order   │   │  → Blend (4 banks), Flush │
//! └──────────────────┘   └─────────────────────┘   └───────────────────────────┘
//! ```
//!
//! The important modeling decisions:
//!
//! * **Functional + timing split.** One functional pass rasterizes every
//!   tile in schedule order, performs early-Z, and feeds each shader
//!   core's quads (with real texture-line footprints) through a
//!   warp-level SC timing model backed by the `dtexl-mem` hierarchy.
//!   That yields per-(tile, SC) fragment durations and cache statistics.
//!   Frame time is then *composed* from those durations under either
//!   barrier mode — the per-SC quad order is identical in both, so the
//!   cache behavior is shared and the comparison is apples-to-apples.
//! * **Coupled barriers** (Fig. 4): each of Early-Z / Fragment / Blend
//!   works on exactly one tile at a time; a stage starts tile *t+1* only
//!   when all four of its units finished tile *t*.
//! * **Decoupled barriers** (Fig. 10, DTexL): each *unit* of those
//!   stages advances to its subtile of the next tile independently; the
//!   color buffer flushes per bank.
//!
//! # Examples
//!
//! ```
//! use dtexl_pipeline::{BarrierMode, FrameSim, PipelineConfig};
//! use dtexl_scene::{Game, SceneSpec};
//! use dtexl_sched::{ScheduleConfig, TileSchedule};
//!
//! let config = PipelineConfig::default();
//! let scene = Game::GravityTetris.scene(&SceneSpec::new(256, 128, 0));
//! let sim = FrameSim::run(&scene, &ScheduleConfig::baseline(), &config);
//! assert!(sim.total_cycles(BarrierMode::Coupled)
//!     >= sim.total_cycles(BarrierMode::Decoupled));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod fault;
mod frame;
mod geometry;
mod prefix;
mod prim;
mod raster;
mod render;
mod shade;
pub mod shade_detailed;
mod tiling;
mod timing;
mod zbuffer;

pub use config::{BarrierMode, PipelineConfig};
pub use error::SimError;
pub use fault::{DramSpike, FaultPlan, LaneStall};
pub use frame::{FrameResult, FrameSim, TileRecord};
pub use geometry::{GeometryOutput, GeometryPipeline, GeometryStats};
pub use prefix::FramePrefix;
pub use prim::{Quad, RasterPrim};
pub use raster::{Rasterizer, TileRasterStats};
pub use render::{Image, Renderer};
pub use shade::{PreparedQuad, ShaderCore, ShaderCoreStats, SubtileTrace};
pub use tiling::{TileBins, TilingEngine, TilingStats};
pub use timing::{compose_frame, compose_frame_probed, StageDurations};
pub use zbuffer::ZBuffer;

/// Re-export of the observability crate, so downstream callers can
/// build probes ([`dtexl_obs::EventSink`]) without naming the crate as
/// a direct dependency.
pub use dtexl_obs as obs;
