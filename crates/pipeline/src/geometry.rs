//! The geometry pipeline: vertex fetch, transform, primitive assembly,
//! trivial clipping and viewport mapping.

use crate::prim::RasterPrim;
use dtexl_gmath::{Rect, Triangle2, Vec2};
use dtexl_mem::{line_of, CacheConfig, CacheStats, DramConfig, DramModel, SetAssocCache};
use dtexl_scene::{Scene, Vertex};

/// Statistics of one geometry-pipeline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GeometryStats {
    /// Vertices fetched from memory.
    pub vertices: u64,
    /// Triangles assembled (before clipping).
    pub prims_assembled: u64,
    /// Triangles surviving clipping/culling.
    pub prims_emitted: u64,
    /// Vertex-cache behavior.
    pub vertex_cache: CacheStats,
    /// Modeled execution cycles of the whole geometry phase.
    pub cycles: u64,
}

/// Output of the geometry pipeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GeometryOutput {
    /// Screen-space primitives in program order.
    pub prims: Vec<RasterPrim>,
    /// Run statistics.
    pub stats: GeometryStats,
}

/// The geometry pipeline (Vertex Stage + Primitive Assembly of Fig. 3).
///
/// # Examples
///
/// ```
/// use dtexl_pipeline::GeometryPipeline;
/// use dtexl_scene::{Game, SceneSpec};
/// use dtexl_mem::CacheConfig;
///
/// let scene = Game::CandyCrush.scene(&SceneSpec::new(128, 128, 0));
/// let out = GeometryPipeline::new(CacheConfig::vertex_l1()).run(&scene, 128, 128);
/// assert!(out.stats.prims_emitted > 0);
/// ```
#[derive(Debug)]
pub struct GeometryPipeline {
    vertex_cache: SetAssocCache,
    dram: DramModel,
}

impl GeometryPipeline {
    /// Create the pipeline with the given L1 vertex-cache geometry.
    #[must_use]
    pub fn new(vertex_cache: CacheConfig) -> Self {
        Self {
            vertex_cache: SetAssocCache::new(vertex_cache),
            dram: DramModel::new(DramConfig::default()),
        }
    }

    /// Transform and assemble every draw of `scene` for a
    /// `width × height` viewport.
    #[must_use]
    pub fn run(&mut self, scene: &Scene, width: u32, height: u32) -> GeometryOutput {
        let screen = Rect::new(0, 0, width as i32, height as i32);
        let mut out = GeometryOutput::default();
        let mut miss_latency = 0u64;

        for (draw_index, draw) in scene.draws.iter().enumerate() {
            let mvp = draw.transform;
            let mut tri_clip = Vec::with_capacity(3);
            for local in 0..draw.vertex_count {
                let index = draw.first_vertex + local;
                // Vertex fetch through the L1 vertex cache (a 32-byte
                // vertex spans part of a 64-byte line; sequential
                // vertices share lines).
                let addr = Vertex::address_of(index);
                out.stats.vertices += 1;
                if !self.vertex_cache.access(line_of(addr)).hit {
                    // Miss latency: shared L2 then possibly DRAM; we
                    // charge the L2 latency plus an address-hashed DRAM
                    // latency 1/4 of the time (warm parameter data).
                    miss_latency += 12;
                    if index % 4 == 0 {
                        miss_latency += u64::from(self.dram.request(line_of(addr)));
                    }
                }
                let v = scene.vertices[index as usize];
                let clip = mvp * v.pos.extend(1.0);
                tri_clip.push((clip, v.uv));

                if tri_clip.len() == 3 {
                    out.stats.prims_assembled += 1;
                    if let Some(prim) =
                        assemble(&tri_clip, screen, width, height, draw_index as u32, draw)
                    {
                        out.prims.push(prim);
                        out.stats.prims_emitted += 1;
                    }
                    tri_clip.clear();
                }
            }
        }

        out.stats.vertex_cache = *self.vertex_cache.stats();
        // 1 cycle per vertex issue + 1 per assembled primitive, with
        // 4-wide memory-level parallelism on miss latency.
        out.stats.cycles = out.stats.vertices + out.stats.prims_assembled + miss_latency / 4;
        out
    }
}

/// Clip (trivially), project and viewport-map one triangle.
fn assemble(
    tri_clip: &[(dtexl_gmath::Vec4, Vec2)],
    screen: Rect,
    width: u32,
    height: u32,
    draw_index: u32,
    draw: &dtexl_scene::DrawCommand,
) -> Option<RasterPrim> {
    // Trivial near-plane handling: reject triangles not fully in front
    // of the camera. Synthetic scenes never straddle the near plane, so
    // full polygon clipping would only ever see these rejects.
    const MIN_W: f32 = 1e-3;
    if tri_clip.iter().any(|(c, _)| c.w < MIN_W) {
        return None;
    }
    let mut pos = [Vec2::ZERO; 3];
    let mut z = [0f32; 3];
    let mut w = [0f32; 3];
    let mut uv = [Vec2::ZERO; 3];
    for (i, (clip, vuv)) in tri_clip.iter().enumerate() {
        let ndc = clip.project();
        pos[i] = Vec2::new(
            (ndc.x + 1.0) * 0.5 * width as f32,
            (1.0 - ndc.y) * 0.5 * height as f32,
        );
        z[i] = (ndc.z + 1.0) * 0.5;
        w[i] = clip.w;
        uv[i] = *vuv;
    }
    let tri = Triangle2::new(pos[0], pos[1], pos[2]);
    if tri.is_degenerate() {
        return None;
    }
    if tri.pixel_bounds().intersect(&screen).is_empty() {
        return None;
    }
    Some(RasterPrim {
        tri,
        z,
        w,
        uv,
        texture: draw.texture,
        shader: draw.shader,
        opaque: draw.opaque,
        uv_scale: draw.uv_scale,
        depth_mode: draw.depth_mode,
        draw_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtexl_scene::{Game, SceneSpec};

    fn run(game: Game) -> GeometryOutput {
        let scene = game.scene(&SceneSpec::new(320, 180, 0));
        GeometryPipeline::new(CacheConfig::vertex_l1()).run(&scene, 320, 180)
    }

    #[test]
    fn emits_primitives_for_all_games() {
        for game in Game::ALL {
            let out = run(game);
            assert!(out.stats.prims_emitted > 0, "{}", game.alias());
            assert!(out.stats.prims_emitted <= out.stats.prims_assembled);
            assert_eq!(out.prims.len() as u64, out.stats.prims_emitted);
        }
    }

    #[test]
    fn emitted_prims_are_on_screen_and_ordered() {
        let out = run(Game::SonicDash);
        let screen = Rect::new(0, 0, 320, 180);
        let mut last_draw = 0;
        for p in &out.prims {
            assert!(!p.bounds(screen).is_empty());
            assert!(p.draw_index >= last_draw, "program order preserved");
            last_draw = p.draw_index;
            assert!(p.w.iter().all(|&w| w > 0.0));
        }
    }

    #[test]
    fn vertex_cache_sees_traffic_and_locality() {
        let out = run(Game::CandyCrush);
        let s = out.stats.vertex_cache;
        assert_eq!(s.accesses, out.stats.vertices);
        // Two 32-byte vertices per 64-byte line → at least ~40% hits.
        assert!(s.hit_rate() > 0.4, "hit rate {}", s.hit_rate());
    }

    #[test]
    fn cycles_scale_with_work() {
        let small = run(Game::ShootWar);
        assert!(small.stats.cycles >= small.stats.vertices);
    }

    #[test]
    fn fully_behind_camera_scene_emits_nothing() {
        use dtexl_gmath::{Mat4, Vec3};
        use dtexl_scene::{DrawCommand, ShaderProfile, Vertex};
        use dtexl_texture::TextureDesc;
        let scene = Scene {
            textures: vec![TextureDesc::new(0, 64, 64, dtexl_scene::TEXTURE_BASE_ADDR)],
            vertices: vec![
                Vertex::new(Vec3::new(0.0, 0.0, 5.0), Vec2::new(0.0, 0.0)),
                Vertex::new(Vec3::new(1.0, 0.0, 5.0), Vec2::new(1.0, 0.0)),
                Vertex::new(Vec3::new(0.0, 1.0, 5.0), Vec2::new(0.0, 1.0)),
            ],
            draws: vec![DrawCommand {
                first_vertex: 0,
                vertex_count: 3,
                texture: 0,
                shader: ShaderProfile::simple(),
                transform: Mat4::perspective(1.0, 1.0, 0.1, 100.0),
                opaque: true,
                uv_scale: 1.0,
                depth_mode: dtexl_scene::DepthMode::Early,
            }],
        };
        let out = GeometryPipeline::new(CacheConfig::vertex_l1()).run(&scene, 100, 100);
        assert_eq!(out.stats.prims_emitted, 0, "behind the camera");
    }
}
