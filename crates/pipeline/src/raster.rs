//! The rasterizer: primitive → covered 2×2 quads with interpolated
//! attributes.

use crate::prim::{Quad, RasterPrim};
use dtexl_gmath::{interp::AttrPlane, Rect, Vec2};
use dtexl_scene::DepthMode;

/// Summary of rasterizing one tile's binned primitive list (the
/// per-tile counts the observability probes record).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileRasterStats {
    /// Primitives from the bin list that emitted at least one quad.
    pub covering_prims: u32,
    /// Total quads emitted into the tile's quad list.
    pub quads: u32,
}

/// The rasterizer of Fig. 3: walks a primitive's coverage inside one
/// tile and emits [`Quad`]s with perspective-correct UVs and
/// screen-affine depth.
///
/// UVs are produced for *all four* fragments of a covered quad (helper
/// lanes), because texture-LOD derivatives need the full 2×2 footprint —
/// exactly like real hardware.
#[derive(Debug, Clone, Copy)]
pub struct Rasterizer {
    tile_size: u32,
}

impl Rasterizer {
    /// Create a rasterizer for `tile_size`-pixel tiles.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` is zero or odd.
    #[must_use]
    pub fn new(tile_size: u32) -> Self {
        assert!(tile_size > 0 && tile_size.is_multiple_of(2));
        Self { tile_size }
    }

    /// Rasterize `prim` inside the tile whose top-left pixel is
    /// `(tile_px, tile_py)`, appending covered quads to `out`.
    ///
    /// Returns the number of quads emitted.
    pub fn rasterize_into(
        &self,
        prim: &RasterPrim,
        tile_px: i32,
        tile_py: i32,
        screen: Rect,
        out: &mut Vec<Quad>,
    ) -> usize {
        let ts = self.tile_size as i32;
        let tile_rect = Rect::new(tile_px, tile_py, tile_px + ts, tile_py + ts);
        let clip = prim.bounds(screen).intersect(&tile_rect);
        if clip.is_empty() {
            return 0;
        }

        // Perspective-correct UV plane (scaled by the draw's uv factor)
        // and screen-affine depth.
        let uv_plane = AttrPlane::new(
            [
                prim.uv[0] * prim.uv_scale,
                prim.uv[1] * prim.uv_scale,
                prim.uv[2] * prim.uv_scale,
            ],
            prim.w,
        );

        // Quad-aligned bounds (2-pixel granularity).
        let qx0 = clip.x0 & !1;
        let qy0 = clip.y0 & !1;
        let mut emitted = 0;
        let mut qy = qy0;
        while qy < clip.y1 {
            let mut qx = qx0;
            while qx < clip.x1 {
                if let Some(q) = self.make_quad(prim, &uv_plane, qx, qy, tile_px, tile_py, screen) {
                    out.push(q);
                    emitted += 1;
                }
                qx += 2;
            }
            qy += 2;
        }
        emitted
    }

    /// Rasterize every primitive of a tile's bin `list` (indices into
    /// `prims`) in program order, appending quads to `out`. This is the
    /// whole-tile front-half step [`FrameSim`](crate::FrameSim) runs;
    /// the returned summary feeds the observability probes.
    pub fn rasterize_tile_into(
        &self,
        prims: &[RasterPrim],
        list: &[u32],
        tile_px: i32,
        tile_py: i32,
        screen: Rect,
        out: &mut Vec<Quad>,
    ) -> TileRasterStats {
        let mut stats = TileRasterStats::default();
        for &pi in list {
            let emitted = self.rasterize_into(&prims[pi as usize], tile_px, tile_py, screen, out);
            if emitted > 0 {
                stats.covering_prims += 1;
            }
            stats.quads += emitted as u32;
        }
        stats
    }

    #[allow(clippy::too_many_arguments)]
    fn make_quad(
        &self,
        prim: &RasterPrim,
        uv_plane: &AttrPlane,
        qx: i32,
        qy: i32,
        tile_px: i32,
        tile_py: i32,
        screen: Rect,
    ) -> Option<Quad> {
        let mut mask = 0u8;
        let mut z = [0f32; 4];
        let mut uv = [Vec2::ZERO; 4];
        let offsets = [(0, 0), (1, 0), (0, 1), (1, 1)];
        let mut bary = [None; 4];
        for (i, (dx, dy)) in offsets.iter().enumerate() {
            let px = qx + dx;
            let py = qy + dy;
            let center = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);
            let b = prim.tri.barycentric(center)?;
            let covered =
                b.l0 >= -1e-6 && b.l1 >= -1e-6 && b.l2 >= -1e-6 && screen.contains(px, py);
            if covered {
                mask |= 1 << i;
            }
            bary[i] = Some(b);
        }
        if mask == 0 {
            return None;
        }
        for i in 0..4 {
            // lint: allow(no-panic) -- bary[i] was filled for every lane in the loop above when mask != 0
            let b = bary[i].expect("computed above");
            z[i] = b.interpolate(prim.z[0], prim.z[1], prim.z[2]);
            uv[i] = uv_plane.eval(b);
        }
        Some(Quad {
            qx: ((qx - tile_px) / 2) as u32,
            qy: ((qy - tile_py) / 2) as u32,
            mask,
            z,
            uv,
            texture: prim.texture,
            shader: prim.shader,
            opaque: prim.opaque,
            late_z: prim.depth_mode == DepthMode::Late,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtexl_gmath::Triangle2;
    use dtexl_scene::ShaderProfile;

    fn prim(tri: Triangle2) -> RasterPrim {
        RasterPrim {
            tri,
            z: [0.25, 0.5, 0.75],
            w: [1.0; 3],
            uv: [
                Vec2::new(0.0, 0.0),
                Vec2::new(1.0, 0.0),
                Vec2::new(0.0, 1.0),
            ],
            texture: 0,
            shader: ShaderProfile::simple(),
            opaque: true,
            uv_scale: 1.0,
            depth_mode: DepthMode::Early,
            draw_index: 0,
        }
    }

    fn full_tile_prim() -> RasterPrim {
        // A triangle covering the whole 32×32 tile.
        prim(Triangle2::new(
            Vec2::new(-4.0, -4.0),
            Vec2::new(80.0, -4.0),
            Vec2::new(-4.0, 80.0),
        ))
    }

    const SCREEN: Rect = Rect::new(0, 0, 64, 64);

    #[test]
    fn full_coverage_emits_all_quads() {
        let r = Rasterizer::new(32);
        let mut quads = Vec::new();
        let n = r.rasterize_into(&full_tile_prim(), 0, 0, SCREEN, &mut quads);
        assert_eq!(n, 256, "16×16 quads fully covered");
        assert!(quads.iter().all(|q| q.mask == 0b1111));
        assert!(quads.iter().all(|q| q.qx < 16 && q.qy < 16));
    }

    #[test]
    fn small_triangle_partial_coverage() {
        let r = Rasterizer::new(32);
        let mut quads = Vec::new();
        let p = prim(Triangle2::new(
            Vec2::new(4.0, 4.0),
            Vec2::new(8.0, 4.0),
            Vec2::new(4.0, 8.0),
        ));
        let n = r.rasterize_into(&p, 0, 0, SCREEN, &mut quads);
        assert!((1..=9).contains(&n), "a few quads, got {n}");
        assert!(quads.iter().any(|q| q.mask != 0b1111), "edges are partial");
    }

    #[test]
    fn prim_outside_tile_emits_nothing() {
        let r = Rasterizer::new(32);
        let mut quads = Vec::new();
        let n = r.rasterize_into(
            &full_tile_prim(),
            96,
            96,
            Rect::new(0, 0, 128, 128),
            &mut quads,
        );
        // The prim covers only up to ~(80, 80): tile at (96, 96) is out.
        assert_eq!(n, 0);
    }

    #[test]
    fn depth_interpolates_across_quads() {
        let r = Rasterizer::new(32);
        let mut quads = Vec::new();
        r.rasterize_into(&full_tile_prim(), 0, 0, SCREEN, &mut quads);
        let z_min = quads.iter().flat_map(|q| q.z).fold(f32::MAX, f32::min);
        let z_max = quads.iter().flat_map(|q| q.z).fold(f32::MIN, f32::max);
        assert!(z_min >= 0.2 && z_max <= 0.8, "z in vertex range");
        assert!(z_max - z_min > 0.1, "depth actually varies");
    }

    #[test]
    fn uv_gradient_matches_screen_step() {
        // UV runs 0→1 over 84 px horizontally: adjacent fragments differ
        // by ≈1/84 in u.
        let r = Rasterizer::new(32);
        let mut quads = Vec::new();
        r.rasterize_into(&full_tile_prim(), 0, 0, SCREEN, &mut quads);
        let q = &quads[0];
        let du = q.uv[1].x - q.uv[0].x;
        assert!((du - 1.0 / 84.0).abs() < 1e-4, "du = {du}");
    }

    #[test]
    fn helper_fragments_have_uvs() {
        let r = Rasterizer::new(32);
        let mut quads = Vec::new();
        let p = prim(Triangle2::new(
            Vec2::new(4.0, 4.0),
            Vec2::new(9.0, 4.0),
            Vec2::new(4.0, 9.0),
        ));
        r.rasterize_into(&p, 0, 0, SCREEN, &mut quads);
        let partial = quads
            .iter()
            .find(|q| q.mask != 0b1111)
            .expect("partial quad");
        // Even uncovered lanes carry finite UVs for derivative math.
        assert!(partial
            .uv
            .iter()
            .all(|u| u.x.is_finite() && u.y.is_finite()));
    }

    #[test]
    fn tile_rasterize_matches_per_prim_loop() {
        let r = Rasterizer::new(32);
        let prims = vec![
            full_tile_prim(),
            prim(Triangle2::new(
                Vec2::new(4.0, 4.0),
                Vec2::new(8.0, 4.0),
                Vec2::new(4.0, 8.0),
            )),
        ];
        let list = [0u32, 1];
        let mut by_tile = Vec::new();
        let stats = r.rasterize_tile_into(&prims, &list, 0, 0, SCREEN, &mut by_tile);
        let mut by_prim = Vec::new();
        for &pi in &list {
            r.rasterize_into(&prims[pi as usize], 0, 0, SCREEN, &mut by_prim);
        }
        assert_eq!(by_tile, by_prim, "same quads in the same program order");
        assert_eq!(stats.quads as usize, by_tile.len());
        assert_eq!(stats.covering_prims, 2);
        // A bin list whose prims miss the tile contributes nothing.
        let empty = r.rasterize_tile_into(
            &prims,
            &[0],
            96,
            96,
            Rect::new(0, 0, 128, 128),
            &mut by_tile,
        );
        assert_eq!(empty, TileRasterStats::default());
    }

    #[test]
    fn screen_clip_masks_offscreen_fragments() {
        let r = Rasterizer::new(32);
        let mut quads = Vec::new();
        // Covers pixels around the screen edge at x = 63.
        let p = full_tile_prim();
        r.rasterize_into(&p, 32, 32, Rect::new(0, 0, 63, 63), &mut quads);
        for q in &quads {
            for (i, (dx, dy)) in [(0, 0), (1, 0), (0, 1), (1, 1)].iter().enumerate() {
                let px = 32 + q.qx as i32 * 2 + dx;
                let py = 32 + q.qy as i32 * 2 + dy;
                if q.mask & (1 << i) != 0 {
                    assert!(px < 63 && py < 63, "covered fragment on screen");
                }
            }
        }
    }
}
