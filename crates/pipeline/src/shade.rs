//! The shader-core (fragment stage) timing model.
//!
//! The model is split into two halves so the fragment stage can run
//! one thread per shader core:
//!
//! * [`ShaderCore::trace_subtile`] simulates a subtile against *only*
//!   the core's private [`L1Lane`], recording the shared-L2 request
//!   stream and per-access hit flags — no shared state touched;
//! * [`ShaderCore::time_subtile`] replays the trace through the warp
//!   timing model once the shared L2 has produced the demand latencies.
//!
//! [`ShaderCore::run_subtile`] composes the two against a full
//! [`TextureHierarchy`] and is bit-identical to simulating the subtile
//! access-by-access: within a subtile only one core touches the
//! hierarchy, so deferring the L2 replay reorders nothing.

use crate::prim::Quad;
use dtexl_mem::{L1Lane, L2Request, LineAddr, TextureHierarchy};
use dtexl_texture::{Sampler, TextureDesc};

/// Per-run statistics of a shader core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShaderCoreStats {
    /// Quads (warps) executed.
    pub quads: u64,
    /// ALU instructions issued.
    pub alu_ops: u64,
    /// Texture sample instructions issued.
    pub tex_instructions: u64,
    /// Cache-line requests sent to the texture hierarchy.
    pub line_accesses: u64,
    /// Cycles the issue/fill port was occupied (useful work).
    pub busy_cycles: u64,
    /// Total cycles across the core's subtile batches (`busy +
    /// ramp/drain idle`). `busy_cycles / total_cycles` is the core's
    /// occupancy — the quantity §V-C2 argues is structurally low in
    /// TBR because every subtile boundary drains the warps.
    pub total_cycles: u64,
}

impl ShaderCoreStats {
    /// Fraction of cycles the core was doing useful work (0 when it
    /// never ran).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.total_cycles as f64
        }
    }
}

impl std::ops::AddAssign for ShaderCoreStats {
    fn add_assign(&mut self, rhs: Self) {
        self.quads += rhs.quads;
        self.alu_ops += rhs.alu_ops;
        self.tex_instructions += rhs.tex_instructions;
        self.line_accesses += rhs.line_accesses;
        self.busy_cycles += rhs.busy_cycles;
        self.total_cycles += rhs.total_cycles;
    }
}

/// Per-quad metadata the timing replay needs (the functional pass
/// already resolved the texture footprint).
#[derive(Debug, Clone, Copy)]
struct QuadTiming {
    /// Issue-port cycles the warp occupies.
    issue: u64,
    /// Dependent texture-sample groups the line accesses fold into.
    samples: usize,
    /// Number of line accesses the quad performed.
    accesses: usize,
}

/// One quad's pre-resolved shading input for
/// [`ShaderCore::trace_prepared`]: the shader-profile scalars plus the
/// quad's texture footprint, already computed (and cached) by the
/// schedule-independent frame prefix.
#[derive(Debug, Clone, Copy)]
pub struct PreparedQuad<'a> {
    /// Issue-port slots the warp occupies
    /// ([`ShaderProfile::issue_slots`](dtexl_scene::ShaderProfile::issue_slots)).
    pub issue: u32,
    /// ALU instructions the quad executes.
    pub alu_ops: u32,
    /// Texture sample instructions per fragment.
    pub tex_samples: u32,
    /// The quad's deduplicated cache-line footprint
    /// ([`Sampler::quad_footprint`]).
    pub lines: &'a [LineAddr],
}

/// L1-side trace of one subtile on one shader core, produced by
/// [`ShaderCore::trace_subtile`] and consumed by
/// [`ShaderCore::time_subtile`].
#[derive(Debug, Default)]
pub struct SubtileTrace {
    /// Shared-L2 requests in the order the serial simulator would
    /// issue them (demand misses interleaved with their prefetches).
    pub requests: Vec<L2Request>,
    /// `(tile index, SC lane)` stamp set by the parallel fragment
    /// stage; the serial replay debug-asserts the stream arrives
    /// tile-major, SC-ascending (the lock-order invariant the
    /// schedule-permutation harness exercises).
    pub(crate) origin: (usize, usize),
    /// Per-line-access L1 hit flags, flat in access order.
    hits: Vec<bool>,
    /// Per-quad replay metadata.
    quads: Vec<QuadTiming>,
    /// Functional statistics (the timing fields are filled in by the
    /// replay).
    stats: ShaderCoreStats,
}

impl SubtileTrace {
    /// Number of line accesses that hit the private L1 while tracing.
    #[must_use]
    pub fn l1_hits(&self) -> u64 {
        self.hits.iter().filter(|&&h| h).count() as u64
    }

    /// Number of line accesses that missed the private L1 (each one
    /// emitted a demand request into [`requests`](Self::requests)).
    #[must_use]
    pub fn l1_misses(&self) -> u64 {
        self.hits.len() as u64 - self.l1_hits()
    }
}

/// Warp-level shader-core model.
///
/// Each quad is a warp occupying one of `warp_slots` scheduler slots.
/// The core issues one instruction per cycle while any warp is ready; a
/// texture sample stalls its warp for the memory latency, which other
/// warps hide — unless occupancy is too low, which is precisely the
/// situation at subtile boundaries that makes TBR shader cores
/// "more susceptible to memory latency" (§V-C2).
///
/// A subtile is simulated as one batch starting from an empty core (the
/// barrier — coupled or decoupled — drains the core between subtiles).
#[derive(Debug, Clone, Copy)]
pub struct ShaderCore {
    warp_slots: usize,
    miss_fill_cycles: u32,
}

impl ShaderCore {
    /// Create a core with `warp_slots` warp slots and an L1-miss fill
    /// occupancy of `miss_fill_cycles` (the MSHR / fill-port throughput
    /// bound — see `PipelineConfig::l1_miss_fill_cycles`).
    ///
    /// # Panics
    ///
    /// Panics if `warp_slots` is zero.
    #[must_use]
    pub fn new(warp_slots: usize, miss_fill_cycles: u32) -> Self {
        assert!(warp_slots > 0, "need at least one warp slot");
        Self {
            warp_slots,
            miss_fill_cycles,
        }
    }

    /// Execute one subtile's quads on core `sc`, accessing textures
    /// through `hierarchy`. `textures[id]` must be the descriptor for
    /// texture `id`.
    ///
    /// Returns `(cycles, stats)` for the batch.
    ///
    /// # Panics
    ///
    /// Panics if a quad references a texture not present in `textures`.
    pub fn run_subtile(
        &self,
        sc: usize,
        quads: &[Quad],
        textures: &[TextureDesc],
        hierarchy: &mut TextureHierarchy,
    ) -> (u64, ShaderCoreStats) {
        let lane = hierarchy.lane_mut(sc);
        let l1_latency = lane.l1_latency();
        let trace = self.trace_subtile(quads, textures, lane);
        let latencies = hierarchy.replay_demand(&trace.requests);
        self.time_subtile(&trace, l1_latency, &latencies)
    }

    /// Simulate one subtile's quads against the core's private L1 only,
    /// recording the shared-L2 request stream. Safe to run concurrently
    /// with other lanes: no shared hierarchy state is touched.
    ///
    /// # Panics
    ///
    /// Panics if a quad references a texture not present in `textures`.
    pub fn trace_subtile(
        &self,
        quads: &[Quad],
        textures: &[TextureDesc],
        lane: &mut L1Lane,
    ) -> SubtileTrace {
        let mut trace = SubtileTrace::default();
        let mut lines: Vec<LineAddr> = Vec::with_capacity(16);
        for quad in quads {
            let tex = &textures[quad.texture as usize];
            debug_assert_eq!(tex.id(), quad.texture, "texture table must be id-indexed");
            let sampler = Sampler::new(quad.shader.filter);
            lines.clear();
            sampler.quad_footprint_into(tex, quad.uv, &mut lines);
            Self::trace_quad(
                &mut trace,
                lane,
                PreparedQuad {
                    issue: quad.shader.issue_slots(),
                    alu_ops: quad.shader.alu_ops,
                    tex_samples: quad.shader.tex_samples,
                    lines: &lines,
                },
            );
        }
        trace
    }

    /// Like [`trace_subtile`](Self::trace_subtile), but consuming quads
    /// whose texture footprints were already resolved (the cached frame
    /// prefix). Bit-identical to tracing the original quads: the
    /// footprint is a pure function of the quad's UVs, texture and
    /// filter, and the L1 walk below is the same code path.
    pub fn trace_prepared<'a, I>(&self, quads: I, lane: &mut L1Lane) -> SubtileTrace
    where
        I: IntoIterator<Item = PreparedQuad<'a>>,
    {
        let mut trace = SubtileTrace::default();
        for quad in quads {
            Self::trace_quad(&mut trace, lane, quad);
        }
        trace
    }

    /// Walk one quad's footprint through the private L1 and append its
    /// replay metadata — the shared inner loop of
    /// [`trace_subtile`](Self::trace_subtile) and
    /// [`trace_prepared`](Self::trace_prepared).
    fn trace_quad(trace: &mut SubtileTrace, lane: &mut L1Lane, quad: PreparedQuad<'_>) {
        for &line in quad.lines {
            let hit = lane.access(line, &mut trace.requests);
            trace.hits.push(hit);
        }
        trace.quads.push(QuadTiming {
            issue: u64::from(quad.issue),
            samples: quad.tex_samples.max(1) as usize,
            accesses: quad.lines.len(),
        });
        trace.stats.quads += 1;
        trace.stats.alu_ops += u64::from(quad.alu_ops);
        trace.stats.tex_instructions += u64::from(quad.tex_samples);
        trace.stats.line_accesses += quad.lines.len() as u64;
    }

    /// Replay a trace through the warp timing model. `demand_latencies`
    /// holds the below-L1 latency of each L1 miss, in trace order (from
    /// [`dtexl_mem::SharedL2::replay_demand`]); `l1_latency` is the
    /// lane's hit latency.
    ///
    /// Returns `(cycles, stats)` for the batch, exactly as the fused
    /// access-by-access simulation would.
    ///
    /// # Panics
    ///
    /// Panics if `demand_latencies` is shorter than the trace's miss
    /// count.
    pub fn time_subtile(
        &self,
        trace: &SubtileTrace,
        l1_latency: u32,
        demand_latencies: &[u32],
    ) -> (u64, ShaderCoreStats) {
        let mut slot_free = vec![0u64; self.warp_slots];
        let mut port = 0u64;
        let mut group_latency: Vec<u32> = Vec::with_capacity(4);
        let mut access = 0usize;
        let mut miss_idx = 0usize;

        for quad in &trace.quads {
            // The texture unit coalesces each sample's line fetches in
            // parallel; successive samples of a warp are dependent.
            // Round-robin the footprint over the sample instructions and
            // charge each sample the slowest of its lines.
            group_latency.clear();
            group_latency.resize(quad.samples, 0);
            let mut misses = 0u64;
            // Round-robin group index, kept as a wrapping counter: a
            // `i % samples` here is a hardware divide per line access.
            let mut g = 0usize;
            for _ in 0..quad.accesses {
                let latency = if trace.hits[access] {
                    l1_latency
                } else {
                    misses += 1;
                    let below = demand_latencies[miss_idx];
                    miss_idx += 1;
                    l1_latency + below
                };
                access += 1;
                group_latency[g] = group_latency[g].max(latency);
                g += 1;
                if g == quad.samples {
                    g = 0;
                }
            }
            let stall: u64 = group_latency.iter().map(|&l| u64::from(l)).sum();

            // Dispatch the warp on the earliest-free slot; the issue
            // port serializes instruction issue across warps, and each
            // L1 miss occupies the fill port — a throughput cost that
            // multithreading cannot hide.
            let (slot, &free) = slot_free
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                // lint: allow(no-panic) -- ShaderCore::new asserts warp_slots > 0, so the iterator is non-empty
                .expect("warp_slots > 0");
            let occupancy = quad.issue + misses * u64::from(self.miss_fill_cycles);
            let start = port.max(free);
            port = start + occupancy;
            slot_free[slot] = start + occupancy + stall;
        }
        debug_assert_eq!(
            miss_idx,
            demand_latencies.len(),
            "one replay latency per demand miss"
        );

        let drain = slot_free.iter().copied().max().unwrap_or(0);
        let cycles = port.max(drain);
        let mut stats = trace.stats;
        stats.busy_cycles = port;
        stats.total_cycles = cycles;
        (cycles, stats)
    }

    /// Fused serial form of [`trace_prepared`](Self::trace_prepared) →
    /// [`SharedL2::replay_demand`](dtexl_mem::SharedL2::replay_demand) →
    /// [`time_subtile`](Self::time_subtile), for the single-threaded
    /// fragment stage: every access goes through
    /// [`TextureHierarchy::access`] (a replay window of one, so the
    /// L2/DRAM see the identical request order and indices) and its
    /// latency is charged to the warp model inline. Bit-identical to
    /// the decoupled three-pass pipeline — the parallel-equivalence
    /// suite pins that — while skipping the trace and latency buffers
    /// entirely.
    pub fn run_subtile_fused<'a, I>(
        &self,
        sc: usize,
        quads: I,
        hierarchy: &mut TextureHierarchy,
    ) -> (u64, ShaderCoreStats)
    where
        I: IntoIterator<Item = PreparedQuad<'a>>,
    {
        let mut slot_free = vec![0u64; self.warp_slots];
        let mut port = 0u64;
        let mut group_latency: Vec<u32> = Vec::with_capacity(4);
        let mut stats = ShaderCoreStats::default();

        for quad in quads {
            let samples = quad.tex_samples.max(1) as usize;
            group_latency.clear();
            group_latency.resize(samples, 0);
            let mut misses = 0u64;
            // Same wrapping round-robin counter as `time_subtile`.
            let mut g = 0usize;
            for &line in quad.lines {
                let out = hierarchy.access(sc, line);
                if !out.l1_hit {
                    misses += 1;
                }
                group_latency[g] = group_latency[g].max(out.latency);
                g += 1;
                if g == samples {
                    g = 0;
                }
            }
            let stall: u64 = group_latency.iter().map(|&l| u64::from(l)).sum();

            let (slot, &free) = slot_free
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                // lint: allow(no-panic) -- ShaderCore::new asserts warp_slots > 0, so the iterator is non-empty
                .expect("warp_slots > 0");
            let occupancy = u64::from(quad.issue) + misses * u64::from(self.miss_fill_cycles);
            let start = port.max(free);
            port = start + occupancy;
            slot_free[slot] = start + occupancy + stall;

            stats.quads += 1;
            stats.alu_ops += u64::from(quad.alu_ops);
            stats.tex_instructions += u64::from(quad.tex_samples);
            stats.line_accesses += quad.lines.len() as u64;
        }

        let drain = slot_free.iter().copied().max().unwrap_or(0);
        let cycles = port.max(drain);
        stats.busy_cycles = port;
        stats.total_cycles = cycles;
        (cycles, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtexl_gmath::Vec2;
    use dtexl_mem::TextureHierarchyConfig;
    use dtexl_scene::ShaderProfile;

    fn textures() -> Vec<TextureDesc> {
        vec![TextureDesc::new(0, 256, 256, 0x1000_0000)]
    }

    fn quad_at(qx: u32, qy: u32) -> Quad {
        // UVs with a 1:1 texel:pixel mapping around the quad position.
        let uv = |px: f32, py: f32| Vec2::new(px / 256.0, py / 256.0);
        let x = qx as f32 * 2.0;
        let y = qy as f32 * 2.0;
        Quad {
            qx,
            qy,
            mask: 0b1111,
            z: [0.5; 4],
            uv: [
                uv(x, y),
                uv(x + 1.0, y),
                uv(x, y + 1.0),
                uv(x + 1.0, y + 1.0),
            ],
            texture: 0,
            shader: ShaderProfile::standard(),
            opaque: true,
            late_z: false,
        }
    }

    fn hierarchy() -> TextureHierarchy {
        TextureHierarchy::new(TextureHierarchyConfig::default())
    }

    #[test]
    fn empty_subtile_is_free() {
        let core = ShaderCore::new(16, 0);
        let mut h = hierarchy();
        let (cycles, stats) = core.run_subtile(0, &[], &textures(), &mut h);
        assert_eq!(cycles, 0);
        assert_eq!(stats, ShaderCoreStats::default());
    }

    #[test]
    fn single_quad_pays_full_latency() {
        let core = ShaderCore::new(16, 0);
        let mut h = hierarchy();
        let (cycles, stats) = core.run_subtile(0, &[quad_at(0, 0)], &textures(), &mut h);
        // One warp: issue + cold-miss stall, nothing to hide it.
        assert!(cycles > 60, "cold miss visible, got {cycles}");
        assert_eq!(stats.quads, 1);
        assert!(stats.line_accesses >= 1);
    }

    #[test]
    fn multithreading_hides_latency() {
        let tex = textures();
        // 64 quads with disjoint footprints: all cold misses.
        let quads: Vec<Quad> = (0..64)
            .map(|i| quad_at((i % 16) * 4, (i / 16) * 4))
            .collect();

        let run = |slots: usize| {
            let core = ShaderCore::new(slots, 0);
            let mut h = hierarchy();
            core.run_subtile(0, &quads, &tex, &mut h).0
        };
        let serial = run(1);
        let threaded = run(16);
        assert!(
            threaded * 2 < serial,
            "16 warps ({threaded}) must hide most of the serial latency ({serial})"
        );
    }

    #[test]
    fn cache_hits_speed_up_the_batch() {
        let tex = textures();
        let core = ShaderCore::new(4, 0);
        // Same quad repeated: after the first, all L1 hits.
        let quads = vec![quad_at(3, 3); 32];
        let mut h = hierarchy();
        let (warm, _) = core.run_subtile(0, &quads, &tex, &mut h);

        // Disjoint quads: every one cold-misses.
        let cold_quads: Vec<Quad> = (0..32)
            .map(|i| quad_at((i * 5) % 64, (i / 8) * 8))
            .collect();
        let mut h2 = hierarchy();
        let (cold, _) = core.run_subtile(0, &cold_quads, &tex, &mut h2);
        assert!(warm < cold, "hits {warm} must beat misses {cold}");
    }

    #[test]
    fn issue_port_bounds_throughput() {
        let tex = textures();
        let core = ShaderCore::new(64, 0);
        let quads = vec![quad_at(0, 0); 100];
        let mut h = hierarchy();
        let (cycles, stats) = core.run_subtile(0, &quads, &tex, &mut h);
        let issue_total: u64 = stats.alu_ops + stats.tex_instructions;
        assert!(cycles >= issue_total, "can't beat the issue port");
        // With full hits after warm-up, should be close to issue-bound.
        assert!(cycles < issue_total + 200);
    }

    #[test]
    fn stats_accumulate_per_quad() {
        let tex = textures();
        let core = ShaderCore::new(8, 0);
        let mut h = hierarchy();
        let (_c, stats) = core.run_subtile(0, &[quad_at(0, 0), quad_at(1, 0)], &tex, &mut h);
        assert_eq!(stats.quads, 2);
        assert_eq!(
            stats.alu_ops,
            2 * u64::from(ShaderProfile::standard().alu_ops)
        );
    }

    #[test]
    fn occupancy_falls_with_small_batches() {
        // §V-C2: subtile boundaries drain the warps, so smaller
        // batches mean lower occupancy on the same workload.
        let tex = textures();
        let core = ShaderCore::new(12, 0);
        let quads: Vec<Quad> = (0..64)
            .map(|i| quad_at((i % 16) * 3, (i / 16) * 5))
            .collect();
        // One large batch.
        let mut h = hierarchy();
        let (_c, big) = core.run_subtile(0, &quads, &tex, &mut h);
        // The same quads in 16 small batches (fresh hierarchy so the
        // miss pattern is comparable).
        let mut h2 = hierarchy();
        let mut small = ShaderCoreStats::default();
        for chunk in quads.chunks(4) {
            let (_c, s) = core.run_subtile(0, chunk, &tex, &mut h2);
            small += s;
        }
        assert!(
            small.occupancy() < big.occupancy(),
            "small batches {:.3} must be below large batches {:.3}",
            small.occupancy(),
            big.occupancy()
        );
        assert!(big.occupancy() <= 1.0 && small.occupancy() > 0.0);
    }

    #[test]
    fn manual_trace_replay_matches_run_subtile() {
        // Drive the split API the way the parallel frame loop does —
        // trace on a detached lane, replay into the shared L2, time —
        // and compare to the fused entry point.
        let tex = textures();
        let core = ShaderCore::new(8, 10);
        let quads: Vec<Quad> = (0..48)
            .map(|i| quad_at((i % 12) * 3, (i / 12) * 5))
            .collect();

        let mut fused = hierarchy();
        let (want_cycles, want_stats) = core.run_subtile(2, &quads, &tex, &mut fused);

        let (cfg, mut lanes, mut shared) = hierarchy().split();
        let l1_latency = lanes[2].l1_latency();
        let trace = core.trace_subtile(&quads, &tex, &mut lanes[2]);
        let latencies = shared.replay_demand(&trace.requests);
        let (cycles, stats) = core.time_subtile(&trace, l1_latency, &latencies);
        assert_eq!(cycles, want_cycles);
        assert_eq!(stats, want_stats);
        let split = dtexl_mem::TextureHierarchy::join(cfg, lanes, shared);
        assert_eq!(split.stats(), fused.stats());
    }

    #[test]
    fn heavy_shader_takes_longer() {
        let tex = textures();
        let core = ShaderCore::new(8, 0);
        let mk = |profile: ShaderProfile| {
            let mut q = quad_at(0, 0);
            q.shader = profile;
            vec![q; 32]
        };
        let mut h1 = hierarchy();
        let (light, _) = core.run_subtile(0, &mk(ShaderProfile::simple()), &tex, &mut h1);
        let mut h2 = hierarchy();
        let (heavy, _) = core.run_subtile(0, &mk(ShaderProfile::heavy()), &tex, &mut h2);
        assert!(heavy > light);
    }
}
