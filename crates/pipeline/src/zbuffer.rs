//! The tile-sized depth buffer and Early-Z test.

use crate::prim::Quad;

/// The on-chip, tile-sized Z-buffer (Fig. 3).
///
/// The buffer is four-banked in hardware (one bank per parallel
/// pipeline); banking only affects timing, which the frame composer
/// models, so the functional buffer here is a flat tile.
///
/// # Examples
///
/// ```
/// use dtexl_pipeline::ZBuffer;
/// let mut zb = ZBuffer::new(32);
/// assert_eq!(zb.depth_at(0, 0), 1.0, "cleared to far");
/// ```
#[derive(Debug, Clone)]
pub struct ZBuffer {
    tile_size: u32,
    depth: Vec<f32>,
}

impl ZBuffer {
    /// Create a buffer for `tile_size`-pixel tiles, cleared to far.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` is zero or odd.
    #[must_use]
    pub fn new(tile_size: u32) -> Self {
        assert!(tile_size > 0 && tile_size.is_multiple_of(2));
        Self {
            tile_size,
            depth: vec![1.0; (tile_size * tile_size) as usize],
        }
    }

    /// Reset to the far plane for the next tile.
    pub fn clear(&mut self) {
        self.depth.fill(1.0);
    }

    /// Depth currently stored at tile-local pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the tile.
    #[must_use]
    pub fn depth_at(&self, x: u32, y: u32) -> f32 {
        assert!(x < self.tile_size && y < self.tile_size);
        self.depth[(y * self.tile_size + x) as usize]
    }

    /// Early-Z test `quad` against the buffer: fragments at or behind
    /// the stored depth are killed; surviving opaque fragments update
    /// the buffer. Returns the surviving mask.
    pub fn test_and_update(&mut self, quad: &Quad) -> u8 {
        let mut out_mask = 0u8;
        for (i, (dx, dy)) in [(0u32, 0u32), (1, 0), (0, 1), (1, 1)].iter().enumerate() {
            if quad.mask & (1 << i) == 0 {
                continue;
            }
            let x = quad.qx * 2 + dx;
            let y = quad.qy * 2 + dy;
            let idx = (y * self.tile_size + x) as usize;
            if quad.z[i] < self.depth[idx] {
                out_mask |= 1 << i;
                if quad.opaque {
                    self.depth[idx] = quad.z[i];
                }
            }
        }
        out_mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtexl_gmath::Vec2;
    use dtexl_scene::ShaderProfile;

    fn quad(qx: u32, qy: u32, z: f32, opaque: bool) -> Quad {
        Quad {
            qx,
            qy,
            mask: 0b1111,
            z: [z; 4],
            uv: [Vec2::ZERO; 4],
            texture: 0,
            shader: ShaderProfile::simple(),
            opaque,
            late_z: false,
        }
    }

    #[test]
    fn first_fragment_always_passes() {
        let mut zb = ZBuffer::new(32);
        assert_eq!(zb.test_and_update(&quad(0, 0, 0.5, true)), 0b1111);
        assert_eq!(zb.depth_at(0, 0), 0.5);
    }

    #[test]
    fn occluded_fragment_is_killed() {
        let mut zb = ZBuffer::new(32);
        zb.test_and_update(&quad(3, 3, 0.3, true));
        assert_eq!(zb.test_and_update(&quad(3, 3, 0.6, true)), 0);
        // Front-to-back order kills overdraw; back-to-front does not.
        assert_eq!(zb.test_and_update(&quad(3, 3, 0.1, true)), 0b1111);
    }

    #[test]
    fn transparent_tests_but_does_not_write() {
        let mut zb = ZBuffer::new(32);
        assert_eq!(zb.test_and_update(&quad(1, 1, 0.5, false)), 0b1111);
        assert_eq!(zb.depth_at(2, 2), 1.0, "no depth write");
        // A later fragment behind the blend still passes (only opaque
        // geometry occludes).
        assert_eq!(zb.test_and_update(&quad(1, 1, 0.8, true)), 0b1111);
    }

    #[test]
    fn partial_masks_respected() {
        let mut zb = ZBuffer::new(32);
        let mut q = quad(0, 0, 0.5, true);
        q.mask = 0b0101;
        assert_eq!(zb.test_and_update(&q), 0b0101);
        assert_eq!(zb.depth_at(0, 0), 0.5);
        assert_eq!(zb.depth_at(1, 0), 1.0, "masked lane untouched");
    }

    #[test]
    fn clear_resets_to_far() {
        let mut zb = ZBuffer::new(32);
        zb.test_and_update(&quad(0, 0, 0.2, true));
        zb.clear();
        assert_eq!(zb.depth_at(0, 0), 1.0);
        assert_eq!(zb.test_and_update(&quad(0, 0, 0.9, true)), 0b1111);
    }

    #[test]
    fn per_fragment_depths() {
        let mut zb = ZBuffer::new(32);
        let mut front = quad(0, 0, 0.0, true);
        front.z = [0.1, 0.9, 0.1, 0.9];
        zb.test_and_update(&front);
        let probe = quad(0, 0, 0.5, true);
        // Lanes 1 and 3 had depth 0.9 → 0.5 passes there only.
        assert_eq!(zb.test_and_update(&probe), 0b1010);
    }
}
