//! A cycle-stepped reference shader-core model.
//!
//! [`ShaderCore`](crate::ShaderCore) is an event-driven approximation
//! tuned for speed (it dispatches whole warps greedily). This module
//! implements the same microarchitecture — W warp slots, one issue
//! port, one L1 fill port — as an explicit cycle-by-cycle simulation
//! with round-robin warp scheduling and per-instruction interleaving.
//!
//! It is **validation infrastructure**: the test suite drives both
//! models with identical per-quad costs and asserts they agree within
//! a tight envelope and order workloads identically. It is not used in
//! the figure pipeline (it is ~an order of magnitude slower).

use crate::prim::Quad;
use dtexl_mem::TextureHierarchy;
use dtexl_texture::{Sampler, TextureDesc};

/// Per-sample cost of a quad: the blocking latency and the number of
/// L1 fills it triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleCost {
    /// Cycles the issuing warp waits for this sample.
    pub stall: u32,
    /// L1 misses the sample's footprint produced.
    pub misses: u32,
}

/// Precompute per-quad sample costs by walking the hierarchy in stream
/// order — the shared input for both shader-core models.
pub fn sample_costs(
    sc: usize,
    quads: &[Quad],
    textures: &[TextureDesc],
    hierarchy: &mut TextureHierarchy,
) -> Vec<Vec<SampleCost>> {
    quads
        .iter()
        .map(|quad| {
            let tex = &textures[quad.texture as usize];
            let sampler = Sampler::new(quad.shader.filter);
            let lines = sampler.quad_footprint(tex, quad.uv);
            let samples = quad.shader.tex_samples.max(1) as usize;
            let mut costs = vec![
                SampleCost {
                    stall: 0,
                    misses: 0
                };
                samples
            ];
            for (i, &line) in lines.iter().enumerate() {
                let res = hierarchy.access(sc, line);
                let g = i % samples;
                costs[g].stall = costs[g].stall.max(res.latency);
                if !res.l1_hit {
                    costs[g].misses += 1;
                }
            }
            costs
        })
        .collect()
}

/// The cycle-stepped reference core.
#[derive(Debug, Clone, Copy)]
pub struct DetailedShaderCore {
    warp_slots: usize,
    miss_fill_cycles: u32,
}

#[derive(Debug, Clone)]
struct Warp {
    /// Remaining ALU instructions before the next texture sample.
    alu_left: u32,
    /// Pending samples, front first.
    samples: std::collections::VecDeque<SampleCost>,
    /// ALU instructions to run after the last sample (tail math).
    ready_at: u64,
}

impl DetailedShaderCore {
    /// Create the reference core.
    ///
    /// # Panics
    ///
    /// Panics if `warp_slots` is zero.
    #[must_use]
    pub fn new(warp_slots: usize, miss_fill_cycles: u32) -> Self {
        assert!(warp_slots > 0);
        Self {
            warp_slots,
            miss_fill_cycles,
        }
    }

    /// Execute one subtile given precomputed per-quad costs; returns
    /// total cycles.
    ///
    /// # Panics
    ///
    /// Panics if `costs.len() != quads.len()`.
    #[must_use]
    pub fn run_subtile(&self, quads: &[Quad], costs: &[Vec<SampleCost>]) -> u64 {
        assert_eq!(quads.len(), costs.len());
        if quads.is_empty() {
            return 0;
        }
        let mut next_quad = 0usize;
        let mut slots: Vec<Option<Warp>> = vec![None; self.warp_slots];
        let mut cycle: u64 = 0;
        let mut fill_free: u64 = 0;
        let mut rr = 0usize; // round-robin pointer

        loop {
            // Fill empty slots with pending quads (one per cycle per
            // slot is unnecessarily strict; hardware decodes several —
            // fill all).
            for slot in slots.iter_mut() {
                if slot.is_none() && next_quad < quads.len() {
                    let q = &quads[next_quad];
                    *slot = Some(Warp {
                        alu_left: q.shader.alu_ops,
                        samples: costs[next_quad].iter().copied().collect(),
                        ready_at: cycle,
                    });
                    next_quad += 1;
                }
            }

            // Issue one instruction from the next ready warp
            // (round-robin).
            let mut issued = false;
            for off in 0..self.warp_slots {
                let idx = (rr + off) % self.warp_slots;
                let Some(w) = &mut slots[idx] else { continue };
                if w.ready_at > cycle {
                    continue;
                }
                if w.alu_left > 0 {
                    w.alu_left -= 1;
                } else if let Some(s) = w.samples.pop_front() {
                    // The sample's fills serialize on the fill port.
                    let fills = u64::from(s.misses) * u64::from(self.miss_fill_cycles);
                    fill_free = fill_free.max(cycle) + fills;
                    w.ready_at = fill_free + u64::from(s.stall);
                }
                // Warp done?
                let done = slots[idx].as_ref().is_some_and(|w| {
                    w.alu_left == 0 && w.samples.is_empty() && w.ready_at <= cycle
                });
                if done {
                    slots[idx] = None;
                }
                rr = (idx + 1) % self.warp_slots;
                issued = true;
                break;
            }

            // Retire warps that finished waiting with nothing left.
            for slot in slots.iter_mut() {
                if slot
                    .as_ref()
                    .is_some_and(|w| w.alu_left == 0 && w.samples.is_empty() && w.ready_at <= cycle)
                {
                    *slot = None;
                }
            }

            if next_quad >= quads.len() && slots.iter().all(Option::is_none) {
                return cycle.max(1);
            }
            if !issued {
                // Idle: jump to the next wake-up to keep this fast.
                let wake = slots
                    .iter()
                    .flatten()
                    .map(|w| w.ready_at)
                    .filter(|&t| t > cycle)
                    .min();
                cycle = wake.unwrap_or(cycle + 1);
            } else {
                cycle += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shade::ShaderCore;
    use dtexl_gmath::Vec2;
    use dtexl_mem::TextureHierarchyConfig;
    use dtexl_scene::ShaderProfile;

    fn textures() -> Vec<TextureDesc> {
        vec![TextureDesc::new(0, 256, 256, 0x1000_0000)]
    }

    fn quad_at(qx: u32, qy: u32, shader: ShaderProfile) -> Quad {
        let uv = |px: f32, py: f32| Vec2::new(px / 256.0, py / 256.0);
        let x = qx as f32 * 2.0;
        let y = qy as f32 * 2.0;
        Quad {
            qx,
            qy,
            mask: 0b1111,
            z: [0.5; 4],
            uv: [
                uv(x, y),
                uv(x + 1.0, y),
                uv(x, y + 1.0),
                uv(x + 1.0, y + 1.0),
            ],
            texture: 0,
            shader,
            opaque: true,
            late_z: false,
        }
    }

    fn batch(n: u32, shader: ShaderProfile) -> Vec<Quad> {
        (0..n)
            .map(|i| quad_at((i * 3) % 16, (i / 4) % 16, shader))
            .collect()
    }

    /// Both models, fed identical costs, agree within a tight envelope
    /// across workload shapes and always rank workloads identically.
    #[test]
    fn fast_model_tracks_detailed_model() {
        let tex = textures();
        let shapes: Vec<(usize, Vec<Quad>)> = vec![
            (12, batch(4, ShaderProfile::simple())),
            (12, batch(64, ShaderProfile::standard())),
            (12, batch(64, ShaderProfile::texture_rich())),
            (4, batch(48, ShaderProfile::heavy())),
            (1, batch(16, ShaderProfile::standard())),
        ];
        let mut fast_times = Vec::new();
        let mut detailed_times = Vec::new();
        for (slots, quads) in &shapes {
            // Identical cost inputs for both models.
            let mut h1 = TextureHierarchy::new(TextureHierarchyConfig::default());
            let costs = sample_costs(0, quads, &tex, &mut h1);
            let detailed = DetailedShaderCore::new(*slots, 10).run_subtile(quads, &costs);

            let mut h2 = TextureHierarchy::new(TextureHierarchyConfig::default());
            let (fast, _) = ShaderCore::new(*slots, 10).run_subtile(0, quads, &tex, &mut h2);

            // The fast model serializes fill-port work with the issue
            // port (conservative); the detailed model gives fills their
            // own port, so fill-heavy batches run up to ~1.5x faster
            // there. The envelope reflects that known, one-sided bias.
            let ratio = fast as f64 / detailed as f64;
            assert!(
                (0.6..1.6).contains(&ratio),
                "models diverge: fast {fast} vs detailed {detailed} (slots {slots}, {} quads)",
                quads.len()
            );
            fast_times.push(fast);
            detailed_times.push(detailed);
        }
        // Same ordering of the first three (same slots, increasing
        // texture intensity).
        assert!(fast_times[0] < fast_times[1] && fast_times[1] < fast_times[2]);
        assert!(detailed_times[0] < detailed_times[1] && detailed_times[1] < detailed_times[2]);
    }

    #[test]
    fn empty_batch_is_free() {
        let core = DetailedShaderCore::new(8, 10);
        assert_eq!(core.run_subtile(&[], &[]), 0);
    }

    #[test]
    fn detailed_model_hides_latency_with_warps() {
        let tex = textures();
        let quads = batch(64, ShaderProfile::standard());
        let run = |slots: usize| {
            let mut h = TextureHierarchy::new(TextureHierarchyConfig::default());
            let costs = sample_costs(0, &quads, &tex, &mut h);
            DetailedShaderCore::new(slots, 0).run_subtile(&quads, &costs)
        };
        let serial = run(1);
        let threaded = run(16);
        assert!(
            threaded * 2 < serial,
            "multithreading must hide latency: {threaded} vs {serial}"
        );
    }

    #[test]
    fn fill_port_bounds_throughput_in_both_models() {
        // With a huge fill cost, both models become fill-bound and land
        // close to misses × fill.
        let tex = textures();
        let quads = batch(32, ShaderProfile::standard());
        let mut h1 = TextureHierarchy::new(TextureHierarchyConfig::default());
        let costs = sample_costs(0, &quads, &tex, &mut h1);
        let total_misses: u64 = costs.iter().flatten().map(|c| u64::from(c.misses)).sum();
        let fill = 50u32;
        let detailed = DetailedShaderCore::new(12, fill).run_subtile(&quads, &costs);
        assert!(
            detailed >= total_misses * u64::from(fill),
            "fill port is a hard bound: {detailed} vs {}",
            total_misses * u64::from(fill)
        );
    }
}
