//! The tiling engine: polygon list builder, parameter buffer and tile
//! fetcher cost model.

use crate::prim::RasterPrim;
use dtexl_gmath::Rect;
use dtexl_mem::{line_of, CacheConfig, CacheStats, SetAssocCache};
use dtexl_scene::PARAMETER_BUFFER_BASE_ADDR;

/// Bytes one primitive-ID entry occupies in a per-tile list.
const ENTRY_BYTES: u64 = 4;
/// Bytes the shared attribute record of one primitive occupies in the
/// parameter buffer (positions, depths, UVs, state).
const ATTR_BYTES: u64 = 96;

/// Statistics of the tiling engine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TilingStats {
    /// Total (tile, primitive) pairs binned.
    pub entries: u64,
    /// Tile-cache behavior (parameter-buffer traffic).
    pub tile_cache: CacheStats,
    /// Cycles spent building the polygon lists.
    pub build_cycles: u64,
}

/// Per-tile primitive lists (the per-frame parameter buffer contents).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TileBins {
    tiles_w: u32,
    tiles_h: u32,
    /// `lists[ty * tiles_w + tx]` = indices into the primitive array.
    lists: Vec<Vec<u32>>,
    /// Engine statistics.
    pub stats: TilingStats,
}

impl TileBins {
    /// Frame width in tiles.
    #[must_use]
    pub fn tiles_w(&self) -> u32 {
        self.tiles_w
    }

    /// Frame height in tiles.
    #[must_use]
    pub fn tiles_h(&self) -> u32 {
        self.tiles_h
    }

    /// Primitive indices overlapping tile `(tx, ty)`, in program order.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn list(&self, tx: u32, ty: u32) -> &[u32] {
        assert!(tx < self.tiles_w && ty < self.tiles_h);
        &self.lists[(ty * self.tiles_w + tx) as usize]
    }

    /// Total binned entries.
    #[must_use]
    pub fn total_entries(&self) -> u64 {
        self.stats.entries
    }
}

/// The tiling engine (Polygon List Builder + Tile Fetcher cost model).
#[derive(Debug)]
pub struct TilingEngine {
    tile_cache: SetAssocCache,
    tile_size: u32,
}

impl TilingEngine {
    /// Create the engine.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` is zero.
    #[must_use]
    pub fn new(tile_cache: CacheConfig, tile_size: u32) -> Self {
        assert!(tile_size > 0);
        Self {
            tile_cache: SetAssocCache::new(tile_cache),
            tile_size,
        }
    }

    /// Bin `prims` into per-tile lists for a `width × height` frame.
    #[must_use]
    pub fn bin(&mut self, prims: &[RasterPrim], width: u32, height: u32) -> TileBins {
        let ts = self.tile_size;
        let tiles_w = width.div_ceil(ts);
        let tiles_h = height.div_ceil(ts);
        let screen = Rect::new(0, 0, width as i32, height as i32);
        let mut lists = vec![Vec::new(); (tiles_w * tiles_h) as usize];
        let mut entries = 0u64;
        let mut miss_latency = 0u64;
        let mut attr_cursor = PARAMETER_BUFFER_BASE_ADDR;
        let mut entry_cursor = PARAMETER_BUFFER_BASE_ADDR + 0x0100_0000;

        for (i, p) in prims.iter().enumerate() {
            // Write the shared attribute record once per primitive.
            for off in (0..ATTR_BYTES).step_by(64) {
                if !self.tile_cache.access(line_of(attr_cursor + off)).hit {
                    miss_latency += 12;
                }
            }
            attr_cursor += ATTR_BYTES;

            let b = p.bounds(screen);
            if b.is_empty() {
                continue;
            }
            let tx0 = b.x0 as u32 / ts;
            let ty0 = b.y0 as u32 / ts;
            let tx1 = (b.x1 as u32 - 1) / ts;
            let ty1 = (b.y1 as u32 - 1) / ts;
            for ty in ty0..=ty1 {
                for tx in tx0..=tx1 {
                    // Conservative bbox binning, as real polygon list
                    // builders do at this stage.
                    lists[(ty * tiles_w + tx) as usize].push(i as u32);
                    entries += 1;
                    if !self.tile_cache.access(line_of(entry_cursor)).hit {
                        miss_latency += 12;
                    }
                    entry_cursor += ENTRY_BYTES;
                }
            }
        }

        TileBins {
            tiles_w,
            tiles_h,
            lists,
            stats: TilingStats {
                entries,
                tile_cache: *self.tile_cache.stats(),
                // One cycle per entry plus amortized miss latency.
                build_cycles: entries + prims.len() as u64 + miss_latency / 4,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtexl_gmath::{Triangle2, Vec2};
    use dtexl_scene::{DepthMode, ShaderProfile};

    fn prim(x0: f32, y0: f32, x1: f32, y1: f32) -> RasterPrim {
        RasterPrim {
            tri: Triangle2::new(Vec2::new(x0, y0), Vec2::new(x1, y0), Vec2::new(x0, y1)),
            z: [0.5; 3],
            w: [1.0; 3],
            uv: [Vec2::ZERO; 3],
            texture: 0,
            shader: ShaderProfile::simple(),
            opaque: true,
            uv_scale: 1.0,
            depth_mode: DepthMode::Early,
            draw_index: 0,
        }
    }

    fn engine() -> TilingEngine {
        TilingEngine::new(CacheConfig::tile_cache(), 32)
    }

    #[test]
    fn single_tile_prim_binned_once() {
        let bins = engine().bin(&[prim(2.0, 2.0, 20.0, 20.0)], 128, 64);
        assert_eq!(bins.tiles_w(), 4);
        assert_eq!(bins.tiles_h(), 2);
        assert_eq!(bins.list(0, 0), &[0]);
        assert_eq!(bins.total_entries(), 1);
        for ty in 0..2 {
            for tx in 0..4 {
                if (tx, ty) != (0, 0) {
                    assert!(bins.list(tx, ty).is_empty());
                }
            }
        }
    }

    #[test]
    fn spanning_prim_lands_in_all_overlapped_tiles() {
        let bins = engine().bin(&[prim(10.0, 10.0, 100.0, 40.0)], 128, 64);
        // bbox covers tiles x 0..3, y 0..1
        assert_eq!(bins.total_entries(), 8);
        assert_eq!(bins.list(3, 1), &[0]);
    }

    #[test]
    fn program_order_preserved_per_tile() {
        let prims = vec![
            prim(0.0, 0.0, 30.0, 30.0),
            prim(5.0, 5.0, 25.0, 25.0),
            prim(1.0, 1.0, 10.0, 10.0),
        ];
        let bins = engine().bin(&prims, 32, 32);
        assert_eq!(bins.list(0, 0), &[0, 1, 2]);
    }

    #[test]
    fn offscreen_prim_not_binned() {
        let bins = engine().bin(&[prim(500.0, 500.0, 600.0, 600.0)], 128, 64);
        assert_eq!(bins.total_entries(), 0);
    }

    #[test]
    fn partial_edge_tiles_work() {
        // 70×40 frame → 3×2 tiles with ragged edges.
        let bins = engine().bin(&[prim(60.0, 30.0, 69.0, 39.0)], 70, 40);
        assert_eq!(bins.tiles_w(), 3);
        assert_eq!(bins.list(2, 1), &[0]);
    }

    #[test]
    fn stats_accumulate() {
        let prims = vec![prim(0.0, 0.0, 64.0, 64.0); 10];
        let bins = engine().bin(&prims, 64, 64);
        assert_eq!(bins.total_entries(), 40, "10 prims × 4 tiles");
        assert!(bins.stats.tile_cache.accesses > 0);
        assert!(bins.stats.build_cycles >= bins.total_entries());
    }
}
