//! The schedule-independent frame prefix.
//!
//! A sweep simulates each (game, resolution) scene once per schedule
//! leg (FG/CG) even though most of the functional pass does not depend
//! on the schedule at all. [`FramePrefix::build`] captures exactly that
//! schedule-independent prefix — geometry, tile binning, per-tile
//! rasterization, early-Z and the per-quad texture footprints — in
//! flat, index-addressed arenas, so [`crate::FrameSim`] can re-run only
//! the schedule-*dependent* remainder (quad→SC partitioning, the L1
//! lane walks, the shared-L2 replay and the warp timing) per leg.
//!
//! What makes each piece schedule-independent:
//!
//! * geometry and binning run before any tile ordering exists;
//! * rasterization and early-Z are per-tile: the depth buffer is
//!   cleared at every tile start, so a tile's survivor set and final
//!   shade masks are the same whatever order a schedule visits tiles
//!   in (the prefix walks them row-major);
//! * a quad's texture footprint ([`Sampler::quad_footprint`]) is a
//!   pure function of its UVs, texture and filter.
//!
//! Everything else — which SC a quad lands on, each L1 lane's hit/miss
//! history, the DRAM latencies (hashed from the *global* request
//! index) and the warp-model timing — changes with the schedule and is
//! recomputed per leg from these arenas.

use crate::config::PipelineConfig;
use crate::error::SimError;
use crate::geometry::{GeometryPipeline, GeometryStats};
use crate::prim::Quad;
use crate::raster::Rasterizer;
use crate::shade::PreparedQuad;
use crate::tiling::{TilingEngine, TilingStats};
use crate::zbuffer::ZBuffer;
use dtexl_gmath::Rect;
use dtexl_mem::LineAddr;
use dtexl_scene::Scene;
use dtexl_texture::{Sampler, TextureDesc};

/// A post-early-Z survivor quad, reduced to what the fragment stage
/// actually consumes: its position (for the schedule's quad→SC
/// partition), its shader-profile scalars and its footprint range in
/// the line arena. Roughly a third the size of a full [`Quad`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrepQuad {
    /// Quad x position in screen quads.
    pub(crate) qx: u32,
    /// Quad y position in screen quads.
    pub(crate) qy: u32,
    /// Issue-port slots (`shader.issue_slots()`).
    pub(crate) issue: u32,
    /// ALU instructions.
    pub(crate) alu_ops: u32,
    /// Texture sample instructions.
    pub(crate) tex_samples: u32,
    /// `lines.0..lines.1` range in [`FramePrefix::lines`].
    pub(crate) lines: (u32, u32),
}

/// Per-tile slice of the prefix arenas. Tile coordinates are implicit:
/// [`FramePrefix::tiles`] is row-major.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TilePrefix {
    /// Binned primitive-list length (the raster probe's `prims`).
    pub(crate) prims: u32,
    /// Rasterizer-emitted quad count (the raster probe's `quads`).
    pub(crate) raster_quads: u32,
    /// Range of this tile's rasterized quads in
    /// [`FramePrefix::rast_pos`], submission order.
    pub(crate) rast: (u32, u32),
    /// Range of this tile's early-Z survivors in
    /// [`FramePrefix::quads`], submission order.
    pub(crate) surv: (u32, u32),
    /// Tile-fetcher cycles.
    pub(crate) fetch: u64,
    /// Rasterizer cycles.
    pub(crate) raster_cycles: u64,
}

/// The schedule-independent prefix of one frame simulation, computed
/// once by [`build`](Self::build) and shared (immutably, e.g. behind an
/// `Arc`) across every schedule leg that [`crate::FrameSim`] runs over
/// the same (scene, resolution, config) triple.
#[derive(Debug)]
pub struct FramePrefix {
    /// The configuration the prefix was built under, with `threads`
    /// normalized to 1 — thread count is metric-invariant, so legs may
    /// differ in it; everything else must match exactly.
    pub(crate) config: PipelineConfig,
    /// Screen width in pixels.
    pub(crate) width: u32,
    /// Screen height in pixels.
    pub(crate) height: u32,
    /// Texture table, dense by id (validated by `build`).
    pub(crate) textures: Vec<TextureDesc>,
    /// Geometry-phase statistics.
    pub(crate) geometry: GeometryStats,
    /// Tiling-engine statistics.
    pub(crate) tiling: TilingStats,
    /// Frame width in tiles.
    pub(crate) tiles_w: u32,
    /// Frame height in tiles.
    pub(crate) tiles_h: u32,
    /// Per-tile arena slices, row-major (`ty * tiles_w + tx`).
    pub(crate) tiles: Vec<TilePrefix>,
    /// `(qx, qy)` of every rasterized quad (pre early-Z) — the
    /// schedule partitions these to count `quads_rasterized` per SC.
    pub(crate) rast_pos: Vec<(u32, u32)>,
    /// Early-Z survivor arena.
    pub(crate) quads: Vec<PrepQuad>,
    /// Flat texture-footprint arena ([`Sampler::quad_footprint`]
    /// output, back to back).
    pub(crate) lines: Vec<LineAddr>,
}

impl FramePrefix {
    /// Run the schedule-independent half of the functional pass:
    /// geometry, binning, then per tile (row-major) rasterization,
    /// early-Z and footprint resolution into flat arenas.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the configuration or scene is
    /// invalid, exactly as [`crate::FrameSim::try_run_with_resolution`]
    /// would.
    pub fn build(
        scene: &Scene,
        config: &PipelineConfig,
        width: u32,
        height: u32,
    ) -> Result<Self, SimError> {
        config.validate()?;
        scene.validate().map_err(SimError::Scene)?;

        // Texture table indexed by id.
        let textures: Vec<TextureDesc> = scene.textures.clone();
        for (i, t) in textures.iter().enumerate() {
            if t.id() as usize != i {
                return Err(SimError::SparseTextureIds {
                    index: i,
                    id: t.id(),
                });
            }
        }

        // 1. Geometry phase.
        let mut geom = GeometryPipeline::new(config.vertex_cache);
        let gout = geom.run(scene, width, height);

        // 2. Tiling engine.
        let mut tiling = TilingEngine::new(config.tile_cache, config.tile_size);
        let bins = tiling.bin(&gout.prims, width, height);

        // 3. Per-tile raster + early-Z + footprints. Row-major tile
        // order: the depth buffer is cleared per tile, so each tile's
        // outcome is independent of the traversal order a schedule
        // later picks.
        let raster = Rasterizer::new(config.tile_size);
        let mut zbuf = ZBuffer::new(config.tile_size);
        let screen = Rect::new(0, 0, width as i32, height as i32);

        let mut tiles = Vec::with_capacity((bins.tiles_w() * bins.tiles_h()) as usize);
        // Seed the arenas at one screen's worth of quads (~quarter of a
        // busy frame's total, which runs several × the screen-quad
        // count from overdraw). Growth doubling reaches any final size
        // within a handful of reallocations, while sparse frames — most
        // of the sweep grid — don't pay a worst-case reservation in
        // peak allocation (the per-job high-water mark is a CI gate).
        let screen_quads = (width.div_ceil(2) as usize) * (height.div_ceil(2) as usize);
        let mut rast_pos: Vec<(u32, u32)> = Vec::with_capacity(screen_quads / 2);
        let mut quads: Vec<PrepQuad> = Vec::with_capacity(screen_quads / 2);
        let mut lines: Vec<LineAddr> = Vec::with_capacity(screen_quads);
        let mut tile_quads: Vec<Quad> = Vec::new();
        for ty in 0..bins.tiles_h() {
            for tx in 0..bins.tiles_w() {
                let list = bins.list(tx, ty);
                let tile_px = (tx * config.tile_size) as i32;
                let tile_py = (ty * config.tile_size) as i32;

                // Tile fetcher cost.
                let fetch = 4 + list.len() as u64 * u64::from(config.fetch_cycles_per_prim);

                // Rasterize the tile's primitives in program order.
                tile_quads.clear();
                let rstats = raster.rasterize_tile_into(
                    &gout.prims,
                    list,
                    tile_px,
                    tile_py,
                    screen,
                    &mut tile_quads,
                );
                let raster_cycles =
                    (tile_quads.len() as u64).div_ceil(u64::from(config.raster_quads_per_cycle));

                // Early-Z in submission order. Late-Z quads are shaded
                // *unconditionally* (their shader may change depth, so
                // early culling is illegal — §II-A) and only resolved
                // afterwards.
                zbuf.clear();
                let rast_start = rast_pos.len() as u32;
                let surv_start = quads.len() as u32;
                for q in &tile_quads {
                    rast_pos.push((q.qx, q.qy));
                    let surviving = zbuf.test_and_update(q);
                    let shade_mask = if q.late_z { q.mask } else { surviving };
                    if shade_mask != 0 {
                        let tex = &textures[q.texture as usize];
                        let line_start = lines.len() as u32;
                        Sampler::new(q.shader.filter).quad_footprint_into(tex, q.uv, &mut lines);
                        quads.push(PrepQuad {
                            qx: q.qx,
                            qy: q.qy,
                            issue: q.shader.issue_slots(),
                            alu_ops: q.shader.alu_ops,
                            tex_samples: q.shader.tex_samples,
                            lines: (line_start, lines.len() as u32),
                        });
                    }
                }
                tiles.push(TilePrefix {
                    prims: list.len() as u32,
                    raster_quads: rstats.quads,
                    rast: (rast_start, rast_pos.len() as u32),
                    surv: (surv_start, quads.len() as u32),
                    fetch,
                    raster_cycles,
                });
            }
        }

        // The arenas grew by doubling; a cached prefix is long-lived,
        // so trade one realloc for a tight budget-accounting footprint.
        rast_pos.shrink_to_fit();
        quads.shrink_to_fit();
        lines.shrink_to_fit();

        let mut config = *config;
        config.threads = 1;
        let (tiles_w, tiles_h) = (bins.tiles_w(), bins.tiles_h());
        Ok(Self {
            config,
            width,
            height,
            textures,
            geometry: gout.stats,
            tiling: bins.stats,
            tiles_w,
            tiles_h,
            tiles,
            rast_pos,
            quads,
            lines,
        })
    }

    /// Approximate retained heap size, for cache budget accounting.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        (size_of::<Self>()
            + self.textures.capacity() * size_of::<TextureDesc>()
            + self.tiles.capacity() * size_of::<TilePrefix>()
            + self.rast_pos.capacity() * size_of::<(u32, u32)>()
            + self.quads.capacity() * size_of::<PrepQuad>()
            + self.lines.capacity() * size_of::<LineAddr>()) as u64
    }

    /// Screen width in pixels the prefix was built for.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Screen height in pixels the prefix was built for.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Iterate `indices` (into the survivor arena) as
    /// [`PreparedQuad`]s for [`crate::ShaderCore::trace_prepared`].
    pub(crate) fn prepared<'a>(
        &'a self,
        indices: &'a [u32],
    ) -> impl Iterator<Item = PreparedQuad<'a>> + 'a {
        indices.iter().map(move |&qi| {
            let q = &self.quads[qi as usize];
            PreparedQuad {
                issue: q.issue,
                alu_ops: q.alu_ops,
                tex_samples: q.tex_samples,
                lines: &self.lines[q.lines.0 as usize..q.lines.1 as usize],
            }
        })
    }
}
