//! Whole-frame simulation: functional pass + metrics.

use crate::config::{BarrierMode, PipelineConfig};
use crate::error::SimError;
use crate::geometry::GeometryStats;
use crate::prefix::FramePrefix;
use crate::shade::{ShaderCore, ShaderCoreStats, SubtileTrace};
use crate::tiling::TilingStats;
use crate::timing::{compose_frame, StageDurations};
use crossbeam::channel::bounded;
use dtexl_mem::energy::EnergyEvents;
use dtexl_mem::{HierarchyStats, L1Lane, MemCounters, TextureHierarchy, LINE_BYTES};
use dtexl_obs::{Event, MemSample, NullProbe, Probe, RasterSample};
use dtexl_scene::Scene;
use dtexl_sched::{ScheduleConfig, TileSchedule};

/// Per-tile outcome of the functional pass, indexed `[u]` by shader
/// core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileRecord {
    /// Tile coordinates.
    pub tile: (u32, u32),
    /// Quads emitted by the rasterizer per SC (pre early-Z).
    pub quads_rasterized: [u32; 4],
    /// Quads surviving early-Z per SC (shaded).
    pub quads_shaded: [u32; 4],
    /// Fragment-stage cycles per SC (from the warp model).
    pub frag_cycles: [u64; 4],
}

/// Result of simulating one frame.
///
/// The functional pass is shared between barrier modes; call
/// [`total_cycles`](Self::total_cycles) with either mode to compose the
/// corresponding frame time.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// The hardware configuration used.
    pub config: PipelineConfig,
    /// The schedule used.
    pub schedule: ScheduleConfig,
    /// Screen width in pixels the frame was simulated at.
    pub width: u32,
    /// Screen height in pixels the frame was simulated at.
    pub height: u32,
    /// Geometry-phase statistics.
    pub geometry: GeometryStats,
    /// Tiling-engine statistics.
    pub tiling: TilingStats,
    /// Per-tile records in traversal order.
    pub tiles: Vec<TileRecord>,
    /// Stage durations for frame-time composition.
    pub durations: StageDurations,
    /// Texture-hierarchy statistics.
    pub hierarchy: HierarchyStats,
    /// Aggregated shader-core statistics.
    pub shader: ShaderCoreStats,
}

impl FrameResult {
    /// Total frame cycles under `mode` (geometry + tiling + raster
    /// phase).
    #[must_use]
    pub fn total_cycles(&self, mode: BarrierMode) -> u64 {
        self.geometry.cycles + self.tiling.build_cycles + compose_frame(&self.durations, mode)
    }

    /// Frames per second at `clock_hz` under `mode`.
    #[must_use]
    pub fn fps(&self, clock_hz: f64, mode: BarrierMode) -> f64 {
        clock_hz / self.total_cycles(mode) as f64
    }

    /// Total L2 accesses — the paper's headline cache metric: texture
    /// L1 misses, vertex- and tile-cache misses, plus the color-buffer
    /// flush lines written back through the L2 (Fig. 5 routes the
    /// Color Buffer's memory path through the shared L2). Texture
    /// traffic dominates but the other streams are scheduler-invariant,
    /// which is why the paper's *total* decrease (46.8%) is smaller
    /// than the texture-only decrease.
    #[must_use]
    pub fn total_l2_accesses(&self) -> u64 {
        self.hierarchy.l2.accesses
            + self.geometry.vertex_cache.misses
            + self.tiling.tile_cache.misses
            + self.framebuffer_lines()
    }

    /// Cache lines of color-buffer flush traffic. Each tile flushes
    /// only the pixels it covers on screen — edge tiles at ragged
    /// resolutions are clamped to their screen intersection instead of
    /// being charged a full tile — at 4 bytes per pixel, rounded up to
    /// whole lines per tile flush.
    #[must_use]
    pub fn framebuffer_lines(&self) -> u64 {
        let ts = u64::from(self.config.tile_size);
        self.tiles
            .iter()
            .map(|t| {
                let x0 = u64::from(t.tile.0) * ts;
                let y0 = u64::from(t.tile.1) * ts;
                let w = ts.min(u64::from(self.width).saturating_sub(x0));
                let h = ts.min(u64::from(self.height).saturating_sub(y0));
                (w * h * 4).div_ceil(LINE_BYTES)
            })
            .sum()
    }

    /// Total quads shaded across the frame.
    #[must_use]
    pub fn total_quads_shaded(&self) -> u64 {
        self.tiles
            .iter()
            .map(|t| t.quads_shaded.iter().map(|&q| u64::from(q)).sum::<u64>())
            .sum()
    }

    /// Per-tile normalized mean deviation of the *quad count* per SC
    /// (in percent) — the Fig. 1 / Fig. 12 / Fig. 15 load-balance
    /// metric. Tiles with no work are skipped.
    #[must_use]
    pub fn quad_deviation_samples(&self) -> Vec<f64> {
        self.per_tile_deviation(|t| t.quads_shaded.map(|q| q as f64))
    }

    /// Per-tile normalized mean deviation of the *fragment execution
    /// time* per SC (in percent) — the Fig. 14 metric.
    #[must_use]
    pub fn time_deviation_samples(&self) -> Vec<f64> {
        self.per_tile_deviation(|t| t.frag_cycles.map(|c| c as f64))
    }

    fn per_tile_deviation(&self, f: impl Fn(&TileRecord) -> [f64; 4]) -> Vec<f64> {
        // Only the active lanes participate: in upper-bound mode a
        // single core does all the work and the three idle lanes must
        // not be averaged in as zeros.
        let active = self.config.effective_num_sc();
        let n = active as f64;
        self.tiles
            .iter()
            .filter_map(|t| {
                let v = f(t);
                let v = &v[..active];
                let mean = v.iter().sum::<f64>() / n;
                if mean <= 0.0 {
                    return None;
                }
                let dev = v.iter().map(|x| (x - mean).abs()).sum::<f64>() / n;
                Some(100.0 * dev / mean)
            })
            .collect()
    }

    /// Mean of [`quad_deviation_samples`](Self::quad_deviation_samples).
    #[must_use]
    pub fn mean_quad_deviation(&self) -> f64 {
        mean(&self.quad_deviation_samples())
    }

    /// Mean of [`time_deviation_samples`](Self::time_deviation_samples).
    #[must_use]
    pub fn mean_time_deviation(&self) -> f64 {
        mean(&self.time_deviation_samples())
    }

    /// Energy-model event counts for this frame under `mode`.
    #[must_use]
    pub fn energy_events(&self, mode: BarrierMode) -> EnergyEvents {
        let total_quads: u64 = self
            .tiles
            .iter()
            .map(|t| {
                t.quads_rasterized
                    .iter()
                    .map(|&q| u64::from(q))
                    .sum::<u64>()
                    + t.quads_shaded.iter().map(|&q| u64::from(q)).sum::<u64>()
            })
            .sum();
        // Color flush: each tile writes its pixels to the framebuffer.
        let fb_lines = self.framebuffer_lines();
        EnergyEvents {
            l1_accesses: self.hierarchy.l1_accesses()
                + self.geometry.vertex_cache.accesses
                + self.tiling.tile_cache.accesses,
            l2_accesses: self.total_l2_accesses(),
            dram_accesses: self.hierarchy.dram_accesses + fb_lines,
            alu_ops: self.shader.alu_ops,
            fixed_stage_quads: total_quads,
            cycles: self.total_cycles(mode),
        }
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// The frame simulator: runs the functional pass and produces a
/// [`FrameResult`].
#[derive(Debug)]
pub struct FrameSim;

impl FrameSim {
    /// Simulate one frame of `scene` under `schedule` on `config`'s
    /// hardware.
    ///
    /// Thin panicking wrapper over [`try_run`](Self::try_run) for
    /// callers that treat malformed input as a programming error.
    ///
    /// # Panics
    ///
    /// Panics if the configuration or scene is invalid (see
    /// [`PipelineConfig::validate`] and [`Scene::validate`]), or if the
    /// scene's texture ids are not dense (`textures[i].id() == i`).
    #[must_use]
    pub fn run(scene: &Scene, schedule: &ScheduleConfig, config: &PipelineConfig) -> FrameResult {
        // lint: allow(no-panic) -- documented panicking convenience wrapper over try_run
        Self::try_run(scene, schedule, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`run`](Self::run), but with an explicit screen size. The
    /// screen extent cannot be recovered from the scene itself (draws
    /// may under- or overshoot it), so callers pass the resolution the
    /// scene was generated for; [`run`](Self::run) assumes Table II's
    /// 1960×768.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid inputs as [`run`](Self::run); use
    /// [`try_run_with_resolution`](Self::try_run_with_resolution) to
    /// get a typed [`SimError`] instead.
    #[must_use]
    pub fn run_with_resolution(
        scene: &Scene,
        schedule: &ScheduleConfig,
        config: &PipelineConfig,
        width: u32,
        height: u32,
    ) -> FrameResult {
        Self::try_run_with_resolution(scene, schedule, config, width, height)
            // lint: allow(no-panic) -- documented panicking convenience wrapper over the try_ variant
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the configuration, fault plan or
    /// scene is invalid. Never panics on malformed input.
    pub fn try_run(
        scene: &Scene,
        schedule: &ScheduleConfig,
        config: &PipelineConfig,
    ) -> Result<FrameResult, SimError> {
        Self::try_run_sized(scene, schedule, config, None, &mut NullProbe)
    }

    /// Fallible variant of
    /// [`run_with_resolution`](Self::run_with_resolution).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the configuration, fault plan or
    /// scene is invalid. Never panics on malformed input.
    pub fn try_run_with_resolution(
        scene: &Scene,
        schedule: &ScheduleConfig,
        config: &PipelineConfig,
        width: u32,
        height: u32,
    ) -> Result<FrameResult, SimError> {
        Self::try_run_sized(
            scene,
            schedule,
            config,
            Some((width, height)),
            &mut NullProbe,
        )
    }

    /// Like [`try_run_with_resolution`](Self::try_run_with_resolution),
    /// but threading an observability probe through the functional
    /// pass: the serial front half records one
    /// [`Event::Raster`] per tile and the fragment stage one
    /// [`Event::Mem`] per (tile, SC) subtile, always in tile-major /
    /// SC-ascending order — the same order the shared memory levels
    /// replay in — so the event stream is bit-identical across
    /// `config.threads` settings. Busy/wait [`Event::Span`]s are *not*
    /// emitted here; they come from frame-time composition
    /// ([`compose_frame_probed`](crate::timing::compose_frame_probed))
    /// over the returned [`StageDurations`].
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the configuration, fault plan or
    /// scene is invalid. Never panics on malformed input.
    pub fn try_run_probed<P: Probe>(
        scene: &Scene,
        schedule: &ScheduleConfig,
        config: &PipelineConfig,
        width: u32,
        height: u32,
        probe: &mut P,
    ) -> Result<FrameResult, SimError> {
        Self::try_run_sized(scene, schedule, config, Some((width, height)), probe)
    }

    fn try_run_sized<P: Probe>(
        scene: &Scene,
        schedule: &ScheduleConfig,
        config: &PipelineConfig,
        resolution: Option<(u32, u32)>,
        probe: &mut P,
    ) -> Result<FrameResult, SimError> {
        config.validate()?;
        scene.validate().map_err(SimError::Scene)?;
        let (width, height) = resolution.unwrap_or((1960, 768));
        fault_hooks(config);
        let prefix = FramePrefix::build(scene, config, width, height)?;
        Ok(Self::run_leg(&prefix, schedule, config, probe))
    }

    /// Run one schedule leg over a prebuilt [`FramePrefix`] —
    /// bit-identical to a fresh
    /// [`try_run_with_resolution`](Self::try_run_with_resolution) of
    /// the same scene, because the fresh path is implemented as
    /// `FramePrefix::build` followed by this exact leg.
    ///
    /// `config` may differ from the prefix's build configuration only
    /// in `threads` (thread count is metric-invariant); the wall-clock
    /// and allocation fault hooks still fire per leg, so sweep
    /// watchdogs see every job.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] when `config` is invalid or does
    /// not match the configuration the prefix was built under.
    pub fn try_run_prefixed(
        prefix: &FramePrefix,
        schedule: &ScheduleConfig,
        config: &PipelineConfig,
    ) -> Result<FrameResult, SimError> {
        Self::try_run_prefixed_probed(prefix, schedule, config, &mut NullProbe)
    }

    /// [`try_run_prefixed`](Self::try_run_prefixed) with an
    /// observability probe: the same per-leg [`Event::Raster`] /
    /// [`Event::Mem`] stream as
    /// [`try_run_probed`](Self::try_run_probed).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] when `config` is invalid or does
    /// not match the configuration the prefix was built under.
    pub fn try_run_prefixed_probed<P: Probe>(
        prefix: &FramePrefix,
        schedule: &ScheduleConfig,
        config: &PipelineConfig,
        probe: &mut P,
    ) -> Result<FrameResult, SimError> {
        config.validate()?;
        let mut normalized = *config;
        normalized.threads = 1;
        if normalized != prefix.config {
            return Err(SimError::Config(
                "frame prefix was built under a different pipeline configuration".into(),
            ));
        }
        fault_hooks(config);
        Ok(Self::run_leg(prefix, schedule, config, probe))
    }

    /// The schedule-dependent remainder of the simulation: partition
    /// the prefix arenas under `schedule`, then run the fragment stage
    /// (L1 lane walks, shared-L2 replay, warp timing) per subtile.
    fn run_leg<P: Probe>(
        prefix: &FramePrefix,
        schedule: &ScheduleConfig,
        config: &PipelineConfig,
        probe: &mut P,
    ) -> FrameResult {
        let tsched = TileSchedule::build(schedule, prefix.tiles_w, prefix.tiles_h);
        let qps = config.quads_per_side();

        // Partition pass, in schedule order: per-SC rasterized-quad
        // counts and, per (tile, SC), the survivor indices — one flat
        // index arena with per-subtile ranges instead of four
        // `Vec<Quad>` re-merge buffers per tile.
        let mut legs: Vec<LegTile> = Vec::with_capacity(tsched.len());
        let mut sc_idx: Vec<u32> = Vec::with_capacity(prefix.quads.len());
        let mut buckets: [Vec<u32>; 4] = Default::default();
        for (ti, (tx, ty), _assign) in tsched.iter() {
            let tp = &prefix.tiles[(ty * prefix.tiles_w + tx) as usize];
            if probe.enabled() {
                probe.record(Event::Raster(RasterSample {
                    tile: ti as u32,
                    prims: tp.prims,
                    quads: tp.raster_quads,
                }));
            }
            let mut rec = TileRecord {
                tile: (tx, ty),
                ..TileRecord::default()
            };
            for &(qx, qy) in &prefix.rast_pos[span(tp.rast)] {
                rec.quads_rasterized[tsched.sc_of_quad(ti, qx, qy, qps, qps)] += 1;
            }
            for b in &mut buckets {
                b.clear();
            }
            for qi in tp.surv.0..tp.surv.1 {
                let q = &prefix.quads[qi as usize];
                buckets[tsched.sc_of_quad(ti, q.qx, q.qy, qps, qps)].push(qi);
            }
            let mut sc = [(0u32, 0u32); 4];
            for (r, b) in sc.iter_mut().zip(&buckets) {
                let start = sc_idx.len() as u32;
                sc_idx.extend_from_slice(b);
                *r = (start, sc_idx.len() as u32);
            }
            legs.push(LegTile {
                rec,
                sc,
                fetch: tp.fetch,
                raster: tp.raster_cycles,
            });
        }

        // Fragment stage: run each SC's subtile on the warp model. In
        // upper-bound mode all quads execute on the single core, in
        // slot order (cache metric only). With `threads > 1` the SC
        // lanes are simulated on worker threads and their L1-miss
        // streams replayed serially — bit-identical to the serial path.
        let mut hierarchy = TextureHierarchy::new(config.effective_hierarchy());
        let core = ShaderCore::new(config.warp_slots, config.l1_miss_fill_cycles);
        let workers = config.threads.min(config.effective_num_sc());

        let mut tiles = Vec::with_capacity(legs.len());
        let mut durations = StageDurations::default();
        let mut shader_total = ShaderCoreStats::default();

        if workers <= 1 {
            let mut merged: Vec<u32> = Vec::new();
            for (ti, leg) in legs.iter().enumerate() {
                durations.fetch.push(leg.fetch);
                durations.raster.push(leg.raster);
                let mut rec = leg.rec;
                let mut ez = [0u64; 4];
                let mut frag = [0u64; 4];
                let mut blend = [0u64; 4];
                if config.upper_bound {
                    // All quads on the single core: the per-SC lists
                    // concatenated in SC order — the order the serial
                    // reference has always shaded them in.
                    merged.clear();
                    for r in leg.sc {
                        merged.extend_from_slice(&sc_idx[span(r)]);
                    }
                    let (cycles, stats) =
                        run_subtile_cached(prefix, &core, 0, ti, &merged, &mut hierarchy, probe);
                    rec.quads_shaded[0] = merged.len() as u32;
                    rec.frag_cycles[0] = cycles;
                    shader_total += stats;
                    ez[0] = u64::from(rec.quads_rasterized.iter().sum::<u32>());
                    frag[0] = cycles;
                    blend[0] = merged.len() as u64 + u64::from(config.flush_cycles_per_bank);
                } else {
                    for (sc, &r) in leg.sc.iter().enumerate().take(config.num_sc) {
                        let indices = &sc_idx[span(r)];
                        let (cycles, stats) = run_subtile_cached(
                            prefix,
                            &core,
                            sc,
                            ti,
                            indices,
                            &mut hierarchy,
                            probe,
                        );
                        rec.quads_shaded[sc] = indices.len() as u32;
                        rec.frag_cycles[sc] = cycles;
                        shader_total += stats;
                        ez[sc] = u64::from(rec.quads_rasterized[sc]);
                        frag[sc] = cycles;
                        blend[sc] = indices.len() as u64 + u64::from(config.flush_cycles_per_bank);
                    }
                }
                durations.early_z.push(ez);
                durations.fragment.push(frag);
                durations.blend.push(blend);
                tiles.push(rec);
            }
        } else {
            hierarchy = Self::fragment_parallel(
                config,
                core,
                hierarchy,
                prefix,
                &legs,
                &sc_idx,
                workers,
                &mut tiles,
                &mut durations,
                &mut shader_total,
                probe,
            );
        }

        // Inject any lane-stall fault into the recorded durations.
        // Both barrier modes compose frame time from these durations,
        // so coupled and decoupled see the identical perturbation.
        config.fault.apply_to_durations(&mut durations);

        FrameResult {
            config: *config,
            schedule: *schedule,
            width: prefix.width,
            height: prefix.height,
            geometry: prefix.geometry.clone(),
            tiling: prefix.tiling.clone(),
            tiles,
            durations,
            hierarchy: hierarchy.stats(),
            shader: shader_total,
        }
    }

    /// The parallel fragment stage: one worker thread per SC lane
    /// traces its private L1 over the lane's subtile stream (tile
    /// order), while this thread replays the emitted L2-request streams
    /// into the shared levels **tile-major, SC 0..3** — the exact order
    /// the serial path issues them, so every latency and statistic is
    /// bit-identical.
    ///
    /// Upper-bound mode has a single effective lane, so it always takes
    /// the serial path and never reaches here.
    #[allow(clippy::too_many_arguments)]
    fn fragment_parallel<P: Probe>(
        config: &PipelineConfig,
        core: ShaderCore,
        hierarchy: TextureHierarchy,
        prefix: &FramePrefix,
        legs: &[LegTile],
        sc_idx: &[u32],
        workers: usize,
        tiles: &mut Vec<TileRecord>,
        durations: &mut StageDurations,
        shader_total: &mut ShaderCoreStats,
        probe: &mut P,
    ) -> TextureHierarchy {
        /// Bounded per-lane pipeline depth: how many tiles a lane may
        /// trace ahead of the serial replay (backpressure bound).
        const REPLAY_DEPTH: usize = 32;

        debug_assert!(!config.upper_bound, "upper bound is single-lane (serial)");
        let lanes = config.effective_num_sc();
        let l1_latency = config.effective_hierarchy().l1.latency;
        let (hcfg, lane_states, mut shared) = hierarchy.split();
        debug_assert_eq!(lane_states.len(), lanes);

        let mut rejoined: Vec<Option<L1Lane>> = (0..lanes).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut txs = Vec::with_capacity(lanes);
            let mut rxs = Vec::with_capacity(lanes);
            for _ in 0..lanes {
                let (tx, rx) = bounded::<SubtileTrace>(REPLAY_DEPTH);
                txs.push(Some(tx));
                rxs.push(rx);
            }

            // Distribute the lanes round-robin over the workers; each
            // worker owns its lanes' L1 state and trace senders.
            let mut assignment: Vec<Vec<(usize, L1Lane)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (sc, lane) in lane_states.into_iter().enumerate() {
                assignment[sc % workers].push((sc, lane));
            }
            // If this (job) thread is metered, hand the meter to every
            // lane worker so `peak_alloc_bytes` covers their trace
            // buffers and L1 state too — budgets stay honest under
            // `threads > 1` instead of metering only the job thread.
            let job_meter = dtexl_alloc::current_meter();
            let mut handles = Vec::with_capacity(workers);
            for mut owned in assignment {
                let txs: Vec<_> = owned
                    .iter()
                    // lint: allow(no-panic) -- round-robin assignment visits each SC exactly once by construction
                    .map(|(sc, _)| txs[*sc].take().expect("each lane assigned once"))
                    .collect();
                let fault = config.fault;
                let meter = job_meter.clone();
                handles.push(scope.spawn(move || {
                    let _tag = meter.as_ref().map(dtexl_alloc::meter_current_thread);
                    'tiles: for (ti, leg) in legs.iter().enumerate() {
                        for ((sc, lane), tx) in owned.iter_mut().zip(&txs) {
                            let indices = &sc_idx[span(leg.sc[*sc])];
                            let mut trace = core.trace_prepared(prefix.prepared(indices), lane);
                            trace.origin = (ti, *sc);
                            // Race-harness hook: a seeded wall-clock
                            // delay perturbs lane *completion* order
                            // without touching simulated state.
                            if let Some(jitter) = fault.send_jitter(ti, *sc) {
                                // lint: taint-barrier(jitter shifts lane completion wall time only; replay order and every metric are pinned by tests/schedule_permutation.rs)
                                std::thread::sleep(jitter);
                            }
                            if tx.send(trace).is_err() {
                                // Replay side dropped (panic unwinding):
                                // stop tracing.
                                break 'tiles;
                            }
                        }
                    }
                    owned
                }));
            }

            // Serial replay, tile-major, SC ascending: identical L2 /
            // DRAM request order to the serial reference path.
            for (ti, leg) in legs.iter().enumerate() {
                durations.fetch.push(leg.fetch);
                durations.raster.push(leg.raster);
                let mut rec = leg.rec;
                let mut ez = [0u64; 4];
                let mut frag = [0u64; 4];
                let mut blend = [0u64; 4];
                for (sc, rx) in rxs.iter().enumerate() {
                    // lint: allow(no-panic) -- a worker sends one trace per (tile, sc) or the scope propagates its panic first
                    let trace = rx.recv().expect("lane worker feeds every tile");
                    // Replay-order checker: the shared levels must see
                    // the identical tile-major, SC-ascending request
                    // order as the serial path, no matter how the
                    // workers' completions interleave.
                    debug_assert_eq!(
                        trace.origin,
                        (ti, sc),
                        "replay order violated: lane {sc} delivered tile {} while replay \
                         expected tile {ti}",
                        trace.origin.0,
                    );
                    let before = probe.enabled().then(|| shared.counters());
                    let latencies = shared.replay_demand(&trace.requests);
                    if let Some(before) = before {
                        let delta = shared.counters().since(&before);
                        probe.record(Event::Mem(mem_sample(ti, sc, &trace, delta)));
                    }
                    let (cycles, stats) = core.time_subtile(&trace, l1_latency, &latencies);
                    let shaded = (leg.sc[sc].1 - leg.sc[sc].0) as usize;
                    rec.quads_shaded[sc] = shaded as u32;
                    rec.frag_cycles[sc] = cycles;
                    *shader_total += stats;
                    ez[sc] = u64::from(rec.quads_rasterized[sc]);
                    frag[sc] = cycles;
                    blend[sc] = shaded as u64 + u64::from(config.flush_cycles_per_bank);
                }
                durations.early_z.push(ez);
                durations.fragment.push(frag);
                durations.blend.push(blend);
                tiles.push(rec);
            }

            for handle in handles {
                // lint: allow(no-panic) -- re-raises a lane worker panic on the coordinating thread (caught upstream by the sweep engine)
                for (sc, lane) in handle.join().expect("lane worker panicked") {
                    rejoined[sc] = Some(lane);
                }
            }
        });

        TextureHierarchy::join(
            hcfg,
            rejoined
                .into_iter()
                // lint: allow(no-panic) -- the join loop above rejoined every SC index
                .map(|l| l.expect("every lane returned"))
                .collect(),
            shared,
        )
    }
}

/// Deterministic wall-clock and allocation fault hooks, fired once per
/// leg (per sweep job) on the calling thread — the one sweep timeout
/// and memory-budget watchdogs observe — without touching any simulated
/// metric.
// lint: taint-barrier(fault hooks stall wall time and allocator pressure only; nothing here is read back into simulated state)
fn fault_hooks(config: &PipelineConfig) {
    // Wall-clock hook: wedge the job (exercises timeout watchdogs).
    if config.fault.wall_stall_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(config.fault.wall_stall_ms));
    }
    // Allocation spike: hold a transient buffer (exercises the sweep
    // allocator watchdog).
    if config.fault.alloc_spike_mb > 0 {
        let spike = vec![0u8; config.fault.alloc_spike_mb as usize * 1024 * 1024];
        std::hint::black_box(&spike);
    }
}

/// `(start, end)` arena range → `usize` slice range.
fn span(r: (u32, u32)) -> std::ops::Range<usize> {
    r.0 as usize..r.1 as usize
}

/// Subtile execution over prefix indices with optional memory probing.
///
/// With a disabled probe this is the trace → replay → time split of
/// [`ShaderCore::run_subtile`] (pinned bit-identical to the fused path
/// by the shade-stage tests) fed from the cached footprints. When
/// probing, the shared-level replay is bracketed with
/// [`TextureHierarchy::shared_counters`] snapshots so L2/DRAM traffic
/// is attributed to this (tile, SC) subtile.
fn run_subtile_cached<P: Probe>(
    prefix: &FramePrefix,
    core: &ShaderCore,
    sc: usize,
    tile: usize,
    indices: &[u32],
    hierarchy: &mut TextureHierarchy,
    probe: &mut P,
) -> (u64, ShaderCoreStats) {
    if !probe.enabled() {
        // No per-subtile memory sample to assemble: take the fused
        // access-by-access walk (same request order, no trace buffers).
        return core.run_subtile_fused(sc, prefix.prepared(indices), hierarchy);
    }
    let before = hierarchy.shared_counters();
    let lane = hierarchy.lane_mut(sc);
    let l1_latency = lane.l1_latency();
    let trace = core.trace_prepared(prefix.prepared(indices), lane);
    let latencies = hierarchy.replay_demand(&trace.requests);
    let delta = hierarchy.shared_counters().since(&before);
    probe.record(Event::Mem(mem_sample(tile, sc, &trace, delta)));
    core.time_subtile(&trace, l1_latency, &latencies)
}

/// Build one fragment-subtile memory sample: L1 counts from the lane
/// trace, shared-level counts from the replay-window counter delta
/// (which includes the trace's prefetch requests — they replay in the
/// same window).
fn mem_sample(tile: usize, sc: usize, trace: &SubtileTrace, delta: MemCounters) -> MemSample {
    MemSample {
        tile: tile as u32,
        sc: sc as u8,
        l1_hits: trace.l1_hits(),
        l1_misses: trace.l1_misses(),
        l2_hits: delta.l2_hits,
        l2_misses: delta.l2_misses,
        dram_requests: delta.dram_requests,
        dram_spikes: delta.dram_spikes,
    }
}

/// Per-tile output of the leg's partition pass: everything the
/// fragment stage needs, independent of execution mode. The survivor
/// quads themselves live in the (schedule-independent) prefix arenas;
/// this only holds index ranges into the leg's flat `sc_idx` arena.
#[derive(Debug, Clone, Copy)]
struct LegTile {
    /// The tile record with `quads_rasterized` filled in.
    rec: TileRecord,
    /// Per-SC `(start, end)` ranges into the leg's survivor-index
    /// arena, each in submission order.
    sc: [(u32, u32); 4],
    /// Tile-fetcher cycles.
    fetch: u64,
    /// Rasterizer cycles.
    raster: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtexl_scene::{Game, SceneSpec};

    fn small_result(schedule: ScheduleConfig) -> FrameResult {
        let scene = Game::GravityTetris.scene(&SceneSpec::new(256, 128, 0));
        FrameSim::run_with_resolution(&scene, &schedule, &PipelineConfig::default(), 256, 128)
    }

    #[test]
    fn frame_produces_work_and_metrics() {
        let r = small_result(ScheduleConfig::baseline());
        assert_eq!(r.tiles.len(), 8 * 4, "256×128 → 8×4 tiles");
        assert!(r.total_quads_shaded() > 100);
        assert!(r.total_l2_accesses() > 0);
        assert!(r.total_cycles(BarrierMode::Coupled) > 0);
        assert!(r.fps(600e6, BarrierMode::Coupled) > 0.0);
    }

    #[test]
    fn decoupled_at_least_as_fast() {
        for sched in [ScheduleConfig::baseline(), ScheduleConfig::dtexl()] {
            let r = small_result(sched);
            assert!(r.total_cycles(BarrierMode::Decoupled) <= r.total_cycles(BarrierMode::Coupled));
        }
    }

    #[test]
    fn cg_square_reduces_l2_accesses() {
        let fg = small_result(ScheduleConfig::baseline());
        let cg = small_result(ScheduleConfig::dtexl());
        assert!(
            (cg.total_l2_accesses() as f64) < 0.9 * fg.total_l2_accesses() as f64,
            "CG {} vs FG {}",
            cg.total_l2_accesses(),
            fg.total_l2_accesses()
        );
    }

    #[test]
    fn fg_balances_quads_better_than_cg() {
        let fg = small_result(ScheduleConfig::baseline());
        let cg = small_result(ScheduleConfig::dtexl());
        assert!(
            fg.mean_quad_deviation() < cg.mean_quad_deviation(),
            "FG dev {} must be below CG dev {}",
            fg.mean_quad_deviation(),
            cg.mean_quad_deviation()
        );
    }

    #[test]
    fn upper_bound_beats_split_caches() {
        let scene = Game::GravityTetris.scene(&SceneSpec::new(256, 128, 0));
        let cfg = PipelineConfig::default();
        let ub_cfg = PipelineConfig {
            upper_bound: true,
            ..cfg
        };
        let split =
            FrameSim::run_with_resolution(&scene, &ScheduleConfig::baseline(), &cfg, 256, 128);
        let ub =
            FrameSim::run_with_resolution(&scene, &ScheduleConfig::baseline(), &ub_cfg, 256, 128);
        assert!(
            ub.hierarchy.l2.accesses < split.hierarchy.l2.accesses,
            "upper bound {} must beat split {}",
            ub.hierarchy.l2.accesses,
            split.hierarchy.l2.accesses
        );
    }

    #[test]
    fn ragged_edge_resolutions_work() {
        // Resolutions that are not multiples of the tile size exercise
        // partial tiles on the right/bottom edges.
        for (w, h) in [(100u32, 50u32), (33, 33), (65, 31)] {
            let scene = Game::CandyCrush.scene(&SceneSpec::new(w, h, 0));
            for sched in [ScheduleConfig::baseline(), ScheduleConfig::dtexl()] {
                let r =
                    FrameSim::run_with_resolution(&scene, &sched, &PipelineConfig::default(), w, h);
                assert_eq!(
                    r.tiles.len() as u32,
                    w.div_ceil(32) * h.div_ceil(32),
                    "{w}x{h}"
                );
                assert!(r.total_quads_shaded() > 0, "{w}x{h}");
                // No quad may cover pixels beyond the screen: bounded by
                // the pixel count (4 fragments per quad).
                let max_quads = (w.div_ceil(2) * h.div_ceil(2)) as u64;
                let per_tile_max: u64 = r
                    .tiles
                    .iter()
                    .map(|t| u64::from(*t.quads_shaded.iter().max().unwrap()))
                    .sum();
                assert!(per_tile_max <= max_quads * 8, "sanity bound");
                assert!(
                    r.total_cycles(BarrierMode::Decoupled) <= r.total_cycles(BarrierMode::Coupled)
                );
            }
        }
    }

    #[test]
    fn determinism() {
        let a = small_result(ScheduleConfig::dtexl());
        let b = small_result(ScheduleConfig::dtexl());
        assert_eq!(
            a.total_cycles(BarrierMode::Coupled),
            b.total_cycles(BarrierMode::Coupled)
        );
        assert_eq!(a.total_l2_accesses(), b.total_l2_accesses());
    }

    #[test]
    fn energy_events_populated() {
        let r = small_result(ScheduleConfig::baseline());
        let ev = r.energy_events(BarrierMode::Coupled);
        assert!(ev.l1_accesses > 0);
        assert!(ev.l2_accesses > 0);
        assert!(ev.alu_ops > 0);
        assert!(ev.fixed_stage_quads > 0);
        assert_eq!(ev.cycles, r.total_cycles(BarrierMode::Coupled));
    }

    #[test]
    fn late_z_quads_are_always_shaded() {
        use dtexl_scene::DepthMode;
        let mut scene = Game::TempleRun.scene(&SceneSpec::new(256, 128, 0));
        let early = FrameSim::run_with_resolution(
            &scene,
            &ScheduleConfig::baseline(),
            &PipelineConfig::default(),
            256,
            128,
        );
        for d in &mut scene.draws {
            d.depth_mode = DepthMode::Late;
        }
        let late = FrameSim::run_with_resolution(
            &scene,
            &ScheduleConfig::baseline(),
            &PipelineConfig::default(),
            256,
            128,
        );
        assert!(
            late.total_quads_shaded() > early.total_quads_shaded(),
            "late-Z disables early culling: {} vs {}",
            late.total_quads_shaded(),
            early.total_quads_shaded()
        );
        assert!(
            late.total_cycles(BarrierMode::Coupled) > early.total_cycles(BarrierMode::Coupled),
            "the wasted shading costs time"
        );
    }

    #[test]
    fn row_major_layout_reduces_cg_benefit() {
        use dtexl_texture::TexelLayout;
        let scene = Game::GravityTetris.scene(&SceneSpec::new(256, 128, 0));
        let cfg = PipelineConfig::default();
        let ratio = |s: &dtexl_scene::Scene| {
            let fg = FrameSim::run_with_resolution(s, &ScheduleConfig::baseline(), &cfg, 256, 128);
            let cg = FrameSim::run_with_resolution(s, &ScheduleConfig::dtexl(), &cfg, 256, 128);
            cg.hierarchy.l2.accesses as f64 / fg.hierarchy.l2.accesses as f64
        };
        let morton = ratio(&scene);
        let linear = ratio(&scene.relayout(TexelLayout::RowMajor));
        assert!(
            morton < linear,
            "Morton tiling exposes more schedulable locality: {morton:.3} vs {linear:.3}"
        );
    }

    #[test]
    fn probed_run_is_bit_identical_and_samples_cover_every_subtile() {
        use dtexl_obs::EventSink;
        let scene = Game::GravityTetris.scene(&SceneSpec::new(256, 128, 0));
        let sched = ScheduleConfig::dtexl();
        let cfg = PipelineConfig::default();
        let plain = FrameSim::run_with_resolution(&scene, &sched, &cfg, 256, 128);
        let mut sink = EventSink::new();
        let probed = FrameSim::try_run_probed(&scene, &sched, &cfg, 256, 128, &mut sink)
            .expect("valid inputs");

        // Probing must not perturb the simulation.
        assert_eq!(plain.durations, probed.durations);
        assert_eq!(plain.hierarchy, probed.hierarchy);
        assert_eq!(plain.tiles, probed.tiles);
        assert_eq!(sink.dropped(), 0);

        // One raster sample per tile, one mem sample per (tile, SC),
        // in tile-major / SC-ascending order.
        let tiles = probed.tiles.len();
        let raster: Vec<_> = sink
            .iter()
            .filter_map(|e| match e {
                Event::Raster(r) => Some(*r),
                _ => None,
            })
            .collect();
        assert_eq!(raster.len(), tiles);
        let mem: Vec<_> = sink.mem_samples();
        assert_eq!(mem.len(), tiles * cfg.num_sc);
        let keys: Vec<_> = mem.iter().map(|m| (m.tile, m.sc)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "mem samples in replay order");

        // The samples partition the frame's shared-level traffic.
        let l2: u64 = mem.iter().map(|m| m.l2_hits + m.l2_misses).sum();
        assert_eq!(l2, probed.hierarchy.l2.accesses);
        let dram: u64 = mem.iter().map(|m| m.dram_requests).sum();
        assert_eq!(dram, probed.hierarchy.dram_accesses);
        // L1 samples count demand accesses only; prefetch fills also
        // bump the cache's own access stat, so the sum is a lower bound.
        let l1: u64 = mem.iter().map(|m| m.l1_hits + m.l1_misses).sum();
        assert!(l1 > 0 && l1 <= probed.hierarchy.l1_accesses());
    }

    #[test]
    fn probed_event_stream_is_thread_invariant() {
        use dtexl_obs::EventSink;
        let scene = Game::CandyCrush.scene(&SceneSpec::new(100, 50, 0));
        let sched = ScheduleConfig::dtexl();
        let streams: Vec<Vec<Event>> = [1usize, 4]
            .into_iter()
            .map(|threads| {
                let cfg = PipelineConfig {
                    threads,
                    ..PipelineConfig::default()
                };
                let mut sink = EventSink::new();
                FrameSim::try_run_probed(&scene, &sched, &cfg, 100, 50, &mut sink)
                    .expect("valid inputs");
                sink.to_vec()
            })
            .collect();
        assert_eq!(
            streams[0], streams[1],
            "events bit-identical across threads"
        );
    }

    #[test]
    fn early_z_kills_some_overdraw() {
        let r = small_result(ScheduleConfig::baseline());
        let rasterized: u64 = r
            .tiles
            .iter()
            .map(|t| {
                t.quads_rasterized
                    .iter()
                    .map(|&q| u64::from(q))
                    .sum::<u64>()
            })
            .sum();
        assert!(
            r.total_quads_shaded() < rasterized,
            "early-Z must cull something: {} vs {}",
            r.total_quads_shaded(),
            rasterized
        );
    }
}
