//! Deterministic fault injection.
//!
//! A [`FaultPlan`] perturbs one simulation in a fully reproducible way
//! — the same plan on the same scene always produces the same result.
//! It exists to turn the paper's robustness argument into executable
//! properties: decoupled barriers degrade gracefully when a single SC
//! lane stalls, while coupled barriers collapse to the slowest lane
//! (see `tests/fault_injection.rs` and `docs/ROBUSTNESS.md`).
//!
//! Independent knobs:
//!
//! * **Lane stall** — one shader-core lane loses [`LaneStall::cycles`]
//!   fragment-stage cycles on a single tile chosen deterministically
//!   from [`FaultPlan::seed`]. Applied to the recorded stage durations,
//!   so both barrier modes see the *same* perturbed workload and the
//!   cache statistics are untouched.
//! * **Early-Z stall** — the same, but on one early-Z unit, landing on
//!   an independently seeded tile. Exists so the observability layer
//!   can prove trace wait-attribution localizes a stall to the right
//!   (SC, stage), not just the right lane.
//! * **DRAM spike** — every [`DramSpike::period`]-th memory fill pays
//!   [`DramSpike::extra_cycles`] extra latency (bus contention).
//! * **Wall stall** — the simulation sleeps for
//!   [`FaultPlan::wall_stall_ms`] of real time before running. Purely a
//!   test hook for the sweep engine's per-job timeout watchdog; it does
//!   not change any simulated metric.
//! * **Allocation spike** — the simulation transiently allocates
//!   [`FaultPlan::alloc_spike_mb`] mebibytes on the calling thread
//!   before running. Purely a test hook for the sweep engine's per-job
//!   memory budget watchdog; it does not change any simulated metric.

use crate::timing::StageDurations;
use serde::{Deserialize, Serialize};

/// Stall one SC lane's fragment stage for a number of cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneStall {
    /// The shader-core lane to stall (0..num_sc).
    pub lane: usize,
    /// Cycles added to that lane's fragment duration on the chosen
    /// tile.
    pub cycles: u64,
}

/// Periodic DRAM latency spikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramSpike {
    /// Every `period`-th fill request is spiked (must be ≥ 1).
    pub period: u64,
    /// Extra cycles charged on spiked requests.
    pub extra_cycles: u32,
}

/// A deterministic, seeded fault-injection plan (off by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed selecting *where* faults land (e.g. which tile a lane
    /// stall hits).
    pub seed: u64,
    /// Optional single-lane fragment-stage stall.
    pub lane_stall: Option<LaneStall>,
    /// Optional single-unit early-Z-stage stall. Lands on a tile chosen
    /// from an *uncorrelated* seed stream (see
    /// [`early_z_stall_tile`](Self::early_z_stall_tile)), so a plan that
    /// also carries a fragment [`lane_stall`](Self::lane_stall) can hit
    /// two different tiles. Trace wait-attribution must localize this
    /// stall to the injected (SC, stage) — pinned by
    /// `tests/fault_injection.rs`.
    pub early_z_stall: Option<LaneStall>,
    /// Optional periodic DRAM latency spikes.
    pub dram_spike: Option<DramSpike>,
    /// Wall-clock sleep (milliseconds) before simulating — a watchdog
    /// test hook, not a model feature.
    pub wall_stall_ms: u64,
    /// Transient allocation (mebibytes) on the calling thread before
    /// simulating — a memory-budget test hook, not a model feature.
    /// The buffer is freed before simulation starts, so only allocator
    /// high-water marks see it.
    pub alloc_spike_mb: u32,
    /// Maximum wall-clock jitter (nanoseconds) a parallel lane worker
    /// sleeps before handing each subtile trace to the serial replay.
    /// Seeded per `(tile, lane)` from [`FaultPlan::seed`], this
    /// adversarially permutes worker *completion* order without
    /// touching any simulated metric — the schedule-permutation race
    /// harness uses it to prove the replay is order-insensitive
    /// (`tests/schedule_permutation.rs`). Zero (the default) disables
    /// it.
    pub trace_send_jitter_ns: u64,
}

impl FaultPlan {
    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.lane_stall.is_none()
            && self.early_z_stall.is_none()
            && self.dram_spike.is_none()
            && self.wall_stall_ms == 0
            && self.alloc_spike_mb == 0
            && self.trace_send_jitter_ns == 0
    }

    /// Check the plan against the hardware it will be injected into.
    ///
    /// # Errors
    ///
    /// Returns a message when a knob is out of range (stalled lane not
    /// present, zero spike period).
    pub fn validate(&self, num_sc: usize) -> Result<(), String> {
        if let Some(s) = self.lane_stall {
            if s.lane >= num_sc {
                return Err(format!(
                    "lane stall targets lane {}, but only {num_sc} lane(s) exist",
                    s.lane
                ));
            }
        }
        if let Some(s) = self.early_z_stall {
            if s.lane >= num_sc {
                return Err(format!(
                    "early-Z stall targets unit {}, but only {num_sc} unit(s) exist",
                    s.lane
                ));
            }
        }
        if let Some(s) = self.dram_spike {
            if s.period == 0 {
                return Err("dram spike period must be >= 1".into());
            }
        }
        Ok(())
    }

    /// The tile index a lane stall lands on, for a frame of
    /// `num_tiles` tiles (seeded, deterministic).
    #[must_use]
    pub fn stall_tile(&self, num_tiles: usize) -> usize {
        if num_tiles == 0 {
            return 0;
        }
        (splitmix64(self.seed) % num_tiles as u64) as usize
    }

    /// The tile index an early-Z stall lands on, for a frame of
    /// `num_tiles` tiles. Seeded from a stream decorrelated from
    /// [`stall_tile`](Self::stall_tile) so the two stalls spread over
    /// different tiles under the same seed.
    #[must_use]
    pub fn early_z_stall_tile(&self, num_tiles: usize) -> usize {
        if num_tiles == 0 {
            return 0;
        }
        (splitmix64(self.seed ^ 0xE2) % num_tiles as u64) as usize
    }

    /// Seeded wall-clock delay (if any) a lane worker inserts before
    /// sending the trace for `(tile, lane)`: uniform in
    /// `[0, trace_send_jitter_ns)` from an uncorrelated splitmix64
    /// stream. `None` when the knob is off.
    #[must_use]
    pub fn send_jitter(&self, tile: usize, lane: usize) -> Option<std::time::Duration> {
        if self.trace_send_jitter_ns == 0 {
            return None;
        }
        let stream = splitmix64(self.seed ^ ((tile as u64) << 8) ^ lane as u64 ^ 0x6a17);
        Some(std::time::Duration::from_nanos(
            stream % self.trace_send_jitter_ns,
        ))
    }

    /// Inject the lane stall (if any) into recorded stage durations.
    /// Both barrier modes compose frame time from the same durations,
    /// so the perturbation is identical for the coupled/decoupled
    /// comparison.
    pub(crate) fn apply_to_durations(&self, d: &mut StageDurations) {
        if d.is_empty() {
            return;
        }
        if let Some(stall) = self.lane_stall {
            let tile = self.stall_tile(d.len());
            d.fragment[tile][stall.lane] += stall.cycles;
        }
        if let Some(stall) = self.early_z_stall {
            let tile = self.early_z_stall_tile(d.len());
            d.early_z[tile][stall.lane] += stall.cycles;
        }
    }
}

/// splitmix64: the same mixer the DRAM model uses, kept private there —
/// good enough to decorrelate seed → tile choice.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop_and_valid() {
        let f = FaultPlan::default();
        assert!(f.is_noop());
        assert_eq!(f.validate(4), Ok(()));
    }

    #[test]
    fn alloc_spike_makes_the_plan_non_noop() {
        let f = FaultPlan {
            alloc_spike_mb: 64,
            ..FaultPlan::default()
        };
        assert!(!f.is_noop());
        assert_eq!(f.validate(4), Ok(()), "spike size is unconstrained");
    }

    #[test]
    fn out_of_range_lane_is_rejected() {
        let f = FaultPlan {
            lane_stall: Some(LaneStall {
                lane: 4,
                cycles: 100,
            }),
            ..FaultPlan::default()
        };
        assert!(f.validate(4).unwrap_err().contains("lane 4"));
        assert_eq!(f.validate(5), Ok(()));
    }

    #[test]
    fn zero_spike_period_is_rejected() {
        let f = FaultPlan {
            dram_spike: Some(DramSpike {
                period: 0,
                extra_cycles: 10,
            }),
            ..FaultPlan::default()
        };
        assert!(f.validate(4).is_err());
    }

    #[test]
    fn stall_tile_is_seed_deterministic_and_in_range() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let f = FaultPlan {
                seed,
                ..FaultPlan::default()
            };
            let t = f.stall_tile(7);
            assert!(t < 7);
            assert_eq!(t, f.stall_tile(7), "same seed, same tile");
        }
        // Different seeds should be able to reach different tiles.
        let tiles: std::collections::HashSet<usize> = (0..32)
            .map(|seed| {
                FaultPlan {
                    seed,
                    ..FaultPlan::default()
                }
                .stall_tile(64)
            })
            .collect();
        assert!(tiles.len() > 8, "seeds spread over tiles: {tiles:?}");
    }

    #[test]
    fn send_jitter_is_seeded_bounded_and_off_by_default() {
        assert_eq!(FaultPlan::default().send_jitter(3, 1), None);
        let f = FaultPlan {
            seed: 9,
            trace_send_jitter_ns: 50_000,
            ..FaultPlan::default()
        };
        let mut distinct = std::collections::HashSet::new();
        for tile in 0..16 {
            for lane in 0..4 {
                let d = f.send_jitter(tile, lane).unwrap();
                assert_eq!(Some(d), f.send_jitter(tile, lane), "replayable");
                assert!(d.as_nanos() < 50_000);
                distinct.insert(d);
            }
        }
        assert!(
            distinct.len() > 32,
            "jitter decorrelates (tile, lane) pairs"
        );
    }

    #[test]
    fn stall_applies_to_one_lane_of_one_tile() {
        let mut d = StageDurations {
            fetch: vec![1; 5],
            raster: vec![1; 5],
            early_z: vec![[1; 4]; 5],
            fragment: vec![[10; 4]; 5],
            blend: vec![[1; 4]; 5],
        };
        let f = FaultPlan {
            seed: 3,
            lane_stall: Some(LaneStall {
                lane: 2,
                cycles: 1000,
            }),
            ..FaultPlan::default()
        };
        f.apply_to_durations(&mut d);
        let total: u64 = d.fragment.iter().flatten().sum();
        assert_eq!(total, 5 * 4 * 10 + 1000);
        let hit = f.stall_tile(5);
        assert_eq!(d.fragment[hit][2], 1010);
    }

    #[test]
    fn early_z_stall_hits_its_own_stage_on_a_decorrelated_tile() {
        let mut d = StageDurations {
            fetch: vec![1; 5],
            raster: vec![1; 5],
            early_z: vec![[2; 4]; 5],
            fragment: vec![[10; 4]; 5],
            blend: vec![[1; 4]; 5],
        };
        let f = FaultPlan {
            seed: 3,
            early_z_stall: Some(LaneStall {
                lane: 1,
                cycles: 500,
            }),
            ..FaultPlan::default()
        };
        assert!(!f.is_noop());
        assert_eq!(f.validate(4), Ok(()));
        assert!(f
            .validate(1)
            .unwrap_err()
            .contains("early-Z stall targets unit 1"));
        f.apply_to_durations(&mut d);
        let hit = f.early_z_stall_tile(5);
        assert_eq!(d.early_z[hit][1], 502);
        // Fragment durations untouched.
        assert!(d.fragment.iter().flatten().all(|&c| c == 10));
        // The two stall streams decorrelate: over many seeds they must
        // disagree on the tile at least once.
        assert!(
            (0..16).any(|seed| {
                let f = FaultPlan {
                    seed,
                    ..FaultPlan::default()
                };
                f.stall_tile(64) != f.early_z_stall_tile(64)
            }),
            "seed streams must not be identical"
        );
    }
}
