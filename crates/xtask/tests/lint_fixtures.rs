//! End-to-end pins for `cargo xtask lint`:
//!
//! * the seeded-violation fixture trips every rule with `file:line`
//!   diagnostics and a non-zero exit;
//! * the clean fixture exits 0 while counting its allow annotations;
//! * the real workspace is lint-clean (the acceptance gate CI runs).

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn seeded_fixture_trips_every_rule_with_file_line() {
    let report = xtask::lint_root(&fixture("violations")).expect("lint fixture");
    let hit = |file: &str, line: usize, rule: &str| {
        report
            .violations
            .iter()
            .any(|v| v.file == file && v.line == line && v.rule == rule)
    };
    assert!(hit("crates/pipeline/src/lib.rs", 4, "determinism-hash"));
    assert!(hit("crates/pipeline/src/lib.rs", 8, "determinism-rng"));
    assert!(hit("crates/pipeline/src/lib.rs", 9, "determinism-clock"));
    assert!(hit("crates/pipeline/src/lib.rs", 10, "determinism-env"));
    assert!(hit("crates/gmath/src/lib.rs", 4, "no-panic"));
    assert!(hit("crates/gmath/src/lib.rs", 5, "lint-annotation"));
    assert!(hit("crates/pipeline/src/lib.rs", 15, "determinism-iter"));
    assert!(hit("tests/parity.rs", 4, "typed-error-parity"));
    assert!(!report.ok());
    // Every violation carries a non-empty hint.
    assert!(report.violations.iter().all(|v| !v.hint.is_empty()));
}

#[test]
fn clean_fixture_passes_and_counts_allows() {
    let report = xtask::lint_root(&fixture("clean")).expect("lint fixture");
    assert!(
        report.ok(),
        "clean fixture must have no violations: {}",
        report.render_text()
    );
    let annotated = report.allowed.iter().filter(|a| !a.builtin).count();
    assert_eq!(annotated, 5, "every allow parsed and counted");
    assert!(report.allowed.iter().all(|a| !a.justification.is_empty()));
}

#[test]
fn lint_binary_exits_nonzero_with_diagnostics_on_the_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(fixture("violations"))
        .args(["--format", "json"])
        .output()
        .expect("run xtask binary");
    assert_eq!(out.status.code(), Some(1), "violations exit non-zero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"ok\": false"));
    assert!(stdout.contains("\"rule\": \"determinism-rng\""));
    assert!(stdout.contains("\"file\": \"crates/pipeline/src/lib.rs\""));
    assert!(stdout.contains("\"line\": 8"));

    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(fixture("violations"))
        .output()
        .expect("run xtask binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("error[typed-error-parity]: tests/parity.rs:4"),
        "text format prints file:line: {stdout}"
    );
}

#[test]
fn lint_binary_rejects_bad_usage() {
    for bad in [
        vec!["frobnicate"],
        vec!["lint", "--format", "yaml"],
        vec!["lint", "--bogus"],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args(&bad)
            .output()
            .expect("run xtask binary");
        assert_eq!(out.status.code(), Some(2), "usage error for {bad:?}");
    }
}

#[test]
fn the_workspace_is_lint_clean() {
    let report = xtask::lint_root(&workspace_root()).expect("lint workspace");
    assert!(
        report.ok(),
        "workspace must stay lint-clean:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 40, "walker found the workspace");
    // The no-panic discipline is annotation-backed: the report parses
    // and counts justifications for every remaining library panic.
    assert!(
        report
            .allowed
            .iter()
            .any(|a| a.rule == "no-panic" && !a.builtin),
        "expected annotated no-panic sites"
    );
    assert!(
        report.allowed.iter().any(|a| a.builtin),
        "expected the built-in wall-clock allowlist to be exercised"
    );
}

#[test]
fn the_workspace_respects_lint_budgets() {
    let root = workspace_root();
    let budget_path = root.join(xtask::budgets::BUDGET_FILE);
    assert!(
        budget_path.exists(),
        "lint-budgets.toml must be checked in at the workspace root"
    );
    let recorded = xtask::budgets::parse(&std::fs::read_to_string(&budget_path).unwrap())
        .expect("budget file parses");
    assert!(!recorded.is_empty(), "budgets cover at least one crate");

    // `lint_root` already folds budget checks in when the file exists;
    // this pins that the checked-in numbers really bound the tree.
    let report = xtask::lint_root(&root).expect("lint workspace");
    assert!(
        !report.violations.iter().any(|v| v.rule == "lint-budget"),
        "allowed-site counts exceed a recorded budget:\n{}",
        report.render_text()
    );
    // And that the check is live: shrinking any budget below its
    // current count must trip it.
    let mut squeezed = recorded.clone();
    let bucket = squeezed.keys().next().unwrap().clone();
    squeezed.insert(bucket.clone(), 0);
    let violations = xtask::budgets::check(&report, &squeezed);
    assert!(
        violations
            .iter()
            .any(|v| v.rule == "lint-budget" && v.hint.contains(&bucket)),
        "a squeezed budget must violate: {violations:?}"
    );
}
