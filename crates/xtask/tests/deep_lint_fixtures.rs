//! End-to-end pins for `cargo xtask deep-lint`:
//!
//! * the `tainted` fixture reports a two-hop wall-clock chain against
//!   the sim entry point, plus the bare unsafe site;
//! * `--why` prints the same chain through the binary;
//! * the `barrier` fixture comes out taint-clean with the barrier
//!   counted as used;
//! * the `drift` fixture trips `api-surface` in both directions;
//! * the real workspace is deep-lint clean (the acceptance gate CI
//!   runs).

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::deep::{deep_lint_root, DeepOptions};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/deep")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn two_hop_clock_taint_is_reported_with_the_full_chain() {
    let report =
        deep_lint_root(&fixture("tainted"), &DeepOptions::default()).expect("deep-lint fixture");
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == "deep-determinism-taint")
        .expect("the sim entry point must be flagged");
    assert_eq!(v.file, "crates/pipeline/src/lib.rs");
    assert_eq!(v.snippet, "FrameSim::try_run");
    for hop in ["FrameSim::try_run", "helper_a", "helper_b", "Instant::now"] {
        assert!(v.hint.contains(hop), "chain must show `{hop}`: {}", v.hint);
    }
}

#[test]
fn bare_unsafe_is_flagged_and_justified_unsafe_is_not() {
    let report =
        deep_lint_root(&fixture("tainted"), &DeepOptions::default()).expect("deep-lint fixture");
    let unsafe_violations: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "unsafe-safety")
        .collect();
    assert_eq!(unsafe_violations.len(), 1, "only the bare site trips");
    assert_eq!(unsafe_violations[0].file, "crates/alloc/src/lib.rs");
    assert_eq!(unsafe_violations[0].line, 12);
    // The inventory still lists both sites, with the SAFETY-annotated
    // one marked justified.
    let alloc_sites: Vec<_> = report
        .unsafe_inventory
        .iter()
        .filter(|u| u.file == "crates/alloc/src/lib.rs")
        .collect();
    assert_eq!(alloc_sites.len(), 2);
    assert!(alloc_sites.iter().any(|u| u.justified));
    assert!(alloc_sites.iter().any(|u| !u.justified));
}

#[test]
fn why_prints_the_chain_through_the_binary() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["deep-lint", "--root"])
        .arg(fixture("tainted"))
        .args(["--why", "FrameSim::try_run"])
        .output()
        .expect("run xtask binary");
    assert_eq!(out.status.code(), Some(1), "tainted fixture exits 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("TAINTED"), "{stdout}");
    for hop in ["helper_a", "helper_b", "Instant::now"] {
        assert!(stdout.contains(hop), "--why must show `{hop}`: {stdout}");
    }
}

#[test]
fn a_taint_barrier_stops_propagation_and_is_counted_used() {
    let report =
        deep_lint_root(&fixture("barrier"), &DeepOptions::default()).expect("deep-lint fixture");
    assert!(
        !report
            .violations
            .iter()
            .any(|v| v.rule == "deep-determinism-taint"),
        "the barrier must cut the chain:\n{}",
        report.render_text()
    );
    assert!(
        !report.violations.iter().any(|v| v.rule == "taint-barrier"),
        "a chain-cutting barrier is not stale"
    );
    assert_eq!(report.barriers.len(), 1, "the used barrier is budgetable");
    assert!(report.barriers[0].why.contains("pads wall time"));
}

#[test]
fn surface_drift_fails_in_both_directions_without_update() {
    let report =
        deep_lint_root(&fixture("drift"), &DeepOptions::default()).expect("deep-lint fixture");
    let drift: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "api-surface")
        .collect();
    assert_eq!(drift.len(), 2, "rename shows as one add + one removal");
    assert!(
        drift
            .iter()
            .any(|v| v.snippet.contains("width: u32") && v.hint.contains("--update-surface")),
        "the new signature is undeclared: {drift:?}"
    );
    assert!(
        drift
            .iter()
            .any(|v| v.snippet.contains("w: u32") && v.hint.contains("gone")),
        "the locked signature is missing: {drift:?}"
    );
}

#[test]
fn the_workspace_is_deep_lint_clean() {
    let report =
        deep_lint_root(&workspace_root(), &DeepOptions::default()).expect("deep-lint workspace");
    assert!(
        report.ok(),
        "workspace must stay deep-lint clean:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 40, "walker found the workspace");
    assert!(report.fn_count > 500, "parser extracted the workspace fns");
    assert!(report.edge_count > 500, "call edges resolved");
    // The surface lock is checked in and exercised.
    assert!(workspace_root().join("api-surface.lock").exists());
    // Every remaining workspace unsafe site is justified.
    assert!(
        report.unsafe_inventory.iter().all(|u| u.justified),
        "unsafe sites without SAFETY comments"
    );
}
