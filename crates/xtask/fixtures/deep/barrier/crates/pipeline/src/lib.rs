//! The same entry-point-to-clock reach as the `tainted` fixture, cut
//! by a fn-level taint-barrier on the stall helper: the root must come
//! out clean and the barrier must be counted as used.
pub struct FrameSim;

impl FrameSim {
    pub fn try_run(&self) -> u64 {
        stall();
        7
    }
}

// lint: taint-barrier(the stall pads wall time only; nothing it computes feeds simulated state)
fn stall() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
