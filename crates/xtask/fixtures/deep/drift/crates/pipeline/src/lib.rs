//! Clean sim crate whose checked-in lock deliberately disagrees with
//! the code, to pin `api-surface` drift detection in both directions.

/// Tiles covered by a scanline of `width` pixels.
pub fn tile_count(width: u32) -> u32 {
    width.div_ceil(8)
}
