//! Seeded two-hop wall-clock taint: `FrameSim::try_run` reaches
//! `Instant::now` through two helpers, so deep-lint must report the
//! whole chain, not just the endpoint.
pub struct FrameSim;

impl FrameSim {
    pub fn try_run(&self) -> u64 {
        helper_a()
    }
}

fn helper_a() -> u64 {
    helper_b() + 1
}

fn helper_b() -> u64 {
    let started = std::time::Instant::now();
    started.elapsed().as_nanos() as u64
}
