//! Seeded unsafe-audit cases: one site carries a SAFETY comment, the
//! other is bare and must trip `unsafe-safety`.

/// Reads through a caller-guaranteed pointer.
pub fn read_justified(p: *const u64) -> u64 {
    // SAFETY: the caller guarantees `p` is non-null, aligned and live.
    unsafe { *p }
}

/// Reads through a pointer with no stated invariant.
pub fn read_bare(p: *const u64) -> u64 {
    unsafe { *p }
}
