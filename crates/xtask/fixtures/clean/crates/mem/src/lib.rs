//! Fixture: annotated sites the linter must accept and count.

// lint: allow(determinism-hash) -- membership probes only; order is never observed
use std::collections::HashSet;

pub fn first(v: &[u32]) -> u32 {
    // lint: allow(determinism-hash) -- collected for len() only; order is never observed
    let seen: HashSet<u32> = v.iter().copied().collect();
    // lint: allow(no-panic) -- caller guarantees a non-empty slice (pinned by tests)
    let x = v.first().copied().unwrap();
    x + seen.len() as u32
}

/// Order-insensitive reduction: both the set and the sum carry
/// justifications the linter must accept.
// lint: allow(determinism-hash) -- membership-style set; the reduction below is justified separately
pub fn total(set: &HashSet<u32>) -> f64 {
    // lint: allow(determinism-iter) -- u32-as-f64 sums are exact below 2^53: order cannot matter
    set.iter().map(|&x| f64::from(x)).sum::<f64>()
}
