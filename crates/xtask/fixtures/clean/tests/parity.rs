//! Fixture: the typed-error-parity pattern done right.

#[test]
// lint: typed-sibling(bad_input_is_a_typed_error)
#[should_panic(expected = "boom")]
fn bad_input_panics() {
    panic!("boom");
}

#[test]
fn bad_input_is_a_typed_error() {
    let r: Result<(), String> = Err("boom".into());
    assert!(r.is_err());
}
