//! Fixture: a no-panic violation and a stale annotation.

pub fn third(v: &[u32]) -> u32 {
    let x = v.get(2).copied().unwrap(); // line 4: no-panic (.unwrap())
    // lint: allow(no-panic) -- stale: nothing below triggers it (line 5: lint-annotation)
    let y = x + 1;
    y
}
