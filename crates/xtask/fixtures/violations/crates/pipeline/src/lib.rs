//! Fixture: one seeded determinism violation per rule in a simulation
//! crate. Never compiled — scanned by xtask's own tests.

use std::collections::HashMap; // line 4: determinism-hash

pub fn seeded() -> u64 {
    let m: HashMap<u32, u32> = HashMap::new();
    let r = thread_rng(); // line 8: determinism-rng
    let t = Instant::now(); // line 9: determinism-clock
    let v = std::env::var("SEED"); // line 10: determinism-env
    m.len() as u64
}

pub fn unordered_sum(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum::<f64>() // line 15: determinism-iter
}
