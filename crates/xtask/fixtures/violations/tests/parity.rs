//! Fixture: a `#[should_panic]` test with no typed sibling.

#[test]
#[should_panic(expected = "boom")] // line 4: typed-error-parity
fn panics_without_typed_twin() {
    panic!("boom");
}
