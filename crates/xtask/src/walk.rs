//! Deterministic discovery of the workspace's Rust sources.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", "fixtures", ".git", ".github"];

/// Collect every `.rs` file under the workspace's `src/`, `tests/`
/// and `examples/` trees (root crate and `crates/*`), as sorted
/// `(workspace-relative path, absolute path)` pairs.
///
/// # Errors
///
/// Propagates filesystem errors from reading the tree.
pub fn rust_sources(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples"] {
        collect(&root.join(top), &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in sorted_entries(&crates)? {
            if entry.is_dir() {
                for sub in ["src", "tests", "benches", "examples"] {
                    collect(&entry.join(sub), &mut files)?;
                }
            }
        }
    }
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| io::Error::other(format!("{}: {e}", path.display())))?
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, path));
    }
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in sorted_entries(dir)? {
        let name = entry
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if entry.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect(&entry, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(entry);
        }
    }
    Ok(())
}

fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_sources_include_this_file_but_not_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = rust_sources(&root).expect("walk workspace");
        assert!(files
            .iter()
            .any(|(rel, _)| rel == "crates/xtask/src/walk.rs"));
        assert!(files.iter().any(|(rel, _)| rel.starts_with("tests/")));
        assert!(
            files.iter().any(|(rel, _)| rel.starts_with("examples/")),
            "examples are linted too"
        );
        assert!(
            !files.iter().any(|(rel, _)| rel.contains("/fixtures/")),
            "fixtures must never be linted as workspace code"
        );
        assert!(!files.iter().any(|(rel, _)| rel.contains("vendor/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order is deterministic");
    }
}
