//! Workspace symbol table + call graph for the deep-lint passes.
//!
//! Built from [`parse::ParsedFile`](crate::parse::ParsedFile)s:
//! every function becomes a node, every call expression that matches a
//! workspace-defined function by name becomes an edge, and every
//! nondeterminism-source needle found inside a function body marks
//! that node as a taint source. `// lint: taint-barrier(<why>)`
//! annotations are attached here (to a source line or to a `fn`
//! definition); [`taint`](crate::taint) consumes the result.
//!
//! Call resolution is a deliberate name-matched over-approximation:
//!
//! * `helper(..)` and `path::helper(..)` (lowercase qualifier) edge to
//!   every workspace *free* fn named `helper`;
//! * `Type::assoc(..)` (uppercase qualifier, `Self` already resolved
//!   by the parser) edges to impl/trait fns of that type only;
//! * `.method(..)` edges to every workspace impl/trait fn of that
//!   name, whatever the receiver type.
//!
//! Calls that resolve to nothing (std, vendored crates) create no
//! edge, so the over-approximation is bounded by what the workspace
//! itself defines. Function *values* (`map(f)`, fn-pointer fields)
//! create no edge either — a documented blind spot (docs/LINTS.md).

use crate::parse::ParsedFile;
use std::collections::BTreeMap;

/// One detected nondeterminism source.
#[derive(Debug, Clone)]
pub struct Source {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Source family: `clock`, `rng`, `env`, `addr` or `iter`.
    pub kind: &'static str,
    /// The needle that matched.
    pub needle: &'static str,
    /// `Some(why)` when a line-level taint-barrier suppresses it.
    pub suppressed: Option<String>,
}

/// One function node.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Function name.
    pub name: String,
    /// Enclosing impl/trait type.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Test code (never tainted, never propagates).
    pub is_test: bool,
    /// `Some(why)` when a fn-level taint-barrier stops taint from
    /// propagating out of this function.
    pub barrier: Option<String>,
    /// Indices into [`Graph::sources`] for needles in this body.
    pub sources: Vec<usize>,
}

/// What a taint-barrier annotation ended up guarding.
#[derive(Debug, Clone)]
pub enum BarrierTarget {
    /// Suppresses these [`Graph::sources`] indices (line barrier).
    Lines(Vec<usize>),
    /// Guards this [`Graph::fns`] index (fn barrier).
    Func(usize),
    /// Matched nothing — reported stale by the taint pass.
    Unattached,
}

/// One taint-barrier annotation, resolved against the graph.
#[derive(Debug, Clone)]
pub struct BarrierSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the annotation comment.
    pub line: usize,
    /// The justification inside the parens.
    pub why: String,
    /// What it guards.
    pub target: BarrierTarget,
}

/// The assembled workspace graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All function nodes, in file/source order.
    pub fns: Vec<FnNode>,
    /// All detected sources.
    pub sources: Vec<Source>,
    /// Forward edges: `callees[f]` = `(callee idx, call line)`.
    pub callees: Vec<Vec<(usize, usize)>>,
    /// Reverse edges: `callers[f]` = caller indices.
    pub callers: Vec<Vec<usize>>,
    /// All taint-barrier annotations, resolved.
    pub barriers: Vec<BarrierSite>,
}

/// `(kind, needle)` pairs matched verbatim against sanitized lines.
/// `Instant`/`SystemTime` are `exact` matches (callers write
/// `Instant::now()` or `std::time::Instant::now()`); identifiers get
/// word boundaries via [`ident_bounded`].
const PLAIN_SOURCES: &[(&str, &str, bool)] = &[
    ("clock", "Instant::now", false),
    ("clock", "SystemTime::now", false),
    ("clock", "thread::sleep", false),
    ("rng", "thread_rng", true),
    ("rng", "from_entropy", true),
    ("env", "env::var", false),
    ("env", "available_parallelism", true),
    ("addr", "Arc::ptr_eq", false),
    ("addr", "Arc::as_ptr", false),
];

/// Float reductions whose order matters (same list as the tier-1
/// `determinism-iter` rule).
const REDUCTIONS: &[&str] = &[
    ".sum::<f64>",
    ".sum::<f32>",
    ".product::<f64>",
    ".product::<f32>",
    ".fold(0.0",
    ".fold(0f64",
    ".fold(0f32",
];

/// Unordered containers feeding those reductions.
const UNORDERED: &[&str] = &["HashMap", "HashSet", "BinaryHeap"];

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// `needle` occurs in `line` with non-identifier characters (or
/// line edges) on both sides.
fn ident_bounded(line: &str, needle: &str) -> bool {
    for (idx, _) in line.match_indices(needle) {
        let start_ok = line[..idx].chars().next_back().is_none_or(|c| !is_ident(c));
        let end_ok = line[idx + needle.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident(c));
        if start_ok && end_ok {
            return true;
        }
    }
    false
}

/// A raw-pointer address observed as an integer: ` as usize` on a line
/// that also mentions a raw pointer. Plain numeric narrowing casts
/// (`idx as usize`) are everywhere in the sim and are deterministic.
fn addr_cast(line: &str) -> bool {
    line.contains(" as usize")
        && (line.contains("*const") || line.contains("*mut") || line.contains("as_ptr"))
}

/// Scan one file's sanitized lines for sources. `line_fn` maps a
/// 0-based line index to the innermost enclosing fn (if any).
fn scan_sources(
    pf: &ParsedFile,
    whole_file_is_test: bool,
    line_fn: &[Option<usize>],
    fns: &mut [FnNode],
    sources: &mut Vec<Source>,
) {
    let is_test_line =
        |idx: usize| whole_file_is_test || pf.test_lines.get(idx).copied().unwrap_or(false);
    let mut push =
        |idx: usize, kind: &'static str, needle: &'static str, sources: &mut Vec<Source>| {
            let Some(owner) = line_fn.get(idx).copied().flatten() else {
                return; // outside any fn body: consts/statics cannot execute
            };
            if fns[owner].is_test {
                return;
            }
            let sidx = sources.len();
            sources.push(Source {
                file: pf.rel.clone(),
                line: idx + 1,
                kind,
                needle,
                suppressed: None,
            });
            fns[owner].sources.push(sidx);
        };
    for (idx, code) in pf.code_lines.iter().enumerate() {
        if is_test_line(idx) {
            continue;
        }
        for (kind, needle, bounded) in PLAIN_SOURCES {
            let hit = if *bounded {
                ident_bounded(code, needle)
            } else {
                code.contains(needle)
            };
            if hit {
                push(idx, kind, needle, sources);
            }
        }
        if addr_cast(code) {
            push(idx, "addr", " as usize", sources);
        }
        if REDUCTIONS.iter().any(|n| code.contains(n)) {
            let window = &pf.code_lines[idx.saturating_sub(3)..=idx];
            if window
                .iter()
                .any(|l| UNORDERED.iter().any(|u| ident_bounded(l, u)))
            {
                push(
                    idx,
                    "iter",
                    "float reduction over unordered container",
                    sources,
                );
            }
        }
    }
}

impl Graph {
    /// Assemble the graph from parsed files. `test_files[i]` marks
    /// whole-file test trees (`tests/`, `benches/`).
    #[must_use]
    pub fn build(files: &[ParsedFile], test_files: &[bool]) -> Self {
        let mut g = Self::default();

        // Nodes, plus per-file innermost line→fn maps.
        let mut file_base: Vec<usize> = Vec::with_capacity(files.len());
        let mut line_maps: Vec<Vec<Option<usize>>> = Vec::with_capacity(files.len());
        for (fi, pf) in files.iter().enumerate() {
            let whole_test = test_files.get(fi).copied().unwrap_or(false);
            file_base.push(g.fns.len());
            let mut line_fn: Vec<Option<usize>> = vec![None; pf.code_lines.len()];
            for f in &pf.fns {
                let idx = g.fns.len();
                g.fns.push(FnNode {
                    file: pf.rel.clone(),
                    name: f.name.clone(),
                    impl_type: f.impl_type.clone(),
                    line: f.line,
                    is_test: f.is_test || whole_test,
                    barrier: None,
                    sources: Vec::new(),
                });
                // Later fns in parse order are lexically inner, so
                // overwriting yields the innermost owner per line.
                for l in f.body.0..=f.body.1.min(pf.code_lines.len()) {
                    if l >= 1 {
                        line_fn[l - 1] = Some(idx);
                    }
                }
            }
            line_maps.push(line_fn);
        }

        // Sources.
        for (fi, pf) in files.iter().enumerate() {
            let whole_test = test_files.get(fi).copied().unwrap_or(false);
            scan_sources(pf, whole_test, &line_maps[fi], &mut g.fns, &mut g.sources);
        }

        // Barriers: a barrier suppresses sources on its own or the
        // next line; otherwise it guards a `fn` defined on one of the
        // three lines below; otherwise it is unattached (stale).
        for (fi, pf) in files.iter().enumerate() {
            for b in &pf.barriers {
                let on_lines: Vec<usize> = g
                    .sources
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.file == pf.rel && (s.line == b.line || s.line == b.line + 1))
                    .map(|(i, _)| i)
                    .collect();
                let target = if on_lines.is_empty() {
                    let base = file_base[fi];
                    let guarded = pf
                        .fns
                        .iter()
                        .position(|f| f.line >= b.line && f.line <= b.line + 3)
                        .map(|local| base + local);
                    match guarded {
                        Some(idx) => {
                            g.fns[idx].barrier = Some(b.why.clone());
                            BarrierTarget::Func(idx)
                        }
                        None => BarrierTarget::Unattached,
                    }
                } else {
                    for &sidx in &on_lines {
                        g.sources[sidx].suppressed = Some(b.why.clone());
                    }
                    BarrierTarget::Lines(on_lines)
                };
                g.barriers.push(BarrierSite {
                    file: pf.rel.clone(),
                    line: b.line,
                    why: b.why.clone(),
                    target,
                });
            }
        }

        // Name indices for call resolution.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (idx, f) in g.fns.iter().enumerate() {
            match &f.impl_type {
                None => free.entry(f.name.as_str()).or_default().push(idx),
                Some(ty) => {
                    typed
                        .entry((ty.as_str(), f.name.as_str()))
                        .or_default()
                        .push(idx);
                    methods.entry(f.name.as_str()).or_default().push(idx);
                }
            }
        }

        // Edges.
        g.callees = vec![Vec::new(); g.fns.len()];
        g.callers = vec![Vec::new(); g.fns.len()];
        for (fi, pf) in files.iter().enumerate() {
            let base = file_base[fi];
            for (local, f) in pf.fns.iter().enumerate() {
                let caller = base + local;
                if g.fns[caller].is_test {
                    continue;
                }
                for call in &f.calls {
                    let Some(name) = call.path.last() else {
                        continue;
                    };
                    let targets: &[usize] = if call.method {
                        methods.get(name.as_str()).map_or(&[], Vec::as_slice)
                    } else if call.path.len() >= 2 {
                        let qual = &call.path[call.path.len() - 2];
                        if qual.chars().next().is_some_and(char::is_uppercase) {
                            typed
                                .get(&(qual.as_str(), name.as_str()))
                                .map_or(&[], Vec::as_slice)
                        } else {
                            free.get(name.as_str()).map_or(&[], Vec::as_slice)
                        }
                    } else {
                        free.get(name.as_str()).map_or(&[], Vec::as_slice)
                    };
                    for &callee in targets {
                        if callee == caller || g.fns[callee].is_test {
                            continue;
                        }
                        if !g.callees[caller].iter().any(|(c, _)| *c == callee) {
                            g.callees[caller].push((callee, call.line));
                            g.callers[callee].push(caller);
                        }
                    }
                }
            }
        }
        g
    }

    /// `Type::name` / `name` display form for a node.
    #[must_use]
    pub fn name_of(&self, idx: usize) -> String {
        let f = &self.fns[idx];
        match &f.impl_type {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Nodes whose display name or bare name equals `symbol`.
    #[must_use]
    pub fn resolve(&self, symbol: &str) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| self.name_of(i) == symbol || self.fns[i].name == symbol)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn build(srcs: &[(&str, &str)]) -> Graph {
        let files: Vec<ParsedFile> = srcs
            .iter()
            .map(|(rel, src)| parse_file(rel, src, false))
            .collect();
        let test_flags = vec![false; files.len()];
        Graph::build(&files, &test_flags)
    }

    #[test]
    fn cross_file_calls_resolve_to_workspace_fns_only() {
        let g = build(&[
            (
                "crates/pipeline/src/lib.rs",
                "pub fn entry() { helper(); std::mem::drop(1); missing(); }\n",
            ),
            ("crates/mem/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        let entry = g.resolve("entry")[0];
        let helper = g.resolve("helper")[0];
        assert_eq!(g.callees[entry].len(), 1, "std + unresolved calls drop out");
        assert_eq!(g.callees[entry][0].0, helper);
        assert_eq!(g.callers[helper], vec![entry]);
    }

    #[test]
    fn typed_calls_do_not_leak_across_types() {
        let g = build(&[(
            "crates/core/src/lib.rs",
            "pub struct A;\npub struct B;\n\
             impl A { pub fn go() { B::step(); } fn step() { tainted(); } }\n\
             impl B { pub fn step() {} }\n\
             fn tainted() { let t = Instant::now(); }\n",
        )]);
        let go = g.resolve("A::go")[0];
        let b_step = g.resolve("B::step")[0];
        let callee_ids: Vec<usize> = g.callees[go].iter().map(|&(c, _)| c).collect();
        assert_eq!(callee_ids, vec![b_step], "B::step only, never A::step");
        let a_step = g.resolve("A::step")[0];
        assert_eq!(g.callees[a_step].len(), 1, "A::step calls the free fn");
    }

    #[test]
    fn sources_attach_to_the_innermost_fn_and_skip_tests() {
        let g = build(&[(
            "crates/core/src/lib.rs",
            "fn outer() {\n\
                 let t = Instant::now();\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { let x = Instant::now(); }\n\
             }\n",
        )]);
        assert_eq!(g.sources.len(), 1, "{:?}", g.sources);
        assert_eq!(g.sources[0].kind, "clock");
        let outer = g.resolve("outer")[0];
        assert_eq!(g.fns[outer].sources, vec![0]);
    }

    #[test]
    fn line_barriers_suppress_and_fn_barriers_guard() {
        let g = build(&[(
            "crates/pipeline/src/lib.rs",
            "fn jittered() {\n\
                 // lint: taint-barrier(wall-time only, never read back)\n\
                 std::thread::sleep(d);\n\
             }\n\
             // lint: taint-barrier(fault hook, wall stall only)\n\
             fn fault_hooks() {\n\
                 std::thread::sleep(d);\n\
             }\n",
        )]);
        assert_eq!(g.sources.len(), 2);
        let suppressed: Vec<bool> = g.sources.iter().map(|s| s.suppressed.is_some()).collect();
        assert_eq!(suppressed, vec![true, false]);
        let hooks = g.resolve("fault_hooks")[0];
        assert!(g.fns[hooks].barrier.is_some());
        assert!(matches!(g.barriers[0].target, BarrierTarget::Lines(_)));
        assert!(matches!(g.barriers[1].target, BarrierTarget::Func(_)));
    }

    #[test]
    fn unattached_barriers_are_recorded_as_such() {
        let g = build(&[(
            "crates/core/src/lib.rs",
            "// lint: taint-barrier(guards nothing)\n\nconst X: u32 = 1;\n",
        )]);
        assert!(matches!(g.barriers[0].target, BarrierTarget::Unattached));
    }

    #[test]
    fn addr_casts_need_a_pointer_on_the_line() {
        let g = build(&[(
            "crates/alloc/src/lib.rs",
            "fn f(x: &u32, i: u32) -> usize {\n\
                 let a = (x as *const u32) as usize;\n\
                 let b = i as usize;\n\
                 a + b\n\
             }\n",
        )]);
        assert_eq!(g.sources.len(), 1, "{:?}", g.sources);
        assert_eq!(g.sources[0].line, 2);
        assert_eq!(g.sources[0].kind, "addr");
    }

    #[test]
    fn float_reduction_near_unordered_container_is_a_source() {
        let g = build(&[(
            "crates/core/src/lib.rs",
            "fn f(m: &HashMap<u32, f64>) -> f64 {\n\
                 m.values()\n\
                 .sum::<f64>()\n\
             }\n",
        )]);
        assert_eq!(g.sources.len(), 1, "{:?}", g.sources);
        assert_eq!(g.sources[0].kind, "iter");
    }

    #[test]
    fn method_calls_resolve_by_name_across_impls() {
        let g = build(&[(
            "crates/core/src/lib.rs",
            "pub struct S;\nimpl S { pub fn tick(&self) {} }\n\
             fn f(s: &S) { s.tick(); }\n",
        )]);
        let f = g.resolve("f")[0];
        let tick = g.resolve("S::tick")[0];
        assert_eq!(g.callees[f], vec![(tick, 3)]);
    }
}
