//! Per-crate allowlist budgets: the `lint: allow` ratchet.
//!
//! `lint-budgets.toml` at the workspace root records, per crate, how
//! many escape hatches the tree is permitted to carry — in two
//! tables, one per lint tier:
//!
//! * `[allow-budgets]` — tier-1 allowed sites (`lint: allow`
//!   annotations + built-in allowlist hits), enforced by
//!   `cargo xtask lint`;
//! * `[deep-allow-budgets]` — used `lint: taint-barrier` annotations,
//!   enforced by `cargo xtask deep-lint`.
//!
//! Counts can only shrink: exceeding a recorded budget is a
//! `lint-budget` violation, and the respective `--update-budgets`
//! rewrites its table with `min(recorded, current)` per crate — so an
//! accidental new escape hatch fails CI, while cleaning one up
//! permanently lowers the bar. Each updater preserves the other
//! tier's table verbatim.
//!
//! The file is a two-table TOML subset this module parses itself
//! (the vendored registry has no `toml` crate):
//!
//! ```toml
//! [allow-budgets]
//! core = 18
//! root = 6
//!
//! [deep-allow-budgets]
//! pipeline = 3
//! ```
//!
//! Buckets are crate directory names (`crates/<name>/…`); files under
//! the workspace root's own `src/`/`tests/` count as `root`. Budgets
//! are only enforced when the file exists, so fixture trees and fresh
//! checkouts without one lint exactly as before.

use crate::report::{Report, Violation};
use std::collections::BTreeMap;

/// Budget file name, resolved against the lint root.
pub const BUDGET_FILE: &str = "lint-budgets.toml";

/// Both budget tables.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BudgetFile {
    /// `[allow-budgets]`: tier-1 allowed sites per crate.
    pub allow: BTreeMap<String, usize>,
    /// `[deep-allow-budgets]`: used taint-barriers per crate.
    pub deep: BTreeMap<String, usize>,
}

/// The budget bucket a workspace-relative path belongs to: the crate
/// directory name, or `root` for the workspace's own sources.
#[must_use]
pub fn bucket_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .map_or_else(|| "root".to_string(), ToString::to_string)
}

/// Count allowed sites per bucket.
#[must_use]
pub fn counts(report: &Report) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for a in &report.allowed {
        *out.entry(bucket_of(&a.file)).or_insert(0) += 1;
    }
    out
}

/// Parse the budget file (both tables).
///
/// # Errors
///
/// Returns a message naming the offending line for anything outside
/// the `[allow-budgets]` / `[deep-allow-budgets]` two-table subset.
pub fn parse_file(text: &str) -> Result<BudgetFile, String> {
    let mut out = BudgetFile::default();
    let mut table: Option<bool> = None; // Some(false)=allow, Some(true)=deep
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[allow-budgets]" {
            table = Some(false);
            continue;
        }
        if line == "[deep-allow-budgets]" {
            table = Some(true);
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "{BUDGET_FILE}:{}: unknown table `{line}` (only [allow-budgets] and \
                 [deep-allow-budgets])",
                lineno + 1
            ));
        }
        let Some((name, value)) = line.split_once('=') else {
            return Err(format!(
                "{BUDGET_FILE}:{}: expected `crate = N`, got `{line}`",
                lineno + 1
            ));
        };
        let Some(deep) = table else {
            return Err(format!(
                "{BUDGET_FILE}:{}: entry before [allow-budgets] header",
                lineno + 1
            ));
        };
        let value: usize = value.trim().parse().map_err(|_| {
            format!(
                "{BUDGET_FILE}:{}: budget for `{}` is not an unsigned integer",
                lineno + 1,
                name.trim()
            )
        })?;
        let target = if deep { &mut out.deep } else { &mut out.allow };
        target.insert(name.trim().to_string(), value);
    }
    Ok(out)
}

/// Parse just the tier-1 `[allow-budgets]` table (compatibility
/// wrapper over [`parse_file`]).
///
/// # Errors
///
/// Same as [`parse_file`].
pub fn parse(text: &str) -> Result<BTreeMap<String, usize>, String> {
    parse_file(text).map(|f| f.allow)
}

/// Render both tables back to the checked-in file format (the deep
/// table is omitted while empty).
#[must_use]
pub fn render_file(f: &BudgetFile) -> String {
    let mut out = String::from(
        "# Per-crate `lint: allow` budgets (annotations + built-in allowlist hits).\n\
         # Enforced by `cargo xtask lint`; counts can only shrink. After removing\n\
         # allowed sites, tighten with `cargo xtask lint --update-budgets`.\n\
         \n\
         [allow-budgets]\n",
    );
    for (name, value) in &f.allow {
        out.push_str(&format!("{name} = {value}\n"));
    }
    if !f.deep.is_empty() {
        out.push_str(
            "\n# Per-crate `lint: taint-barrier` budgets (used barriers only).\n\
             # Enforced by `cargo xtask deep-lint`; tighten with\n\
             # `cargo xtask deep-lint --update-budgets`.\n\
             \n\
             [deep-allow-budgets]\n",
        );
        for (name, value) in &f.deep {
            out.push_str(&format!("{name} = {value}\n"));
        }
    }
    out
}

/// Render a tier-1-only budget map (compatibility wrapper).
#[must_use]
pub fn render(budgets: &BTreeMap<String, usize>) -> String {
    render_file(&BudgetFile {
        allow: budgets.clone(),
        deep: BTreeMap::new(),
    })
}

/// Shared budget check: one `lint-budget` violation per over-budget
/// bucket, plus one per bucket that carries sites but has no recorded
/// budget. `what` names the counted thing, `update_cmd` the ratchet
/// command for the hint.
#[must_use]
pub fn check_counts(
    current: &BTreeMap<String, usize>,
    budgets: &BTreeMap<String, usize>,
    what: &str,
    update_cmd: &str,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (bucket, &count) in current {
        match budgets.get(bucket) {
            Some(&budget) if count > budget => violations.push(Violation {
                file: BUDGET_FILE.to_string(),
                line: 1,
                rule: "lint-budget".into(),
                snippet: format!("{bucket} = {budget}"),
                hint: format!(
                    "crate `{bucket}` carries {count} {what}(s), over its budget of \
                     {budget}: remove the new escape hatch, or justify raising the budget \
                     in review"
                ),
            }),
            Some(_) => {}
            None => violations.push(Violation {
                file: BUDGET_FILE.to_string(),
                line: 1,
                rule: "lint-budget".into(),
                snippet: String::new(),
                hint: format!(
                    "crate `{bucket}` carries {count} {what}(s) but has no recorded \
                     budget: add it with `{update_cmd}`"
                ),
            }),
        }
    }
    violations
}

/// Check a tier-1 lint report against recorded budgets.
#[must_use]
pub fn check(report: &Report, budgets: &BTreeMap<String, usize>) -> Vec<Violation> {
    check_counts(
        &counts(report),
        budgets,
        "allowed site",
        "cargo xtask lint --update-budgets",
    )
}

/// The ratchet: keep each recorded budget at `min(recorded, current)`,
/// add entries for newly-budgeted crates at their current count, and
/// drop entries for crates that no longer carry any allowed site.
#[must_use]
pub fn tighten(
    recorded: &BTreeMap<String, usize>,
    current: &BTreeMap<String, usize>,
) -> BTreeMap<String, usize> {
    current
        .iter()
        .map(|(bucket, &count)| {
            let budget = recorded.get(bucket).map_or(count, |&b| b.min(count));
            (bucket.clone(), budget)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Allowed;

    fn report_with(files: &[&str]) -> Report {
        let mut r = Report::default();
        for f in files {
            r.allowed.push(Allowed {
                file: (*f).to_string(),
                line: 1,
                rule: "no-panic".into(),
                justification: "test".into(),
                builtin: false,
            });
        }
        r
    }

    #[test]
    fn buckets_are_crate_dirs_or_root() {
        assert_eq!(bucket_of("crates/core/src/sweep.rs"), "core");
        assert_eq!(bucket_of("crates/xtask/src/main.rs"), "xtask");
        assert_eq!(bucket_of("tests/sweep_sharding.rs"), "root");
        assert_eq!(bucket_of("src/lib.rs"), "root");
    }

    #[test]
    fn parse_and_render_roundtrip() {
        let text = "# comment\n[allow-budgets]\ncore = 3\nroot = 1 # trailing\n";
        let budgets = parse(text).unwrap();
        assert_eq!(budgets["core"], 3);
        assert_eq!(budgets["root"], 1);
        assert_eq!(parse(&render(&budgets)).unwrap(), budgets);
    }

    #[test]
    fn both_tables_roundtrip_and_stay_separate() {
        let text = "[allow-budgets]\ncore = 3\n\n[deep-allow-budgets]\npipeline = 2\nalloc = 1\n";
        let f = parse_file(text).unwrap();
        assert_eq!(f.allow["core"], 3);
        assert_eq!(f.deep["pipeline"], 2);
        assert_eq!(f.deep["alloc"], 1);
        assert!(!f.allow.contains_key("pipeline"));
        assert_eq!(parse_file(&render_file(&f)).unwrap(), f);
        // The empty deep table is omitted on render.
        let allow_only = BudgetFile {
            allow: f.allow.clone(),
            deep: BTreeMap::new(),
        };
        assert!(!render_file(&allow_only).contains("deep-allow-budgets"));
    }

    #[test]
    fn malformed_budget_files_are_rejected_with_line_numbers() {
        assert!(parse("[other-table]\n").unwrap_err().contains(":1:"));
        assert!(parse("core = 3\n").unwrap_err().contains("before"));
        assert!(parse("[allow-budgets]\ncore = x\n")
            .unwrap_err()
            .contains(":2:"));
        assert!(parse("[allow-budgets]\nnonsense\n")
            .unwrap_err()
            .contains("crate = N"));
    }

    #[test]
    fn over_budget_and_unbudgeted_crates_are_violations() {
        let report = report_with(&["crates/core/src/a.rs", "crates/core/src/b.rs", "tests/t.rs"]);
        let budgets = parse("[allow-budgets]\ncore = 1\nroot = 1\n").unwrap();
        let v = check(&report, &budgets);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lint-budget");
        assert!(v[0].hint.contains("`core` carries 2"), "{}", v[0].hint);

        let budgets = parse("[allow-budgets]\ncore = 2\n").unwrap();
        let v = check(&report, &budgets);
        assert_eq!(v.len(), 1);
        assert!(v[0].hint.contains("`root`"), "{}", v[0].hint);
        assert!(v[0].hint.contains("no recorded budget"), "{}", v[0].hint);
    }

    #[test]
    fn deep_counts_check_against_the_deep_table() {
        let current: BTreeMap<String, usize> = [("pipeline".to_string(), 3)].into();
        let f = parse_file("[allow-budgets]\n\n[deep-allow-budgets]\npipeline = 2\n").unwrap();
        let v = check_counts(
            &current,
            &f.deep,
            "used taint-barrier",
            "cargo xtask deep-lint --update-budgets",
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].hint.contains("used taint-barrier"), "{}", v[0].hint);
        let f = parse_file("[allow-budgets]\n\n[deep-allow-budgets]\npipeline = 3\n").unwrap();
        assert!(check_counts(&current, &f.deep, "used taint-barrier", "x").is_empty());
    }

    #[test]
    fn within_budget_is_clean_and_slack_is_tolerated() {
        let report = report_with(&["crates/core/src/a.rs"]);
        let budgets = parse("[allow-budgets]\ncore = 5\n").unwrap();
        assert!(check(&report, &budgets).is_empty());
    }

    #[test]
    fn tighten_only_shrinks_and_prunes_empty_buckets() {
        let recorded = parse("[allow-budgets]\ncore = 5\nmem = 2\ngone = 4\n").unwrap();
        let current: BTreeMap<String, usize> =
            [("core".into(), 3), ("mem".into(), 7), ("new".into(), 1)].into();
        let tightened = tighten(&recorded, &current);
        assert_eq!(tightened["core"], 3, "ratchets down to the current count");
        assert_eq!(tightened["mem"], 2, "never raises a recorded budget");
        assert_eq!(tightened["new"], 1, "new crates enter at their count");
        assert!(!tightened.contains_key("gone"), "empty buckets are pruned");
    }
}
