//! Per-crate allowlist budgets: the `lint: allow` ratchet.
//!
//! `lint-budgets.toml` at the workspace root records, per crate, how
//! many allowed sites (annotations + built-in allowlist hits) the tree
//! is permitted to carry. Counts can only shrink: exceeding a recorded
//! budget is a `lint-budget` violation, and
//! `cargo xtask lint --update-budgets` rewrites the file with
//! `min(recorded, current)` per crate — so an accidental new escape
//! hatch fails CI, while cleaning one up permanently lowers the bar.
//!
//! The file is a single-table TOML subset this module parses itself
//! (the vendored registry has no `toml` crate):
//!
//! ```toml
//! [allow-budgets]
//! core = 18
//! root = 6
//! ```
//!
//! Buckets are crate directory names (`crates/<name>/…`); files under
//! the workspace root's own `src/`/`tests/` count as `root`. Budgets
//! are only enforced when the file exists, so fixture trees and fresh
//! checkouts without one lint exactly as before.

use crate::report::{Report, Violation};
use std::collections::BTreeMap;

/// Budget file name, resolved against the lint root.
pub const BUDGET_FILE: &str = "lint-budgets.toml";

/// The budget bucket a workspace-relative path belongs to: the crate
/// directory name, or `root` for the workspace's own sources.
#[must_use]
pub fn bucket_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .map_or_else(|| "root".to_string(), ToString::to_string)
}

/// Count allowed sites per bucket.
#[must_use]
pub fn counts(report: &Report) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for a in &report.allowed {
        *out.entry(bucket_of(&a.file)).or_insert(0) += 1;
    }
    out
}

/// Parse the budget file.
///
/// # Errors
///
/// Returns a message naming the offending line for anything outside
/// the `[allow-budgets]` single-table subset.
pub fn parse(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut budgets = BTreeMap::new();
    let mut in_table = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[allow-budgets]" {
            in_table = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "{BUDGET_FILE}:{}: unknown table `{line}` (only [allow-budgets])",
                lineno + 1
            ));
        }
        let Some((name, value)) = line.split_once('=') else {
            return Err(format!(
                "{BUDGET_FILE}:{}: expected `crate = N`, got `{line}`",
                lineno + 1
            ));
        };
        if !in_table {
            return Err(format!(
                "{BUDGET_FILE}:{}: entry before [allow-budgets] header",
                lineno + 1
            ));
        }
        let value: usize = value.trim().parse().map_err(|_| {
            format!(
                "{BUDGET_FILE}:{}: budget for `{}` is not an unsigned integer",
                lineno + 1,
                name.trim()
            )
        })?;
        budgets.insert(name.trim().to_string(), value);
    }
    Ok(budgets)
}

/// Render a budget map back to the checked-in file format.
#[must_use]
pub fn render(budgets: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# Per-crate `lint: allow` budgets (annotations + built-in allowlist hits).\n\
         # Enforced by `cargo xtask lint`; counts can only shrink. After removing\n\
         # allowed sites, tighten with `cargo xtask lint --update-budgets`.\n\
         \n\
         [allow-budgets]\n",
    );
    for (name, value) in budgets {
        out.push_str(&format!("{name} = {value}\n"));
    }
    out
}

/// Check a lint report against recorded budgets: one `lint-budget`
/// violation per over-budget crate, plus one per crate that carries
/// allowed sites but has no recorded budget (new escape hatches must
/// be budgeted deliberately).
#[must_use]
pub fn check(report: &Report, budgets: &BTreeMap<String, usize>) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (bucket, count) in counts(report) {
        match budgets.get(&bucket) {
            Some(&budget) if count > budget => violations.push(Violation {
                file: BUDGET_FILE.to_string(),
                line: 1,
                rule: "lint-budget".into(),
                snippet: format!("{bucket} = {budget}"),
                hint: format!(
                    "crate `{bucket}` carries {count} allowed site(s), over its budget of \
                     {budget}: remove the new allow, or justify raising the budget in review"
                ),
            }),
            Some(_) => {}
            None => violations.push(Violation {
                file: BUDGET_FILE.to_string(),
                line: 1,
                rule: "lint-budget".into(),
                snippet: String::new(),
                hint: format!(
                    "crate `{bucket}` carries {count} allowed site(s) but has no recorded \
                     budget: add it with `cargo xtask lint --update-budgets`"
                ),
            }),
        }
    }
    violations
}

/// The ratchet: keep each recorded budget at `min(recorded, current)`,
/// add entries for newly-budgeted crates at their current count, and
/// drop entries for crates that no longer carry any allowed site.
#[must_use]
pub fn tighten(
    recorded: &BTreeMap<String, usize>,
    current: &BTreeMap<String, usize>,
) -> BTreeMap<String, usize> {
    current
        .iter()
        .map(|(bucket, &count)| {
            let budget = recorded.get(bucket).map_or(count, |&b| b.min(count));
            (bucket.clone(), budget)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Allowed;

    fn report_with(files: &[&str]) -> Report {
        let mut r = Report::default();
        for f in files {
            r.allowed.push(Allowed {
                file: (*f).to_string(),
                line: 1,
                rule: "no-panic".into(),
                justification: "test".into(),
                builtin: false,
            });
        }
        r
    }

    #[test]
    fn buckets_are_crate_dirs_or_root() {
        assert_eq!(bucket_of("crates/core/src/sweep.rs"), "core");
        assert_eq!(bucket_of("crates/xtask/src/main.rs"), "xtask");
        assert_eq!(bucket_of("tests/sweep_sharding.rs"), "root");
        assert_eq!(bucket_of("src/lib.rs"), "root");
    }

    #[test]
    fn parse_and_render_roundtrip() {
        let text = "# comment\n[allow-budgets]\ncore = 3\nroot = 1 # trailing\n";
        let budgets = parse(text).unwrap();
        assert_eq!(budgets["core"], 3);
        assert_eq!(budgets["root"], 1);
        assert_eq!(parse(&render(&budgets)).unwrap(), budgets);
    }

    #[test]
    fn malformed_budget_files_are_rejected_with_line_numbers() {
        assert!(parse("[other-table]\n").unwrap_err().contains(":1:"));
        assert!(parse("core = 3\n").unwrap_err().contains("before"));
        assert!(parse("[allow-budgets]\ncore = x\n")
            .unwrap_err()
            .contains(":2:"));
        assert!(parse("[allow-budgets]\nnonsense\n")
            .unwrap_err()
            .contains("crate = N"));
    }

    #[test]
    fn over_budget_and_unbudgeted_crates_are_violations() {
        let report = report_with(&["crates/core/src/a.rs", "crates/core/src/b.rs", "tests/t.rs"]);
        let budgets = parse("[allow-budgets]\ncore = 1\nroot = 1\n").unwrap();
        let v = check(&report, &budgets);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lint-budget");
        assert!(v[0].hint.contains("`core` carries 2"), "{}", v[0].hint);

        let budgets = parse("[allow-budgets]\ncore = 2\n").unwrap();
        let v = check(&report, &budgets);
        assert_eq!(v.len(), 1);
        assert!(v[0].hint.contains("`root`"), "{}", v[0].hint);
        assert!(v[0].hint.contains("no recorded budget"), "{}", v[0].hint);
    }

    #[test]
    fn within_budget_is_clean_and_slack_is_tolerated() {
        let report = report_with(&["crates/core/src/a.rs"]);
        let budgets = parse("[allow-budgets]\ncore = 5\n").unwrap();
        assert!(check(&report, &budgets).is_empty());
    }

    #[test]
    fn tighten_only_shrinks_and_prunes_empty_buckets() {
        let recorded = parse("[allow-budgets]\ncore = 5\nmem = 2\ngone = 4\n").unwrap();
        let current: BTreeMap<String, usize> =
            [("core".into(), 3), ("mem".into(), 7), ("new".into(), 1)].into();
        let tightened = tighten(&recorded, &current);
        assert_eq!(tightened["core"], 3, "ratchets down to the current count");
        assert_eq!(tightened["mem"], 2, "never raises a recorded budget");
        assert_eq!(tightened["new"], 1, "new crates enter at their count");
        assert!(!tightened.contains_key("gone"), "empty buckets are pruned");
    }
}
