//! API-surface lock for the sim crates.
//!
//! `api-surface.lock` at the workspace root snapshots every `pub` item
//! the sim crates (`rules::SIM_CRATES`) export: structs, enums,
//! traits, type aliases, consts, statics, modules, re-exports and fn
//! signatures (normalized token text, no line numbers — moving code
//! does not drift the lock). `cargo xtask deep-lint` fails on any
//! undeclared difference in either direction; accept intentional
//! changes with `--update-surface`, so API breaks surface in review as
//! a lock-file diff instead of downstream.

use crate::parse::ParsedFile;
use crate::report::Violation;
use crate::rules::{classify, FileClass};

/// Lock file name, resolved against the lint root.
pub const SURFACE_FILE: &str = "api-surface.lock";

/// The current public surface: sorted, deduplicated
/// `<file>\t<item>` entries for sim-crate library files.
#[must_use]
pub fn current(files: &[ParsedFile]) -> Vec<String> {
    let mut out: Vec<String> = files
        .iter()
        .filter(|pf| classify(&pf.rel) == FileClass::SimLib)
        .flat_map(|pf| {
            pf.pub_items
                .iter()
                .map(move |item| format!("{}\t{}", pf.rel, item.text))
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Render entries to the checked-in lock format.
#[must_use]
pub fn render(entries: &[String]) -> String {
    let mut out = String::from(
        "# Public API surface of the sim crates, locked by `cargo xtask deep-lint`.\n\
         # One `<file>\\t<item>` per line; regenerate deliberate changes with\n\
         # `cargo xtask deep-lint --update-surface` so API drift shows up in review.\n",
    );
    for e in entries {
        out.push_str(e);
        out.push('\n');
    }
    out
}

/// Parse a lock file back to its entries (comments and blanks
/// skipped).
#[must_use]
pub fn parse(text: &str) -> Vec<String> {
    let mut out: Vec<String> = text
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(ToString::to_string)
        .collect();
    out.sort();
    out.dedup();
    out
}

fn split_entry(entry: &str) -> (&str, &str) {
    entry.split_once('\t').unwrap_or((entry, ""))
}

/// Set-diff the current surface against the recorded lock: one
/// `api-surface` violation per added (undeclared new API) or removed
/// (undeclared break) entry.
#[must_use]
pub fn diff(current: &[String], recorded: &[String]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for entry in current {
        if recorded.binary_search(entry).is_err() {
            let (file, item) = split_entry(entry);
            violations.push(Violation {
                file: file.to_string(),
                line: 1,
                rule: "api-surface".into(),
                snippet: item.to_string(),
                hint: format!(
                    "public item not in {SURFACE_FILE}: accept the new API with \
                     `cargo xtask deep-lint --update-surface`"
                ),
            });
        }
    }
    for entry in recorded {
        if current.binary_search(entry).is_err() {
            let (file, item) = split_entry(entry);
            violations.push(Violation {
                file: file.to_string(),
                line: 1,
                rule: "api-surface".into(),
                snippet: item.to_string(),
                hint: "locked public item is gone (renamed, hidden or re-signatured): restore \
                       it, or declare the break with `cargo xtask deep-lint --update-surface`"
                    .to_string(),
            });
        }
    }
    violations.sort_by(|a, b| (&a.file, &a.snippet, &a.hint).cmp(&(&b.file, &b.snippet, &b.hint)));
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn surface_of(rel: &str, src: &str) -> Vec<String> {
        current(&[parse_file(rel, src, false)])
    }

    #[test]
    fn only_sim_crate_pub_items_enter_the_surface() {
        let src = "pub struct Meter;\npub(crate) struct Hidden;\nstruct Private;\n";
        let s = surface_of("crates/alloc/src/lib.rs", src);
        assert_eq!(s, vec!["crates/alloc/src/lib.rs\tpub struct Meter"]);
        assert!(surface_of("crates/cli/src/lib.rs", src).is_empty());
        assert!(surface_of("crates/alloc/tests/t.rs", src).is_empty());
    }

    #[test]
    fn render_parse_roundtrip() {
        let entries = vec![
            "crates/mem/src/lib.rs\tpub struct Cache".to_string(),
            "crates/mem/src/lib.rs\tpub fn Cache::new(ways: usize) -> Cache".to_string(),
        ];
        assert_eq!(parse(&render(&entries)), {
            let mut e = entries.clone();
            e.sort();
            e
        });
    }

    #[test]
    fn drift_is_reported_in_both_directions() {
        let recorded = {
            let mut e = vec![
                "crates/mem/src/lib.rs\tpub fn gone()".to_string(),
                "crates/mem/src/lib.rs\tpub struct Cache".to_string(),
            ];
            e.sort();
            e
        };
        let current = {
            let mut e = vec![
                "crates/mem/src/lib.rs\tpub fn fresh()".to_string(),
                "crates/mem/src/lib.rs\tpub struct Cache".to_string(),
            ];
            e.sort();
            e
        };
        let v = diff(&current, &recorded);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "api-surface"));
        assert!(v
            .iter()
            .any(|v| v.snippet == "pub fn fresh()" && v.hint.contains("not in")));
        assert!(v
            .iter()
            .any(|v| v.snippet == "pub fn gone()" && v.hint.contains("gone")));
        assert!(diff(&current, &current).is_empty());
    }

    #[test]
    fn signature_changes_show_as_paired_drift() {
        let old = surface_of(
            "crates/mem/src/lib.rs",
            "pub fn replay(x: u64) -> u64 { x }\n",
        );
        let new = surface_of(
            "crates/mem/src/lib.rs",
            "pub fn replay(x: u64, y: u64) -> u64 { x + y }\n",
        );
        let v = diff(&new, &old);
        assert_eq!(v.len(), 2, "old sig gone + new sig undeclared: {v:?}");
    }
}
