//! Determinism taint propagation over the workspace call graph.
//!
//! Sources (wall-clock reads, ambient randomness, environment sniffs,
//! pointer-address observation, unordered-iteration float reductions —
//! see [`graph`](crate::graph)) taint the function containing them,
//! and taint flows **callee → caller**: if `helper_b` reads the clock
//! and `helper_a` calls it, every caller of `helper_a` is tainted too.
//! A `// lint: taint-barrier(<why>)` on a `fn` lets the function stay
//! tainted internally but stops the taint from reaching its callers;
//! a barrier on the source line suppresses the source itself.
//!
//! A violation is any **sim entry point** (the [`ROOTS`] table:
//! `FrameSim::try_run*`, `Simulator::simulate*`, sweep metric
//! emission) that ends up tainted — reported with the shortest
//! offending call chain so the fix site is obvious. Barriers that
//! guard nothing are violations too (`taint-barrier` rule), mirroring
//! the tier-1 stale-allow check.

use crate::graph::{BarrierTarget, Graph};
use crate::report::Violation;
use crate::rules::{classify, FileClass};
use std::collections::VecDeque;

/// Sim entry points: `(impl type, fn name)`. Tainting any of these
/// means a published metric can depend on wall time, addresses or
/// iteration order.
pub const ROOTS: &[(&str, &str)] = &[
    ("FrameSim", "run"),
    ("FrameSim", "run_with_resolution"),
    ("FrameSim", "try_run"),
    ("FrameSim", "try_run_with_resolution"),
    ("FrameSim", "try_run_probed"),
    ("FrameSim", "try_run_prefixed"),
    ("FrameSim", "try_run_prefixed_probed"),
    ("Simulator", "simulate"),
    ("Simulator", "simulate_sequence"),
    ("SweepJob", "simulate"),
    ("SweepJob", "simulate_with"),
    ("JobMetrics", "of"),
];

/// The taint pass result.
#[derive(Debug, Default)]
pub struct TaintOutcome {
    /// `tainted[f]`: fn `f` contains or transitively calls an
    /// unsuppressed source.
    pub tainted: Vec<bool>,
    /// Tainted roots (rule `deep-determinism-taint`) and stale
    /// barriers (rule `taint-barrier`), in deterministic order.
    pub violations: Vec<Violation>,
    /// Used barriers, as `(file, line, why)` — these are the deep
    /// escape hatches the budget table counts.
    pub used_barriers: Vec<(String, usize, String)>,
}

/// Indices of root fns in the graph (sim-crate, non-test definitions
/// matching [`ROOTS`]).
#[must_use]
pub fn root_fns(g: &Graph) -> Vec<usize> {
    (0..g.fns.len())
        .filter(|&i| {
            let f = &g.fns[i];
            !f.is_test
                && classify(&f.file) == FileClass::SimLib
                && f.impl_type.as_deref().is_some_and(|ty| {
                    ROOTS
                        .iter()
                        .any(|(rty, rname)| *rty == ty && *rname == f.name)
                })
        })
        .collect()
}

fn propagate(g: &Graph) -> Vec<bool> {
    let mut tainted = vec![false; g.fns.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (idx, f) in g.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        if f.sources.iter().any(|&s| g.sources[s].suppressed.is_none()) {
            tainted[idx] = true;
            queue.push_back(idx);
        }
    }
    while let Some(f) = queue.pop_front() {
        if g.fns[f].barrier.is_some() {
            continue; // tainted inside, but the barrier holds it there
        }
        for &caller in &g.callers[f] {
            if !tainted[caller] && !g.fns[caller].is_test {
                tainted[caller] = true;
                queue.push_back(caller);
            }
        }
    }
    tainted
}

/// Shortest call chain from `from` to an unsuppressed source, walking
/// forward edges through tainted, barrier-free callees. Returns the
/// rendered chain, or `None` when `from` is not tainted.
#[must_use]
pub fn chain_from(g: &Graph, tainted: &[bool], from: usize) -> Option<String> {
    if !tainted.get(from).copied().unwrap_or(false) {
        return None;
    }
    // BFS: predecessor map over fn indices, recording the call line.
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; g.fns.len()];
    let mut seen = vec![false; g.fns.len()];
    let mut queue = VecDeque::new();
    seen[from] = true;
    queue.push_back(from);
    let mut terminal: Option<usize> = None;
    while let Some(f) = queue.pop_front() {
        if g.fns[f]
            .sources
            .iter()
            .any(|&s| g.sources[s].suppressed.is_none())
        {
            terminal = Some(f);
            break;
        }
        for &(callee, line) in &g.callees[f] {
            // Taint cannot have flowed out of a barrier fn, so a path
            // through one would be a false explanation.
            if !seen[callee] && tainted[callee] && g.fns[callee].barrier.is_none() {
                seen[callee] = true;
                prev[callee] = Some((f, line));
                queue.push_back(callee);
            }
        }
    }
    let end = terminal?;
    // Reconstruct from -> .. -> end.
    let mut hops: Vec<(usize, Option<usize>)> = Vec::new(); // (fn, call line in caller)
    let mut cur = end;
    while cur != from {
        let (p, line) = prev[cur]?;
        hops.push((cur, Some(line)));
        cur = p;
    }
    hops.push((from, None));
    hops.reverse();
    let mut out = String::new();
    for (i, (f, call_line)) in hops.iter().enumerate() {
        if i > 0 {
            out.push_str(" -> ");
        }
        out.push_str(&g.name_of(*f));
        match call_line {
            Some(line) => {
                // The call line lives in the caller's file.
                let caller = hops[i - 1].0;
                out.push_str(&format!(" [{}:{line}]", g.fns[caller].file));
            }
            None => out.push_str(&format!(" [{}:{}]", g.fns[*f].file, g.fns[*f].line)),
        }
    }
    // Name the source at the end of the chain.
    if let Some(src) = g.fns[end]
        .sources
        .iter()
        .map(|&s| &g.sources[s])
        .find(|s| s.suppressed.is_none())
    {
        out.push_str(&format!(
            " -> {} `{}` [{}:{}]",
            src.kind, src.needle, src.file, src.line
        ));
    }
    Some(out)
}

/// Run the taint pass.
#[must_use]
pub fn analyze(g: &Graph) -> TaintOutcome {
    let tainted = propagate(g);
    let mut violations = Vec::new();

    for root in root_fns(g) {
        if !tainted[root] {
            continue;
        }
        let chain = chain_from(g, &tainted, root).unwrap_or_else(|| g.name_of(root));
        violations.push(Violation {
            file: g.fns[root].file.clone(),
            line: g.fns[root].line,
            rule: "deep-determinism-taint".into(),
            snippet: g.name_of(root),
            hint: format!(
                "sim entry point reaches a nondeterminism source: {chain}; make the callee \
                 deterministic, or annotate the boundary with \
                 `// lint: taint-barrier(<why>)` and budget it in lint-budgets.toml"
            ),
        });
    }

    let mut used_barriers = Vec::new();
    for b in &g.barriers {
        let used = match &b.target {
            BarrierTarget::Lines(srcs) => !srcs.is_empty(),
            BarrierTarget::Func(idx) => tainted[*idx],
            BarrierTarget::Unattached => false,
        };
        if used {
            used_barriers.push((b.file.clone(), b.line, b.why.clone()));
        } else {
            let detail = match &b.target {
                BarrierTarget::Func(idx) => {
                    format!("`{}` neither contains nor receives taint", g.name_of(*idx))
                }
                _ => "no nondeterminism source on this or the next line, and no `fn` on the \
                      three lines below"
                    .to_string(),
            };
            violations.push(Violation {
                file: b.file.clone(),
                line: b.line,
                rule: "taint-barrier".into(),
                snippet: format!("// lint: taint-barrier({})", b.why),
                hint: format!("stale taint-barrier: {detail}; remove it"),
            });
        }
    }

    violations.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    TaintOutcome {
        tainted,
        violations,
        used_barriers,
    }
}

/// `--why <symbol>`: explain a function's taint status. `symbol` is a
/// bare fn name or `Type::name`.
#[must_use]
pub fn why(g: &Graph, tainted: &[bool], symbol: &str) -> String {
    let matches = g.resolve(symbol);
    if matches.is_empty() {
        return format!("`{symbol}`: no such function in the workspace\n");
    }
    let mut out = String::new();
    for idx in matches {
        let name = g.name_of(idx);
        let loc = format!("{}:{}", g.fns[idx].file, g.fns[idx].line);
        if let Some(why) = &g.fns[idx].barrier {
            out.push_str(&format!("`{name}` ({loc}): taint-barrier({why})\n"));
        }
        match chain_from(g, tainted, idx) {
            Some(chain) => {
                out.push_str(&format!("`{name}` ({loc}) is TAINTED:\n  {chain}\n"));
            }
            None => out.push_str(&format!("`{name}` ({loc}) is clean\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::parse::{parse_file, ParsedFile};

    fn build(srcs: &[(&str, &str)]) -> Graph {
        let files: Vec<ParsedFile> = srcs
            .iter()
            .map(|(rel, src)| parse_file(rel, src, false))
            .collect();
        let flags = vec![false; files.len()];
        Graph::build(&files, &flags)
    }

    const TWO_HOP: &str = "pub struct FrameSim;\n\
         impl FrameSim {\n\
             pub fn try_run() { helper_a(); }\n\
         }\n\
         fn helper_a() { helper_b(); }\n\
         fn helper_b() { let t = Instant::now(); }\n";

    #[test]
    fn two_hop_taint_reaches_the_root_with_a_chain() {
        let g = build(&[("crates/pipeline/src/lib.rs", TWO_HOP)]);
        let out = analyze(&g);
        assert_eq!(out.violations.len(), 1, "{:?}", out.violations);
        let v = &out.violations[0];
        assert_eq!(v.rule, "deep-determinism-taint");
        assert_eq!(v.snippet, "FrameSim::try_run");
        assert!(v.hint.contains("helper_a"), "{}", v.hint);
        assert!(v.hint.contains("helper_b"), "{}", v.hint);
        assert!(v.hint.contains("Instant::now"), "{}", v.hint);
    }

    #[test]
    fn roots_only_count_in_sim_crates() {
        let g = build(&[("crates/cli/src/lib.rs", TWO_HOP)]);
        let out = analyze(&g);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn fn_barrier_stops_propagation_and_is_counted_used() {
        let src = "pub struct FrameSim;\n\
             impl FrameSim {\n\
                 pub fn try_run() { fault_hooks(); }\n\
             }\n\
             // lint: taint-barrier(wall stall only, never read back)\n\
             fn fault_hooks() { std::thread::sleep(d); }\n";
        let g = build(&[("crates/pipeline/src/lib.rs", src)]);
        let out = analyze(&g);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.used_barriers.len(), 1);
    }

    #[test]
    fn line_barrier_suppresses_the_source() {
        let src = "pub struct FrameSim;\n\
             impl FrameSim {\n\
                 pub fn try_run() {\n\
                     // lint: taint-barrier(jitter shifts wall time only)\n\
                     std::thread::sleep(d);\n\
                 }\n\
             }\n";
        let g = build(&[("crates/pipeline/src/lib.rs", src)]);
        let out = analyze(&g);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.used_barriers.len(), 1);
    }

    #[test]
    fn stale_barriers_are_violations() {
        let src = "// lint: taint-barrier(guards nothing at all)\n\
             fn clean() { let x = 1; }\n";
        let g = build(&[("crates/pipeline/src/lib.rs", src)]);
        let out = analyze(&g);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].rule, "taint-barrier");
        assert!(out.used_barriers.is_empty());
    }

    #[test]
    fn supervisor_side_clock_use_never_taints_roots() {
        // Clock use in a *caller* of the root must not flow back down.
        let src = "pub struct SweepJob;\n\
             impl SweepJob {\n\
                 pub fn simulate(&self) -> u64 { 1 }\n\
             }\n\
             pub fn run_attempt(j: &SweepJob) -> u64 {\n\
                 let t = Instant::now();\n\
                 j.simulate()\n\
             }\n";
        let g = build(&[("crates/core/src/lib.rs", src)]);
        let out = analyze(&g);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let attempt = g.resolve("run_attempt")[0];
        assert!(out.tainted[attempt], "the supervisor fn itself is tainted");
    }

    #[test]
    fn why_prints_chain_for_tainted_and_clean_status() {
        let g = build(&[("crates/pipeline/src/lib.rs", TWO_HOP)]);
        let out = analyze(&g);
        let w = why(&g, &out.tainted, "FrameSim::try_run");
        assert!(w.contains("TAINTED"), "{w}");
        assert!(w.contains("helper_b"), "{w}");
        let w = why(&g, &out.tainted, "nope_no_such_fn");
        assert!(w.contains("no such function"), "{w}");
    }
}
