//! `cargo xtask bench-compare` — the CI perf gate.
//!
//! Compares two `BENCH_sweep.json` reports (written by
//! `sweep_timing --quick --out …`): the step *fails* only when a
//! per-job allocator high-water mark regresses more than
//! [`FAIL_THRESHOLD`] over the baseline — peak allocation is a
//! deterministic property of the (serial) simulation, so exceeding
//! the threshold is a real regression no matter which runner the job
//! landed on. Wall-clock figures (per-job and total) are emitted as
//! GitHub `::warning::` annotations only: the checked-in baseline was
//! timed on one machine, and shared CI runners vary enough between
//! runs that a hard wall-clock gate would fail (or silently slacken)
//! on runner lottery rather than real regressions.

use std::collections::BTreeMap;

/// Regression that fails the step (peak-alloc) or warns (wall-clock):
/// current > baseline × (1 + threshold).
pub const FAIL_THRESHOLD: f64 = 0.25;

/// Per-job regressions below this floor (ms / bytes) are ignored:
/// timer granularity, not drift.
const MIN_JOB_WALL_MS: u64 = 20;
const MIN_PEAK_BYTES: u64 = 1 << 20;

/// One job's numbers from a bench report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchJob {
    /// Wall-clock milliseconds.
    pub wall_ms: u64,
    /// Allocator high-water mark in bytes.
    pub peak_alloc_bytes: u64,
}

/// A parsed `BENCH_sweep.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// Whole-sweep wall-clock milliseconds.
    pub total_wall_ms: u64,
    /// Per-job numbers, keyed by job key.
    pub jobs: BTreeMap<String, BenchJob>,
}

/// Parse a bench report (the subset of JSON `sweep_timing` emits).
///
/// # Errors
///
/// Returns a message when the required fields are missing or
/// malformed.
pub fn parse_report(text: &str) -> Result<BenchReport, String> {
    let total_wall_ms =
        field_u64(text, "total_wall_ms").ok_or("missing total_wall_ms".to_string())?;
    let mut jobs = BTreeMap::new();
    for chunk in text.split("{\"key\":\"").skip(1) {
        let key = chunk
            .split('"')
            .next()
            .ok_or("unterminated job key".to_string())?
            .to_string();
        let wall_ms =
            field_u64(chunk, "wall_ms").ok_or_else(|| format!("job `{key}`: missing wall_ms"))?;
        let peak_alloc_bytes = field_u64(chunk, "peak_alloc_bytes")
            .ok_or_else(|| format!("job `{key}`: missing peak_alloc_bytes"))?;
        jobs.insert(
            key,
            BenchJob {
                wall_ms,
                peak_alloc_bytes,
            },
        );
    }
    Ok(BenchReport {
        total_wall_ms,
        jobs,
    })
}

fn field_u64(text: &str, field: &str) -> Option<u64> {
    let tag = format!("\"{field}\":");
    let start = text.find(&tag)? + tag.len();
    let digits: String = text[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The verdict of one comparison.
#[derive(Debug)]
pub struct Comparison {
    /// `true` when any per-job allocator high-water mark regresses
    /// more than [`FAIL_THRESHOLD`] over the baseline.
    pub fail: bool,
    /// Annotation lines (`::warning::…` / `::error::…`) plus the
    /// summary line, in print order.
    pub lines: Vec<String>,
}

fn regressed(current: u64, baseline: u64, floor: u64) -> bool {
    current.max(baseline) >= floor && current as f64 > baseline as f64 * (1.0 + FAIL_THRESHOLD)
}

/// Compare a current report against a baseline.
#[must_use]
pub fn compare(current: &BenchReport, baseline: &BenchReport) -> Comparison {
    let mut lines = Vec::new();
    let mut fail = false;
    for (key, cur) in &current.jobs {
        let Some(base) = baseline.jobs.get(key) else {
            // New job with no baseline entry: surface it (so a stale
            // baseline is visible in the CI log) but never fail — new
            // sweep legs must not need a lockstep baseline refresh.
            lines.push(format!(
                "::warning::bench {key}: not in baseline (new job?) — \
                 refresh results/BENCH_baseline.json to gate it"
            ));
            continue;
        };
        if regressed(cur.wall_ms, base.wall_ms, MIN_JOB_WALL_MS) {
            lines.push(format!(
                "::warning::bench {key}: wall {} ms vs baseline {} ms",
                cur.wall_ms, base.wall_ms
            ));
        }
        if regressed(cur.peak_alloc_bytes, base.peak_alloc_bytes, MIN_PEAK_BYTES) {
            fail = true;
            lines.push(format!(
                "::error::bench {key}: peak alloc {} bytes vs baseline {} bytes (> +25%)",
                cur.peak_alloc_bytes, base.peak_alloc_bytes
            ));
        }
    }
    let pct = if baseline.total_wall_ms == 0 {
        0.0
    } else {
        (current.total_wall_ms as f64 / baseline.total_wall_ms as f64 - 1.0) * 100.0
    };
    if current.total_wall_ms as f64 > baseline.total_wall_ms as f64 * (1.0 + FAIL_THRESHOLD) {
        lines.push(format!(
            "::warning::bench: total wall {} ms vs baseline {} ms ({pct:+.1}%) — \
             wall-clock is runner-dependent, so this only warns",
            current.total_wall_ms, baseline.total_wall_ms
        ));
    }
    lines.push(format!(
        "bench-compare: total {} ms vs baseline {} ms ({pct:+.1}%) — {}",
        current.total_wall_ms,
        baseline.total_wall_ms,
        if fail {
            "FAIL (peak alloc regression > +25%)"
        } else {
            "ok (gate is peak-alloc-only; wall-clock drift warns)"
        }
    ));
    Comparison { fail, lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"total_wall_ms":1000,"lane_threads":1,"jobs":[
  {"key":"CCS|a|base|480x192#0","wall_ms":100,"peak_alloc_bytes":5000000},
  {"key":"GTr|b|base|480x192#0","wall_ms":50,"peak_alloc_bytes":3000000}
]}"#;

    #[test]
    fn parses_totals_and_jobs() {
        let r = parse_report(SAMPLE).unwrap();
        assert_eq!(r.total_wall_ms, 1000);
        assert_eq!(r.jobs.len(), 2);
        assert_eq!(r.jobs["CCS|a|base|480x192#0"].wall_ms, 100);
        assert_eq!(r.jobs["GTr|b|base|480x192#0"].peak_alloc_bytes, 3_000_000);
        assert!(parse_report("{}").is_err());
        assert!(parse_report("{\"total_wall_ms\":5,\"jobs\":[{\"key\":\"x\"}]}").is_err());
    }

    #[test]
    fn within_threshold_passes_without_warnings() {
        let base = parse_report(SAMPLE).unwrap();
        let mut cur = base.clone();
        cur.total_wall_ms = 1200; // +20%
        let c = compare(&cur, &base);
        assert!(!c.fail);
        assert_eq!(c.lines.len(), 1, "summary only: {:?}", c.lines);
        assert!(c.lines[0].contains("+20.0%"));
    }

    #[test]
    fn total_wall_regression_warns_but_does_not_fail() {
        let base = parse_report(SAMPLE).unwrap();
        let mut cur = base.clone();
        cur.total_wall_ms = 1300; // +30%
        let c = compare(&cur, &base);
        assert!(!c.fail, "wall-clock is runner lottery, never a hard gate");
        assert_eq!(c.lines.len(), 2, "{:?}", c.lines);
        assert!(c.lines[0].starts_with("::warning::"));
        assert!(c.lines[0].contains("total wall 1300 ms"));
        assert!(c.lines.last().unwrap().contains("ok"));
    }

    #[test]
    fn per_job_wall_regressions_warn_but_do_not_fail() {
        let base = parse_report(SAMPLE).unwrap();
        let mut cur = base.clone();
        cur.jobs.get_mut("CCS|a|base|480x192#0").unwrap().wall_ms = 200;
        let c = compare(&cur, &base);
        assert!(!c.fail, "per-job wall drift never fails the gate");
        let warnings: Vec<&String> = c
            .lines
            .iter()
            .filter(|l| l.starts_with("::warning::"))
            .collect();
        assert_eq!(warnings.len(), 1, "{:?}", c.lines);
        assert!(warnings[0].contains("wall 200 ms"));
    }

    #[test]
    fn peak_alloc_regression_fails_deterministically() {
        let base = parse_report(SAMPLE).unwrap();
        let mut cur = base.clone();
        cur.jobs
            .get_mut("GTr|b|base|480x192#0")
            .unwrap()
            .peak_alloc_bytes = 9_000_000;
        let c = compare(&cur, &base);
        assert!(c.fail, "peak alloc is deterministic: regression is real");
        let errors: Vec<&String> = c
            .lines
            .iter()
            .filter(|l| l.starts_with("::error::"))
            .collect();
        assert_eq!(errors.len(), 1, "{:?}", c.lines);
        assert!(errors[0].contains("peak alloc 9000000"));
        assert!(c.lines.last().unwrap().contains("FAIL"));
    }

    #[test]
    fn tiny_absolute_numbers_are_not_noise_flagged() {
        let base = parse_report(
            "{\"total_wall_ms\":10,\"jobs\":[{\"key\":\"a\",\"wall_ms\":2,\"peak_alloc_bytes\":100}]}",
        )
        .unwrap();
        let cur = parse_report(
            "{\"total_wall_ms\":10,\"jobs\":[{\"key\":\"a\",\"wall_ms\":9,\"peak_alloc_bytes\":900}]}",
        )
        .unwrap();
        let c = compare(&cur, &base);
        assert!(!c.fail);
        assert_eq!(c.lines.len(), 1, "below the floors: {:?}", c.lines);
    }

    #[test]
    fn new_and_removed_jobs_are_tolerated() {
        let base = parse_report(SAMPLE).unwrap();
        let cur = parse_report(
            "{\"total_wall_ms\":900,\"jobs\":[{\"key\":\"fresh\",\"wall_ms\":999,\"peak_alloc_bytes\":1}]}",
        )
        .unwrap();
        let c = compare(&cur, &base);
        assert!(!c.fail, "a job missing from the baseline must not fail");
        // One warning naming the unknown job, plus the summary line.
        assert_eq!(c.lines.len(), 2, "{:?}", c.lines);
        assert!(
            c.lines[0].starts_with("::warning::bench fresh: not in baseline"),
            "{:?}",
            c.lines
        );
    }
}
