//! `cargo xtask deep-lint` — the call-graph analysis tier.
//!
//! Orchestrates the three deep passes over the workspace
//! (docs/LINTS.md "Deep lint: call-graph passes"):
//!
//! 1. **determinism taint** ([`taint`](crate::taint)) — transitive
//!    source-to-sim-entry-point reachability over the call graph;
//! 2. **unsafe audit** — every non-test `unsafe` block/fn/impl needs
//!    a `// SAFETY:` justification; the full inventory ships in the
//!    JSON report;
//! 3. **API-surface lock** ([`surface`](crate::surface)) — undeclared
//!    public-item drift in the sim crates fails the run.
//!
//! Used taint-barriers are budgeted per crate in the
//! `[deep-allow-budgets]` table of `lint-budgets.toml`, with the same
//! ratchet-only rule as tier 1.

use crate::budgets;
use crate::graph::Graph;
use crate::parse::{parse_file, ParsedFile};
use crate::report::{json_str, Violation};
use crate::rules::{classify, FileClass};
use crate::surface;
use crate::taint;
use crate::walk;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Flags for one deep-lint run.
#[derive(Debug, Default)]
pub struct DeepOptions {
    /// Rewrite `api-surface.lock` from the current surface instead of
    /// diffing against it.
    pub update_surface: bool,
    /// Ratchet the `[deep-allow-budgets]` table before checking.
    pub update_budgets: bool,
    /// Explain this symbol's taint status (`--why`).
    pub why: Option<String>,
}

/// One entry of the unsafe inventory.
#[derive(Debug, Clone)]
pub struct UnsafeEntry {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// `block` / `fn` / `impl`.
    pub kind: &'static str,
    /// Enclosing function or impl'd type.
    pub context: String,
    /// Carries a `// SAFETY:` justification.
    pub justified: bool,
}

/// One used taint-barrier (a deep escape hatch).
#[derive(Debug, Clone)]
pub struct BarrierEntry {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the annotation.
    pub line: usize,
    /// Its justification.
    pub why: String,
}

/// The whole deep-lint run.
#[derive(Debug, Default)]
pub struct DeepReport {
    /// Number of `.rs` files parsed.
    pub files_scanned: usize,
    /// Function nodes in the call graph.
    pub fn_count: usize,
    /// Call edges resolved to workspace functions.
    pub edge_count: usize,
    /// All violations across the three passes, in path/line order.
    pub violations: Vec<Violation>,
    /// Used taint-barriers (budgeted per crate).
    pub barriers: Vec<BarrierEntry>,
    /// Every non-test unsafe site, justified or not.
    pub unsafe_inventory: Vec<UnsafeEntry>,
    /// `--why` explanation, when requested.
    pub why: Option<String>,
}

impl DeepReport {
    /// No violations?
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable rendering.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if let Some(why) = &self.why {
            out.push_str(why);
        }
        for v in &self.violations {
            let _ = writeln!(out, "error[{}]: {}:{}", v.rule, v.file, v.line);
            if !v.snippet.is_empty() {
                let _ = writeln!(out, "    {}", v.snippet);
            }
            let _ = writeln!(out, "    hint: {}", v.hint);
        }
        let _ = writeln!(
            out,
            "{} file(s) parsed, {} fn(s), {} call edge(s), {} violation(s), {} taint-barrier(s), \
             {} unsafe site(s)",
            self.files_scanned,
            self.fn_count,
            self.edge_count,
            self.violations.len(),
            self.barriers.len(),
            self.unsafe_inventory.len(),
        );
        out
    }

    /// Machine-readable rendering for CI (`deep-lint-report.json`).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"ok\": {},", self.ok());
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"fn_count\": {},", self.fn_count);
        let _ = writeln!(out, "  \"edge_count\": {},", self.edge_count);
        let _ = writeln!(out, "  \"violation_count\": {},", self.violations.len());
        let _ = writeln!(out, "  \"barrier_count\": {},", self.barriers.len());
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"snippet\": {}, \"hint\": {}}}",
                json_str(&v.file),
                v.line,
                json_str(&v.rule),
                json_str(&v.snippet),
                json_str(&v.hint),
            );
        }
        out.push_str(if self.violations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"barriers\": [");
        for (i, b) in self.barriers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"why\": {}}}",
                json_str(&b.file),
                b.line,
                json_str(&b.why),
            );
        }
        out.push_str(if self.barriers.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"unsafe_inventory\": [");
        for (i, u) in self.unsafe_inventory.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"kind\": {}, \"context\": {}, \
                 \"justified\": {}}}",
                json_str(&u.file),
                u.line,
                json_str(u.kind),
                json_str(&u.context),
                u.justified,
            );
        }
        out.push_str(if self.unsafe_inventory.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// Parse every workspace source under `root`.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable tree or file).
pub fn parse_root(root: &Path) -> io::Result<(Vec<ParsedFile>, Vec<bool>)> {
    let mut files = Vec::new();
    let mut test_flags = Vec::new();
    for (rel, path) in walk::rust_sources(root)? {
        let source = fs::read_to_string(&path)
            .map_err(|e| io::Error::other(format!("{}: {e}", path.display())))?;
        let whole_test = classify(&rel) == FileClass::Test;
        files.push(parse_file(&rel, &source, whole_test));
        test_flags.push(whole_test);
    }
    Ok((files, test_flags))
}

/// Run the deep-lint passes over the workspace under `root`.
///
/// # Errors
///
/// Propagates filesystem errors and a malformed budget file.
pub fn deep_lint_root(root: &Path, opts: &DeepOptions) -> io::Result<DeepReport> {
    let (files, test_flags) = parse_root(root)?;
    let g = Graph::build(&files, &test_flags);

    let mut report = DeepReport {
        files_scanned: files.len(),
        fn_count: g.fns.len(),
        edge_count: g.callees.iter().map(Vec::len).sum(),
        ..DeepReport::default()
    };

    // Pass 1: determinism taint.
    let outcome = taint::analyze(&g);
    report.violations.extend(outcome.violations);
    for (file, line, why) in outcome.used_barriers {
        report.barriers.push(BarrierEntry { file, line, why });
    }
    if let Some(symbol) = &opts.why {
        report.why = Some(taint::why(&g, &outcome.tainted, symbol));
    }

    // Pass 2: unsafe audit.
    for pf in &files {
        if classify(&pf.rel) == FileClass::Test {
            continue;
        }
        for u in &pf.unsafe_sites {
            if u.in_test {
                continue;
            }
            report.unsafe_inventory.push(UnsafeEntry {
                file: pf.rel.clone(),
                line: u.line,
                kind: u.kind,
                context: u.context.clone(),
                justified: u.justified,
            });
            if !u.justified {
                report.violations.push(Violation {
                    file: pf.rel.clone(),
                    line: u.line,
                    rule: "unsafe-safety".into(),
                    snippet: format!("unsafe {} in {}", u.kind, u.context),
                    hint: "every unsafe site needs a `// SAFETY:` comment (same line or \
                           directly above) stating the invariant that makes it sound"
                        .into(),
                });
            }
        }
    }

    // Pass 3: API-surface lock.
    let current = surface::current(&files);
    let lock_path = root.join(surface::SURFACE_FILE);
    if opts.update_surface {
        fs::write(&lock_path, surface::render(&current))?;
    } else if lock_path.exists() {
        let recorded = surface::parse(&fs::read_to_string(&lock_path)?);
        report.violations.extend(surface::diff(&current, &recorded));
    }
    // Trees without a lock (fixtures, fresh checkouts) skip the check,
    // mirroring the budget-file behavior.

    // Deep budgets: used barriers per crate, ratchet-only.
    let budget_path = root.join(budgets::BUDGET_FILE);
    if budget_path.exists() {
        let mut recorded =
            budgets::parse_file(&fs::read_to_string(&budget_path)?).map_err(io::Error::other)?;
        let mut current_counts: BTreeMap<String, usize> = BTreeMap::new();
        for b in &report.barriers {
            *current_counts
                .entry(budgets::bucket_of(&b.file))
                .or_insert(0) += 1;
        }
        if opts.update_budgets {
            recorded.deep = budgets::tighten(&recorded.deep, &current_counts);
            fs::write(&budget_path, budgets::render_file(&recorded))?;
        }
        report.violations.extend(budgets::check_counts(
            &current_counts,
            &recorded.deep,
            "used taint-barrier",
            "cargo xtask deep-lint --update-budgets",
        ));
    }

    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
        .barriers
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
        .unsafe_inventory
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_carries_all_three_sections() {
        let mut r = DeepReport::default();
        r.violations.push(Violation {
            file: "crates/pipeline/src/frame.rs".into(),
            line: 3,
            rule: "deep-determinism-taint".into(),
            snippet: "FrameSim::try_run".into(),
            hint: "chain".into(),
        });
        r.barriers.push(BarrierEntry {
            file: "crates/alloc/src/lib.rs".into(),
            line: 9,
            why: "identity key only".into(),
        });
        r.unsafe_inventory.push(UnsafeEntry {
            file: "crates/alloc/src/lib.rs".into(),
            line: 20,
            kind: "fn",
            context: "CountingAlloc::alloc".into(),
            justified: true,
        });
        let j = r.render_json();
        assert!(j.contains("\"ok\": false"));
        assert!(j.contains("\"barriers\": ["));
        assert!(j.contains("\"unsafe_inventory\": ["));
        assert!(j.contains("\"justified\": true"));
        assert!(j.contains("deep-determinism-taint"));
    }

    #[test]
    fn text_report_summarizes_counts() {
        let r = DeepReport {
            files_scanned: 3,
            fn_count: 10,
            edge_count: 7,
            ..DeepReport::default()
        };
        let t = r.render_text();
        assert!(t.contains("3 file(s) parsed"), "{t}");
        assert!(t.contains("10 fn(s)"), "{t}");
        assert!(t.contains("0 violation(s)"), "{t}");
    }
}
