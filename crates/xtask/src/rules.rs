//! The rule table and per-file checker.
//!
//! Three rule families (docs/LINTS.md):
//!
//! * **determinism** (`determinism-hash`, `determinism-rng`,
//!   `determinism-clock`, `determinism-env`) — simulation crates must
//!   not consult unordered containers, ambient randomness, the wall
//!   clock or the process environment: one stray `HashMap` iteration
//!   breaks the bit-identity that makes the paper numbers checkable.
//! * **no-panic** (`no-panic`) — non-test library code must surface
//!   typed errors instead of panicking, unless a site carries a
//!   `// lint: allow(no-panic) -- <why>` justification.
//! * **determinism-iter** (`determinism-iter`) — a structural check
//!   (in [`check_file`], not the pattern table): a float reduction
//!   (`.sum::<f64>()`, `.fold(0.0, ..)`, …) within three lines of an
//!   unordered container (`HashMap`, `HashSet`, `BinaryHeap`) is
//!   flagged even where the container itself carries a membership-only
//!   `allow(determinism-hash)`: float addition is not associative, so
//!   reducing over unspecified iteration order yields run-dependent
//!   sums. Reductions over slices/`Vec`s/`BTreeMap`s are ordered and
//!   never flagged.
//! * **typed-error parity** (`typed-error-parity`) — every
//!   `#[should_panic]` test names a sibling test pinning the typed
//!   error variant via `// lint: typed-sibling(<test_fn>)`.
//!
//! Annotation hygiene itself is checked as `lint-annotation`
//! (malformed or stale annotations are violations too).

use crate::sanitize::sanitize;

/// Crate directories whose `src/` trees are simulation code and get
/// the determinism rules. This is a superset of the issue's floor
/// (`core::{sim,metrics,experiments}`): all of `core` is scanned, with
/// the sweep watchdog covered by the built-in allowlist below.
pub const SIM_CRATES: &[&str] = &[
    "gmath", "mem", "texture", "sched", "scene", "pipeline", "trace", "core", "alloc", "obs",
];

/// Where a rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleScope {
    /// Non-test lines of simulation-crate library code.
    Sim,
    /// Non-test lines of any workspace library code.
    Lib,
}

/// A literal pattern with optional identifier-boundary checks.
#[derive(Debug)]
pub struct Pattern {
    /// Substring to search for in sanitized code.
    pub needle: &'static str,
    /// Require a non-identifier character (or line start) before.
    pub word_start: bool,
    /// Require a non-identifier character (or line end) after.
    pub word_end: bool,
}

/// One lint rule: an id, a scope, the patterns that trigger it and a
/// fix hint.
#[derive(Debug)]
pub struct Rule {
    /// Stable rule id (used in `allow(...)` annotations and reports).
    pub id: &'static str,
    /// Scope the rule applies to.
    pub scope: RuleScope,
    /// Any match on a non-test line is a violation.
    pub patterns: &'static [Pattern],
    /// Suggested fix, printed with each violation.
    pub hint: &'static str,
}

const fn word(needle: &'static str) -> Pattern {
    Pattern {
        needle,
        word_start: true,
        word_end: true,
    }
}

const fn prefix(needle: &'static str) -> Pattern {
    Pattern {
        needle,
        word_start: true,
        word_end: false,
    }
}

const fn exact(needle: &'static str) -> Pattern {
    Pattern {
        needle,
        word_start: false,
        word_end: false,
    }
}

/// The rule table. `typed-error-parity` and `lint-annotation` are
/// structural checks implemented in [`check_file`] rather than
/// pattern rules.
pub const RULES: &[Rule] = &[
    Rule {
        id: "determinism-hash",
        scope: RuleScope::Sim,
        patterns: &[word("HashMap"), word("HashSet")],
        hint: "iteration order is unspecified: use BTreeMap/BTreeSet or a sorted Vec, or \
               justify membership-only use with `// lint: allow(determinism-hash) -- <why>`",
    },
    Rule {
        id: "determinism-rng",
        scope: RuleScope::Sim,
        patterns: &[word("thread_rng"), word("from_entropy")],
        hint: "ambient randomness breaks replay: seed explicitly (splitmix64-style) so every \
               run is bit-identical",
    },
    Rule {
        id: "determinism-clock",
        scope: RuleScope::Sim,
        patterns: &[
            exact("Instant::now"),
            exact("SystemTime::now"),
            exact("thread::sleep"),
        ],
        hint: "wall-clock reads diverge across runs: derive timing from simulated cycles, or \
               justify a wall-clock-only effect with `// lint: allow(determinism-clock) -- <why>`",
    },
    Rule {
        id: "determinism-env",
        scope: RuleScope::Sim,
        patterns: &[prefix("env::var"), word("available_parallelism")],
        hint: "ambient environment reads make results machine-dependent: thread the value \
               through a config field instead",
    },
    Rule {
        id: "no-panic",
        scope: RuleScope::Lib,
        patterns: &[
            exact(".unwrap()"),
            exact(".expect("),
            word("panic!"),
            word("unreachable!"),
            word("todo!"),
            word("unimplemented!"),
        ],
        hint: "return a typed error (SimError/TraceError/JobError) instead, or justify with \
               `// lint: allow(no-panic) -- <why>`",
    },
];

/// Fix hint for the structural `typed-error-parity` rule.
pub const PARITY_HINT: &str =
    "pair this `#[should_panic]` with a sibling test pinning the typed SimError/TraceError \
     variant and name it in `// lint: typed-sibling(<test_fn>)` on the line above";

/// A built-in allowlist entry: `needle` occurrences of `rule` in files
/// whose path ends with `path_suffix` are allowed without a per-line
/// annotation. Reserved for the two wall-clock escapes the design
/// depends on (docs/LINTS.md).
#[derive(Debug)]
pub struct BuiltinAllow {
    /// Path suffix (forward slashes) the entry applies to.
    pub path_suffix: &'static str,
    /// Rule id being allowed.
    pub rule: &'static str,
    /// Only matches of this needle are allowed.
    pub needle: &'static str,
    /// Why this site is exempt.
    pub reason: &'static str,
}

/// The built-in allowlist.
pub const ALLOWLIST: &[BuiltinAllow] = &[
    BuiltinAllow {
        path_suffix: "crates/core/src/sweep.rs",
        rule: "determinism-clock",
        needle: "Instant::now",
        reason: "sweep watchdog: wall-clock timeouts of disposable worker threads; simulated \
                 metrics are derived from replayed cycles and unaffected",
    },
    BuiltinAllow {
        path_suffix: "crates/core/src/sweep.rs",
        rule: "determinism-clock",
        needle: "thread::sleep",
        reason: "retry backoff sleeps on the sweep control thread; job results are identical \
                 with the test sleeper injected",
    },
    BuiltinAllow {
        path_suffix: "crates/pipeline/src/frame.rs",
        rule: "determinism-clock",
        needle: "thread::sleep",
        reason: "fault-injection wall stall and schedule-permutation jitter: both shift wall \
                 time only and never touch simulated state (pinned by tests/schedule_permutation.rs)",
    },
    BuiltinAllow {
        path_suffix: "crates/core/src/dispatch.rs",
        rule: "determinism-clock",
        needle: "Instant::now",
        reason: "fleet supervisor: wedge timers and restart backoff schedule real child \
                 processes; simulated results come from the children's journals and are \
                 bit-identical regardless of supervision timing \
                 (pinned by tests/dispatch_resilience.rs)",
    },
    BuiltinAllow {
        path_suffix: "crates/core/src/dispatch.rs",
        rule: "determinism-clock",
        needle: "thread::sleep",
        reason: "fleet supervisor poll loop: paces liveness checks of real child processes; \
                 no simulated state on this thread",
    },
];

/// How a file is treated by the pattern rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Simulation-crate library code: determinism + no-panic.
    SimLib,
    /// Other library code: no-panic only.
    Lib,
    /// Binary entry points: structural rules only.
    Bin,
    /// Integration tests / benches: structural rules only.
    Test,
}

/// Classify a workspace-relative path (forward slashes).
#[must_use]
pub fn classify(rel: &str) -> FileClass {
    if rel.starts_with("tests/") || rel.contains("/tests/") || rel.contains("/benches/") {
        return FileClass::Test;
    }
    if rel.starts_with("examples/")
        || rel.contains("/examples/")
        || rel.contains("/src/bin/")
        || rel.ends_with("/main.rs")
    {
        return FileClass::Bin;
    }
    for c in SIM_CRATES {
        let prefix = format!("crates/{c}/src/");
        if rel.starts_with(&prefix) {
            return FileClass::SimLib;
        }
    }
    FileClass::Lib
}

/// One rule violation in one file.
#[derive(Debug, Clone)]
pub struct Finding {
    /// 1-based line.
    pub line: usize,
    /// Rule id.
    pub rule: String,
    /// Trimmed source line.
    pub snippet: String,
    /// Suggested fix.
    pub hint: String,
}

/// One allowed (annotated or allowlisted) site.
#[derive(Debug, Clone)]
pub struct AllowedSite {
    /// 1-based line.
    pub line: usize,
    /// Rule id.
    pub rule: String,
    /// Annotation justification or allowlist reason.
    pub justification: String,
    /// `true` when from the built-in allowlist, `false` for a
    /// `// lint: allow` annotation.
    pub builtin: bool,
}

/// Everything the checker found in one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations, in line order.
    pub findings: Vec<Finding>,
    /// Allowed sites, in line order.
    pub allowed: Vec<AllowedSite>,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn line_matches(line: &str, p: &Pattern) -> bool {
    for (idx, _) in line.match_indices(p.needle) {
        let start_ok =
            !p.word_start || line[..idx].chars().next_back().is_none_or(|c| !is_ident(c));
        let end_ok = !p.word_end
            || line[idx + p.needle.len()..]
                .chars()
                .next()
                .is_none_or(|c| !is_ident(c));
        if start_ok && end_ok {
            return true;
        }
    }
    false
}

fn builtin_allow(rel: &str, rule: &str, line: &str) -> Option<&'static BuiltinAllow> {
    ALLOWLIST
        .iter()
        .find(|a| a.rule == rule && rel.ends_with(a.path_suffix) && line.contains(a.needle))
}

/// Check one file. `rel` is the workspace-relative path with forward
/// slashes; `source` its full text.
#[must_use]
pub fn check_file(rel: &str, source: &str) -> FileOutcome {
    let class = classify(rel);
    let s = sanitize(source);
    let original: Vec<&str> = source.lines().collect();
    let snippet = |line: usize| -> String {
        original
            .get(line - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let mut out = FileOutcome::default();
    let mut used_allows: Vec<bool> = vec![false; s.allows.len()];
    let mut used_siblings: Vec<bool> = vec![false; s.siblings.len()];

    for (line, problem) in &s.bad_annotations {
        out.findings.push(Finding {
            line: *line,
            rule: "lint-annotation".into(),
            snippet: snippet(*line),
            hint: format!("malformed annotation: {problem}"),
        });
    }

    for rule in RULES {
        let applies = matches!(
            (rule.scope, class),
            (RuleScope::Sim, FileClass::SimLib)
                | (RuleScope::Lib, FileClass::SimLib | FileClass::Lib)
        );
        if !applies {
            continue;
        }
        for (idx, code) in s.code_lines.iter().enumerate() {
            if s.test_lines.get(idx).copied().unwrap_or(false) {
                continue;
            }
            let lineno = idx + 1;
            if !rule.patterns.iter().any(|p| line_matches(code, p)) {
                continue;
            }
            if let Some(pos) = s
                .allows
                .iter()
                .position(|a| a.rule == rule.id && (a.line == lineno || a.line + 1 == lineno))
            {
                used_allows[pos] = true;
                out.allowed.push(AllowedSite {
                    line: lineno,
                    rule: rule.id.into(),
                    justification: s.allows[pos].justification.clone(),
                    builtin: false,
                });
            } else if let Some(b) = builtin_allow(rel, rule.id, code) {
                out.allowed.push(AllowedSite {
                    line: lineno,
                    rule: rule.id.into(),
                    justification: b.reason.into(),
                    builtin: true,
                });
            } else {
                out.findings.push(Finding {
                    line: lineno,
                    rule: rule.id.into(),
                    snippet: snippet(lineno),
                    hint: rule.hint.into(),
                });
            }
        }
    }

    // determinism-iter: a float reduction fed (within a three-line
    // window) by an unordered container. The pattern rules ban the
    // containers themselves, but a membership-only allow(determinism-
    // hash) must not quietly license *iterating* one into a sum.
    if class == FileClass::SimLib {
        const REDUCTIONS: &[&str] = &[
            ".sum::<f64>",
            ".sum::<f32>",
            ".product::<f64>",
            ".product::<f32>",
            ".fold(0.0",
            ".fold(0f64",
            ".fold(0f32",
        ];
        const UNORDERED: &[Pattern] = &[word("HashMap"), word("HashSet"), word("BinaryHeap")];
        for (idx, code) in s.code_lines.iter().enumerate() {
            if s.test_lines.get(idx).copied().unwrap_or(false) {
                continue;
            }
            if !REDUCTIONS.iter().any(|n| code.contains(n)) {
                continue;
            }
            let window = &s.code_lines[idx.saturating_sub(3)..=idx];
            if !window
                .iter()
                .any(|l| UNORDERED.iter().any(|p| line_matches(l, p)))
            {
                continue;
            }
            let lineno = idx + 1;
            if let Some(pos) = s.allows.iter().position(|a| {
                a.rule == "determinism-iter" && (a.line == lineno || a.line + 1 == lineno)
            }) {
                used_allows[pos] = true;
                out.allowed.push(AllowedSite {
                    line: lineno,
                    rule: "determinism-iter".into(),
                    justification: s.allows[pos].justification.clone(),
                    builtin: false,
                });
            } else {
                out.findings.push(Finding {
                    line: lineno,
                    rule: "determinism-iter".into(),
                    snippet: snippet(lineno),
                    hint: "float reductions over unordered iteration are run-dependent \
                           (float addition is not associative): collect into a sorted Vec \
                           or BTreeMap first, or justify with \
                           `// lint: allow(determinism-iter) -- <why>`"
                        .into(),
                });
            }
        }
    }

    // typed-error-parity: every `#[should_panic` attribute (test code
    // included — that is where they live) needs a typed-sibling
    // annotation within the three lines above, naming a function that
    // exists in this file.
    for (idx, code) in s.code_lines.iter().enumerate() {
        if !code.contains("#[should_panic") {
            continue;
        }
        let lineno = idx + 1;
        let found = s
            .siblings
            .iter()
            .position(|a| a.line <= lineno && a.line + 3 >= lineno);
        match found {
            None => out.findings.push(Finding {
                line: lineno,
                rule: "typed-error-parity".into(),
                snippet: snippet(lineno),
                hint: PARITY_HINT.into(),
            }),
            Some(pos) => {
                used_siblings[pos] = true;
                let name = &s.siblings[pos].test_fn;
                if !fn_exists(&s.code_lines, name) {
                    out.findings.push(Finding {
                        line: lineno,
                        rule: "typed-error-parity".into(),
                        snippet: snippet(lineno),
                        hint: format!(
                            "typed-sibling names `{name}` but no `fn {name}` exists in this file"
                        ),
                    });
                }
            }
        }
    }

    for (pos, a) in s.allows.iter().enumerate() {
        if !used_allows[pos] {
            out.findings.push(Finding {
                line: a.line,
                rule: "lint-annotation".into(),
                snippet: snippet(a.line),
                hint: format!(
                    "stale annotation: nothing on this or the next line triggers `{}`",
                    a.rule
                ),
            });
        }
    }
    for (pos, a) in s.siblings.iter().enumerate() {
        if !used_siblings[pos] {
            out.findings.push(Finding {
                line: a.line,
                rule: "lint-annotation".into(),
                snippet: snippet(a.line),
                hint: "stale typed-sibling: no `#[should_panic]` within three lines below".into(),
            });
        }
    }

    out.findings
        .sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out.allowed
        .sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out
}

fn fn_exists(code_lines: &[String], name: &str) -> bool {
    code_lines.iter().any(|l| {
        l.match_indices("fn ").any(|(idx, _)| {
            let rest = &l[idx + 3..];
            rest.trim_start().starts_with(name)
                && rest
                    .trim_start()
                    .get(name.len()..)
                    .and_then(|t| t.chars().next())
                    .is_none_or(|c| !is_ident(c))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_lib_gets_determinism_rules() {
        assert_eq!(classify("crates/mem/src/lane.rs"), FileClass::SimLib);
        assert_eq!(classify("crates/cli/src/args.rs"), FileClass::Lib);
        assert_eq!(classify("crates/cli/src/main.rs"), FileClass::Bin);
        assert_eq!(classify("crates/bench/src/bin/figures.rs"), FileClass::Bin);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Bin);
        assert_eq!(classify("crates/mem/examples/demo.rs"), FileClass::Bin);
        assert_eq!(classify("tests/determinism.rs"), FileClass::Test);
        assert_eq!(classify("crates/mem/tests/x.rs"), FileClass::Test);
    }

    #[test]
    fn hashmap_in_sim_crate_is_flagged_and_allowable() {
        let src = "use std::collections::HashMap;\n";
        let out = check_file("crates/mem/src/lib.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "determinism-hash");
        assert_eq!(out.findings[0].line, 1);

        let src = "// lint: allow(determinism-hash) -- membership only, never iterated\n\
                   use std::collections::HashMap;\n";
        let out = check_file("crates/mem/src/lib.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.allowed.len(), 1);
        assert!(!out.allowed[0].builtin);
    }

    #[test]
    fn unwrap_in_test_code_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let out = check_file("crates/mem/src/lib.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn stale_allow_is_a_violation() {
        let src = "// lint: allow(no-panic) -- nothing here\nlet x = 1;\n";
        let out = check_file("crates/mem/src/lib.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "lint-annotation");
    }

    #[test]
    fn builtin_allowlist_covers_the_sweep_watchdog() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let out = check_file("crates/core/src/sweep.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.allowed.len(), 1);
        assert!(out.allowed[0].builtin);
        // The same code elsewhere in core is a violation.
        let out = check_file("crates/core/src/sim.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "determinism-clock");
    }

    #[test]
    fn should_panic_requires_named_existing_sibling() {
        let src = "#[should_panic]\nfn boom() {}\n";
        let out = check_file("tests/x.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "typed-error-parity");

        let src = "// lint: typed-sibling(typed_twin)\n#[should_panic]\nfn boom() {}\nfn typed_twin() {}\n";
        let out = check_file("tests/x.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);

        let src = "// lint: typed-sibling(missing)\n#[should_panic]\nfn boom() {}\n";
        let out = check_file("tests/x.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].hint.contains("missing"));
    }

    #[test]
    fn patterns_respect_identifier_boundaries() {
        let src = "fn prefetch_from_entropy_pool() {}\nlet x = my_thread_rng_name;\n";
        let out = check_file("crates/mem/src/lib.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        let src = "let r = thread_rng();\n";
        let out = check_file("crates/mem/src/lib.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "determinism-rng");
    }

    #[test]
    fn float_reduction_over_unordered_iteration_is_flagged() {
        // A membership-allowed HashMap iterated into a float sum: the
        // hash allow is honored, but the reduction is its own finding.
        let src = "// lint: allow(determinism-hash) -- membership only\n\
                   let m: HashMap<u32, f64> = HashMap::new();\n\
                   let total = m.values()\n\
                   .sum::<f64>();\n";
        let out = check_file("crates/core/src/x.rs", src);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "determinism-iter");
        assert_eq!(out.findings[0].line, 4);

        // An explicit allow silences it (and is not stale).
        let src = "// lint: allow(determinism-hash) -- membership only\n\
                   let m: HashMap<u32, f64> = HashMap::new();\n\
                   // lint: allow(determinism-iter) -- sum of non-negative is order-checked\n\
                   let total = m.values().sum::<f64>();\n";
        let out = check_file("crates/core/src/x.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.allowed.len(), 2);
    }

    #[test]
    fn float_reduction_over_ordered_iteration_is_fine() {
        // Slices and BTreeMaps iterate in a specified order.
        let src = "let total = samples.iter().copied().sum::<f64>();\n\
                   let t2: BTreeMap<u32, f64> = BTreeMap::new();\n\
                   let s2 = t2.values().sum::<f64>();\n";
        let out = check_file("crates/core/src/x.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        // Beyond the three-line window the reduction is not tied to
        // the container (and test code is never scanned).
        let src = "// lint: allow(determinism-hash) -- membership only\n\
                   let m: HashSet<u32> = HashSet::new();\n\
                   let a = 1;\nlet b = 2;\nlet c = 3;\n\
                   let total = xs.iter().sum::<f64>();\n";
        let out = check_file("crates/core/src/x.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        let m: HashMap<u32, f64> = HashMap::new();\n        let s = m.values().sum::<f64>();\n    }\n}\n";
        let out = check_file("crates/core/src/x.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn obs_crate_is_a_sim_crate() {
        assert_eq!(classify("crates/obs/src/lib.rs"), FileClass::SimLib);
        let src = "let t = Instant::now();\n";
        let out = check_file("crates/obs/src/lib.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "determinism-clock");
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "let x = y.unwrap_or(0).max(z.unwrap_or_default());\n";
        let out = check_file("crates/mem/src/lib.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }
}
