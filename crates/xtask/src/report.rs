//! Aggregated lint report with text and JSON rendering.
//!
//! JSON is hand-rolled (the vendored `serde` stand-in does not
//! serialize) and shaped for CI consumption:
//!
//! ```json
//! {
//!   "ok": false,
//!   "files_scanned": 61,
//!   "violation_count": 2,
//!   "allow_count": 23,
//!   "violations": [{"file": "...", "line": 12, "rule": "no-panic",
//!                   "snippet": "...", "hint": "..."}],
//!   "allowed": [{"file": "...", "line": 30, "rule": "no-panic",
//!                "justification": "...", "source": "annotation"}]
//! }
//! ```

use crate::rules::{AllowedSite, Finding};
use std::fmt::Write as _;

/// One violation, located in the workspace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id.
    pub rule: String,
    /// Trimmed source line.
    pub snippet: String,
    /// Suggested fix.
    pub hint: String,
}

/// One allowed site, located in the workspace.
#[derive(Debug, Clone)]
pub struct Allowed {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id.
    pub rule: String,
    /// Annotation justification or allowlist reason.
    pub justification: String,
    /// `true` for built-in allowlist entries.
    pub builtin: bool,
}

/// The whole lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All violations, in path/line order.
    pub violations: Vec<Violation>,
    /// All allowed sites, in path/line order.
    pub allowed: Vec<Allowed>,
}

impl Report {
    /// Fold one file's outcome into the report.
    pub fn absorb(&mut self, file: &str, findings: Vec<Finding>, allowed: Vec<AllowedSite>) {
        self.files_scanned += 1;
        for f in findings {
            self.violations.push(Violation {
                file: file.to_string(),
                line: f.line,
                rule: f.rule,
                snippet: f.snippet,
                hint: f.hint,
            });
        }
        for a in allowed {
            self.allowed.push(Allowed {
                file: file.to_string(),
                line: a.line,
                rule: a.rule,
                justification: a.justification,
                builtin: a.builtin,
            });
        }
    }

    /// No violations?
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable rendering.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "error[{}]: {}:{}", v.rule, v.file, v.line);
            if !v.snippet.is_empty() {
                let _ = writeln!(out, "    {}", v.snippet);
            }
            let _ = writeln!(out, "    hint: {}", v.hint);
        }
        let _ = writeln!(
            out,
            "{} file(s) scanned, {} violation(s), {} allowed site(s) ({} annotated, {} allowlisted)",
            self.files_scanned,
            self.violations.len(),
            self.allowed.len(),
            self.allowed.iter().filter(|a| !a.builtin).count(),
            self.allowed.iter().filter(|a| a.builtin).count(),
        );
        out
    }

    /// Machine-readable rendering for CI.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"ok\": {},", self.ok());
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"violation_count\": {},", self.violations.len());
        let _ = writeln!(out, "  \"allow_count\": {},", self.allowed.len());
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"snippet\": {}, \"hint\": {}}}",
                json_str(&v.file),
                v.line,
                json_str(&v.rule),
                json_str(&v.snippet),
                json_str(&v.hint),
            );
        }
        out.push_str(if self.violations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"allowed\": [");
        for (i, a) in self.allowed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"justification\": {}, \"source\": {}}}",
                json_str(&a.file),
                a.line,
                json_str(&a.rule),
                json_str(&a.justification),
                json_str(if a.builtin { "allowlist" } else { "annotation" }),
            );
        }
        out.push_str(if self.allowed.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// Escape a string as a JSON literal (with quotes).
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::default();
        r.absorb(
            "crates/mem/src/lib.rs",
            vec![Finding {
                line: 3,
                rule: "determinism-hash".into(),
                snippet: "use std::collections::HashMap;".into(),
                hint: "use BTreeMap".into(),
            }],
            vec![AllowedSite {
                line: 9,
                rule: "no-panic".into(),
                justification: "proven \"in\" bounds".into(),
                builtin: false,
            }],
        );
        r
    }

    #[test]
    fn text_names_file_line_and_rule() {
        let t = sample().render_text();
        assert!(t.contains("error[determinism-hash]: crates/mem/src/lib.rs:3"));
        assert!(t.contains("1 violation(s)"));
        assert!(t.contains("1 allowed site(s)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let j = sample().render_json();
        assert!(j.contains("\"ok\": false"));
        assert!(j.contains("\"violation_count\": 1"));
        assert!(j.contains("\"allow_count\": 1"));
        assert!(j.contains("proven \\\"in\\\" bounds"));
        assert!(j.contains("\"source\": \"annotation\""));
    }

    #[test]
    fn empty_report_is_ok() {
        let r = Report::default();
        assert!(r.ok());
        assert!(r.render_json().contains("\"violations\": []"));
    }
}
