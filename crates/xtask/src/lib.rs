//! `cargo xtask lint` — repo invariant checker.
//!
//! A dependency-free, lexer-level scanner enforcing the invariants the
//! DTexL reproduction depends on (docs/LINTS.md):
//!
//! * **determinism** in simulation crates — no unordered-container
//!   iteration, ambient randomness, wall-clock reads or environment
//!   sniffing in any path that feeds simulated metrics;
//! * **no-panic** in library code — typed errors or a justified
//!   `// lint: allow(no-panic) -- <why>` annotation;
//! * **typed-error parity** — every `#[should_panic]` test names a
//!   sibling pinning the typed error via
//!   `// lint: typed-sibling(<test_fn>)`.
//!
//! The scanner is intentionally not a Rust parser: [`sanitize`] blanks
//! comments and literals so the substring rules in [`rules`] are sound
//! on this workspace, and that is all `cargo xtask lint` needs to work
//! against the offline vendored registry.
//!
//! A second, deeper tier — `cargo xtask deep-lint` ([`deep`]) — parses
//! the same sanitized sources into a workspace call graph ([`parse`],
//! [`graph`]) and runs transitive passes on top: determinism taint
//! ([`taint`]), the unsafe audit, and the API-surface lock
//! ([`surface`]). Tier 1 stays line-local and fast; tier 2 catches
//! what only whole-program reachability can see.

pub mod bench;
pub mod budgets;
pub mod deep;
pub mod graph;
pub mod parse;
pub mod report;
pub mod rules;
pub mod sanitize;
pub mod surface;
pub mod taint;
pub mod walk;

use report::Report;
use std::fs;
use std::io;
use std::path::Path;

/// Scan every workspace source under `root` (pattern + structural
/// rules only — no budget enforcement).
///
/// # Errors
///
/// Propagates filesystem errors (unreadable tree or file).
pub fn scan_root(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for (rel, path) in walk::rust_sources(root)? {
        let source = fs::read_to_string(&path)
            .map_err(|e| io::Error::other(format!("{}: {e}", path.display())))?;
        let outcome = rules::check_file(&rel, &source);
        report.absorb(&rel, outcome.findings, outcome.allowed);
    }
    Ok(report)
}

/// Lint every workspace source under `root`, returning the aggregated
/// report. When `root` carries a [`budgets::BUDGET_FILE`], per-crate
/// allowlist budgets are enforced on top of the scan (trees without
/// one — fixtures, fresh checkouts — lint exactly as before).
///
/// # Errors
///
/// Propagates filesystem errors and a malformed budget file.
pub fn lint_root(root: &Path) -> io::Result<Report> {
    let mut report = scan_root(root)?;
    let budget_path = root.join(budgets::BUDGET_FILE);
    if budget_path.exists() {
        let text = fs::read_to_string(&budget_path)?;
        let recorded = budgets::parse(&text).map_err(io::Error::other)?;
        let mut budget_violations = budgets::check(&report, &recorded);
        report.violations.append(&mut budget_violations);
    }
    Ok(report)
}

/// `--update-budgets`: scan, ratchet the budget file down to
/// `min(recorded, current)` per crate (creating it from current counts
/// if absent), and return the scan report — which, checked against the
/// file just written, can still fail on *over*-recorded crates because
/// the ratchet never raises a budget.
///
/// # Errors
///
/// Propagates filesystem errors and a malformed existing budget file.
pub fn update_budgets(root: &Path) -> io::Result<Report> {
    let report = scan_root(root)?;
    let budget_path = root.join(budgets::BUDGET_FILE);
    let mut recorded = if budget_path.exists() {
        budgets::parse_file(&fs::read_to_string(&budget_path)?).map_err(io::Error::other)?
    } else {
        budgets::BudgetFile::default()
    };
    // Tighten the tier-1 table only; the [deep-allow-budgets] table is
    // deep-lint's and rides through verbatim.
    recorded.allow = budgets::tighten(&recorded.allow, &budgets::counts(&report));
    fs::write(&budget_path, budgets::render_file(&recorded))?;
    let mut report = report;
    let mut budget_violations = budgets::check(&report, &recorded.allow);
    report.violations.append(&mut budget_violations);
    Ok(report)
}
