//! `cargo xtask lint` — repo invariant checker.
//!
//! A dependency-free, lexer-level scanner enforcing the invariants the
//! DTexL reproduction depends on (docs/LINTS.md):
//!
//! * **determinism** in simulation crates — no unordered-container
//!   iteration, ambient randomness, wall-clock reads or environment
//!   sniffing in any path that feeds simulated metrics;
//! * **no-panic** in library code — typed errors or a justified
//!   `// lint: allow(no-panic) -- <why>` annotation;
//! * **typed-error parity** — every `#[should_panic]` test names a
//!   sibling pinning the typed error via
//!   `// lint: typed-sibling(<test_fn>)`.
//!
//! The scanner is intentionally not a Rust parser: [`sanitize`] blanks
//! comments and literals so the substring rules in [`rules`] are sound
//! on this workspace, and that is all `cargo xtask lint` needs to work
//! against the offline vendored registry.

pub mod report;
pub mod rules;
pub mod sanitize;
pub mod walk;

use report::Report;
use std::fs;
use std::io;
use std::path::Path;

/// Lint every workspace source under `root`, returning the aggregated
/// report.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable tree or file).
pub fn lint_root(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for (rel, path) in walk::rust_sources(root)? {
        let source = fs::read_to_string(&path)
            .map_err(|e| io::Error::other(format!("{}: {e}", path.display())))?;
        let outcome = rules::check_file(&rel, &source);
        report.absorb(&rel, outcome.findings, outcome.allowed);
    }
    Ok(report)
}
