//! Token-tree parser for the deep-lint passes.
//!
//! Built on the same [`sanitize`](crate::sanitize) front end as the
//! lexer-level rules: comments and literals are blanked first, then the
//! remaining code is tokenized and scanned with just enough structure —
//! brace depth, `impl`/`trait`/`mod` contexts, `fn` items with matched
//! bodies — to extract, per file:
//!
//! * every function item (name, enclosing `impl`/`trait` type,
//!   visibility, signature text, body line range);
//! * every call expression inside a non-test function body (plain
//!   `helper(..)`, qualified `Type::assoc(..)` with `Self` resolved
//!   against the enclosing `impl`, and `.method(..)` calls);
//! * every `unsafe` block / fn / impl, paired with whether a
//!   `// SAFETY:` comment justifies it;
//! * every `pub` item header, for the API-surface lock.
//!
//! This is still not a Rust compiler: there is no name resolution, no
//! type inference, and calls through function *values* (closures,
//! `fn`-pointer fields, `map(f)`) produce no edge. The call graph is a
//! name-matched over-approximation that [`graph`](crate::graph)
//! assembles workspace-wide — sound enough for the determinism taint
//! pass on this tree, and its known blind spots are documented in
//! docs/LINTS.md.

use crate::sanitize::{sanitize, BarrierAnnotation};

/// One token of sanitized code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier, keyword or number literal chunk.
    Ident(String),
    /// `::`
    PathSep,
    /// `->`
    Arrow,
    /// Any other single non-whitespace character.
    Punct(char),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: usize,
    /// The token itself.
    pub tok: Tok,
}

/// Tokenize sanitized code lines (comments/literals already blanked).
#[must_use]
pub fn tokenize(code_lines: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in code_lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    line: lineno,
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                });
            } else if c == ':' && chars.get(i + 1) == Some(&':') {
                out.push(Token {
                    line: lineno,
                    tok: Tok::PathSep,
                });
                i += 2;
            } else if c == '-' && chars.get(i + 1) == Some(&'>') {
                out.push(Token {
                    line: lineno,
                    tok: Tok::Arrow,
                });
                i += 2;
            } else {
                out.push(Token {
                    line: lineno,
                    tok: Tok::Punct(c),
                });
                i += 1;
            }
        }
    }
    out
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based line of the callee name.
    pub line: usize,
    /// Path segments of the callee (`Self` already resolved to the
    /// enclosing impl type); a bare `helper(..)` call has one segment.
    pub path: Vec<String>,
    /// `true` for `.method(..)` receiver calls.
    pub method: bool,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` self type, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based inclusive line range of the body (equals `(line, line)`
    /// for bodyless trait-method signatures).
    pub body: (usize, usize),
    /// Declared `pub` without restriction.
    pub is_pub: bool,
    /// Defined inside `#[cfg(test)]` (or a test-class file — the
    /// caller flips this for `tests/`/`benches/` trees).
    pub is_test: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Normalized signature text from `fn` to the body brace.
    pub signature: String,
    /// Calls made inside the body, in source order.
    pub calls: Vec<CallSite>,
}

/// One `unsafe` occurrence.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// `"block"`, `"fn"`, `"impl"` or `"trait"`.
    pub kind: &'static str,
    /// Whether a `// SAFETY:` comment (same line, or an unbroken
    /// comment/blank run directly above) justifies the site.
    pub justified: bool,
    /// Inside `#[cfg(test)]` code.
    pub in_test: bool,
    /// Display name of the enclosing function, or the impl'd type.
    pub context: String,
}

/// One `pub` item header, for the API-surface lock.
#[derive(Debug, Clone)]
pub struct PubItem {
    /// 1-based line of the item keyword.
    pub line: usize,
    /// Normalized header text (e.g. `pub fn FrameSim::try_run(..) -> ..`,
    /// `pub struct FramePrefix`).
    pub text: String,
}

/// Everything the parser extracted from one file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path (forward slashes).
    pub rel: String,
    /// Function items, in source order.
    pub fns: Vec<FnItem>,
    /// Unsafe sites, in source order.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Public item headers, in source order.
    pub pub_items: Vec<PubItem>,
    /// Taint-barrier annotations found in the file.
    pub barriers: Vec<BarrierAnnotation>,
    /// Sanitized code lines (for the source-needle scan).
    pub code_lines: Vec<String>,
    /// Per-line `#[cfg(test)]` flags.
    pub test_lines: Vec<bool>,
}

/// Keywords that can precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "break", "continue",
    "else", "let", "mut", "ref", "where", "impl", "fn", "pub", "use", "mod", "struct", "enum",
    "trait", "type", "const", "static", "unsafe", "async", "await", "dyn", "box", "yield",
];

/// Item keywords captured for the public surface.
const SURFACE_KEYWORDS: &[&str] = &["struct", "enum", "trait", "type", "const", "static", "use"];

struct Ctx {
    /// Brace depth this context closes at.
    close: i64,
    kind: CtxKind,
}

enum CtxKind {
    /// `impl Type { .. }`, `impl Trait for Type { .. }` or
    /// `trait Name { .. }` — `ty` qualifies contained fns.
    Impl { ty: String },
    /// `mod name { .. }` — no qualification, just a scope.
    Mod,
    /// A function body; `idx` into the output `fns` vec.
    Fn { idx: usize },
}

/// Parse one file. `rel` is the workspace-relative path with forward
/// slashes, `whole_file_is_test` marks `tests/`/`benches/` trees.
#[must_use]
pub fn parse_file(rel: &str, source: &str, whole_file_is_test: bool) -> ParsedFile {
    let s = sanitize(source);
    let toks = tokenize(&s.code_lines);
    let is_test_line = |line: usize| {
        whole_file_is_test
            || s.test_lines
                .get(line.saturating_sub(1))
                .copied()
                .unwrap_or(false)
    };

    let mut fns: Vec<FnItem> = Vec::new();
    let mut unsafe_sites: Vec<UnsafeSite> = Vec::new();
    let mut pub_items: Vec<PubItem> = Vec::new();
    let mut stack: Vec<Ctx> = Vec::new();
    let mut depth: i64 = 0;
    let mut pending_pub = false;
    let mut pending_unsafe: Option<usize> = None; // line of the keyword

    let impl_ty = |stack: &[Ctx]| -> Option<String> {
        stack.iter().rev().find_map(|c| match &c.kind {
            CtxKind::Impl { ty } => Some(ty.clone()),
            _ => None,
        })
    };
    let fn_ctx = |stack: &[Ctx]| -> Option<usize> {
        stack.iter().rev().find_map(|c| match &c.kind {
            CtxKind::Fn { idx } => Some(*idx),
            _ => None,
        })
    };
    let context_name = |stack: &[Ctx], fns: &[FnItem]| -> String {
        if let Some(idx) = fn_ctx(stack) {
            display_name(&fns[idx])
        } else if let Some(ty) = impl_ty(stack) {
            ty
        } else {
            "<file>".to_string()
        }
    };
    let justified = |line: usize| -> bool {
        if s.safety_lines.contains(&line) {
            return true;
        }
        // Walk up through an unbroken run of blank / comment-only
        // lines (sanitized text empty) looking for the SAFETY opener.
        let mut l = line;
        for _ in 0..16 {
            if l <= 1 {
                return false;
            }
            l -= 1;
            if s.safety_lines.contains(&l) {
                return true;
            }
            let blankish = s.code_lines.get(l - 1).is_none_or(|c| c.trim().is_empty());
            if !blankish {
                return false;
            }
        }
        false
    };

    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('#') => {
                // Attribute: `#[..]` or `#![..]` — skip wholesale so
                // `derive(..)`, `cfg(..)` etc. never look like calls.
                i += 1;
                if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('!'))) {
                    i += 1;
                }
                if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('['))) {
                    let mut brackets = 0i64;
                    while i < toks.len() {
                        match toks[i].tok {
                            Tok::Punct('[') => brackets += 1,
                            Tok::Punct(']') => {
                                brackets -= 1;
                                if brackets == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
            Tok::Punct('{') => {
                if let Some(line) = pending_unsafe.take() {
                    unsafe_sites.push(UnsafeSite {
                        line,
                        kind: "block",
                        justified: justified(line),
                        in_test: is_test_line(line),
                        context: context_name(&stack, &fns),
                    });
                }
                pending_pub = false;
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                while stack.last().is_some_and(|c| c.close == depth) {
                    if let Some(ctx) = stack.pop() {
                        if let CtxKind::Fn { idx } = ctx.kind {
                            fns[idx].body.1 = toks[i].line;
                        }
                    }
                }
                pending_pub = false;
                pending_unsafe = None;
                i += 1;
            }
            Tok::Ident(w) if w == "pub" => {
                i += 1;
                // `pub(crate)` / `pub(super)` are not public API.
                if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('('))) {
                    let mut parens = 0i64;
                    while i < toks.len() {
                        match toks[i].tok {
                            Tok::Punct('(') => parens += 1,
                            Tok::Punct(')') => {
                                parens -= 1;
                                if parens == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                } else {
                    pending_pub = true;
                }
            }
            Tok::Ident(w) if w == "unsafe" => {
                pending_unsafe = Some(toks[i].line);
                i += 1;
            }
            Tok::Ident(w) if w == "mod" => {
                let line = toks[i].line;
                i += 1;
                let name = match toks.get(i).map(|t| &t.tok) {
                    Some(Tok::Ident(n)) => {
                        i += 1;
                        n.clone()
                    }
                    _ => String::new(),
                };
                if pending_pub && !is_test_line(line) && !name.is_empty() {
                    pub_items.push(PubItem {
                        line,
                        text: format!("pub mod {name}"),
                    });
                }
                pending_pub = false;
                pending_unsafe = None;
                if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('{'))) {
                    stack.push(Ctx {
                        close: depth,
                        kind: CtxKind::Mod,
                    });
                    depth += 1;
                    i += 1;
                }
            }
            Tok::Ident(w) if w == "impl" || w == "trait" => {
                let was_unsafe = pending_unsafe.take();
                let is_impl = w == "impl";
                let start_line = toks[i].line;
                if pending_pub && !is_impl && !is_test_line(start_line) {
                    // `pub trait Name` joins the surface; grab the name
                    // lazily below once parsed.
                }
                let keep_pub = pending_pub && !is_impl;
                pending_pub = false;
                i += 1;
                // Skip `<generics>` straight after the keyword.
                if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('<'))) {
                    let mut angle = 0i64;
                    while i < toks.len() {
                        match toks[i].tok {
                            Tok::Punct('<') => angle += 1,
                            Tok::Punct('>') => {
                                angle -= 1;
                                if angle == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
                // Collect header tokens until `{` or `;` at paren depth 0.
                let header_start = i;
                let mut parens = 0i64;
                let mut has_body = false;
                while i < toks.len() {
                    match toks[i].tok {
                        Tok::Punct('(') | Tok::Punct('[') => parens += 1,
                        Tok::Punct(')') | Tok::Punct(']') => parens -= 1,
                        Tok::Punct('{') if parens == 0 => {
                            has_body = true;
                            break;
                        }
                        Tok::Punct(';') if parens == 0 => break,
                        _ => {}
                    }
                    i += 1;
                }
                let header = &toks[header_start..i.min(toks.len())];
                let ty = self_type_of(header, is_impl);
                if let (Some(line), true) = (was_unsafe, is_impl) {
                    unsafe_sites.push(UnsafeSite {
                        line,
                        kind: "impl",
                        justified: justified(line),
                        in_test: is_test_line(line),
                        context: ty.clone().unwrap_or_else(|| "<impl>".into()),
                    });
                }
                if keep_pub && !is_test_line(start_line) {
                    if let Some(name) = &ty {
                        pub_items.push(PubItem {
                            line: start_line,
                            text: format!("pub trait {name}"),
                        });
                    }
                }
                if has_body {
                    stack.push(Ctx {
                        close: depth,
                        kind: CtxKind::Impl {
                            ty: ty.unwrap_or_else(|| "<anon>".into()),
                        },
                    });
                    depth += 1;
                    i += 1; // consume '{'
                }
            }
            Tok::Ident(w) if w == "fn" => {
                // `fn(..)` is a function-pointer *type*, not an item.
                if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
                    pending_unsafe = None;
                    pending_pub = false;
                    i += 1;
                    continue;
                }
                let fn_line = toks[i].line;
                let sig_start = i;
                i += 1;
                let name = match toks.get(i).map(|t| &t.tok) {
                    Some(Tok::Ident(n)) => {
                        i += 1;
                        n.clone()
                    }
                    _ => {
                        pending_pub = false;
                        pending_unsafe = None;
                        continue;
                    }
                };
                // Generics (Arrow tokens keep `-> T` out of the angle count).
                if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('<'))) {
                    let mut angle = 0i64;
                    while i < toks.len() {
                        match toks[i].tok {
                            Tok::Punct('<') => angle += 1,
                            Tok::Punct('>') => {
                                angle -= 1;
                                if angle == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
                // Scan to the body `{` or terminating `;` at depth 0.
                let mut parens = 0i64;
                let mut has_body = false;
                while i < toks.len() {
                    match toks[i].tok {
                        Tok::Punct('(') | Tok::Punct('[') => parens += 1,
                        Tok::Punct(')') | Tok::Punct(']') => parens -= 1,
                        Tok::Punct('{') if parens == 0 => {
                            has_body = true;
                            break;
                        }
                        Tok::Punct(';') if parens == 0 => break,
                        _ => {}
                    }
                    i += 1;
                }
                let signature = render_tokens(&toks[sig_start..i.min(toks.len())]);
                let is_unsafe = pending_unsafe.take();
                let item = FnItem {
                    name,
                    impl_type: impl_ty(&stack),
                    line: fn_line,
                    body: (fn_line, fn_line),
                    is_pub: pending_pub,
                    is_test: is_test_line(fn_line),
                    is_unsafe: is_unsafe.is_some(),
                    signature,
                    calls: Vec::new(),
                };
                pending_pub = false;
                if let Some(line) = is_unsafe {
                    unsafe_sites.push(UnsafeSite {
                        line,
                        kind: "fn",
                        justified: justified(line),
                        in_test: item.is_test,
                        context: display_name(&item),
                    });
                }
                if item.is_pub && !item.is_test {
                    pub_items.push(PubItem {
                        line: fn_line,
                        text: surface_text(&item),
                    });
                }
                let idx = fns.len();
                fns.push(item);
                if has_body {
                    fns[idx].body = (toks[i].line, toks[i].line);
                    stack.push(Ctx {
                        close: depth,
                        kind: CtxKind::Fn { idx },
                    });
                    depth += 1;
                    i += 1; // consume '{'
                }
            }
            Tok::Ident(w) if SURFACE_KEYWORDS.contains(&w.as_str()) => {
                let line = toks[i].line;
                let capture = pending_pub && !is_test_line(line);
                pending_pub = false;
                pending_unsafe = None;
                // Capture the header up to the first `{`, `(`, `=` or
                // `;` — enough to name the item (and the full path for
                // `pub use`).
                let start = i;
                i += 1;
                let mut end = i;
                let full_use = w == "use";
                while end < toks.len() {
                    match toks[end].tok {
                        Tok::Punct('{') if !full_use => break,
                        Tok::Punct('(') | Tok::Punct('=') if !full_use => break,
                        Tok::Punct('<') => break,
                        Tok::Punct(';') => break,
                        _ => {}
                    }
                    end += 1;
                }
                if capture {
                    pub_items.push(PubItem {
                        line,
                        text: format!("pub {}", render_tokens(&toks[start..end])),
                    });
                }
                // Advance past the name so tuple structs (`Foo(`) are
                // not mistaken for calls; bodies are walked normally.
                i = end.min(toks.len());
            }
            Tok::Ident(name) => {
                // Possible call expression (only inside fn bodies and
                // outside test code).
                if let Some(fidx) = fn_ctx(&stack) {
                    let line = toks[i].line;
                    if !is_test_line(line)
                        && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                        && !NON_CALL_KEYWORDS.contains(&name.as_str())
                    {
                        let mut path = vec![name.clone()];
                        let mut j = i;
                        while j >= 2
                            && matches!(toks[j - 1].tok, Tok::PathSep)
                            && matches!(toks[j - 2].tok, Tok::Ident(_))
                        {
                            if let Tok::Ident(seg) = &toks[j - 2].tok {
                                path.insert(0, seg.clone());
                            }
                            j -= 2;
                        }
                        // Only a bare name can be a method call; a
                        // qualified path preceded by `.` is struct-
                        // update syntax (`..Type::default()`).
                        let method =
                            path.len() == 1 && j >= 1 && matches!(toks[j - 1].tok, Tok::Punct('.'));
                        if path[0] == "Self" {
                            if let Some(ty) = impl_ty(&stack) {
                                path[0] = ty;
                            }
                        }
                        fns[fidx].calls.push(CallSite { line, path, method });
                    }
                }
                pending_pub = false;
                pending_unsafe = None;
                i += 1;
            }
            Tok::Punct(';') => {
                pending_pub = false;
                pending_unsafe = None;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }

    // Close any still-open fn bodies at EOF (unbalanced braces only
    // happen on pathological input; pin the body end to the last line).
    let last_line = s.code_lines.len().max(1);
    while let Some(ctx) = stack.pop() {
        if let CtxKind::Fn { idx } = ctx.kind {
            fns[idx].body.1 = last_line;
        }
    }
    // Body start should be the fn line (signature included) so source
    // needles in default-argument positions are seen too.
    for f in &mut fns {
        f.body.0 = f.line;
    }

    ParsedFile {
        rel: rel.to_string(),
        fns,
        unsafe_sites,
        pub_items,
        barriers: s.barriers,
        code_lines: s.code_lines,
        test_lines: s.test_lines,
    }
}

/// `Type::name` (or `name` for free fns).
#[must_use]
pub fn display_name(f: &FnItem) -> String {
    match &f.impl_type {
        Some(ty) => format!("{ty}::{}", f.name),
        None => f.name.clone(),
    }
}

/// Surface-lock line for a public fn: signature with the impl
/// qualifier spliced into the name.
fn surface_text(f: &FnItem) -> String {
    let sig = match &f.impl_type {
        Some(ty) => f.signature.replacen(
            &format!("fn {}", f.name),
            &format!("fn {ty}::{}", f.name),
            1,
        ),
        None => f.signature.clone(),
    };
    if f.is_unsafe {
        format!("pub unsafe {sig}")
    } else {
        format!("pub {sig}")
    }
}

/// The self type an `impl`/`trait` header names: the last identifier
/// at angle-depth 0 of the `for` part (or the whole header when there
/// is no `for`), keywords and lifetimes skipped.
fn self_type_of(header: &[Token], is_impl: bool) -> Option<String> {
    let mut slice_start = 0usize;
    if is_impl {
        let mut angle = 0i64;
        for (k, t) in header.iter().enumerate() {
            match &t.tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Ident(w) if w == "for" && angle == 0 => slice_start = k + 1,
                _ => {}
            }
        }
    }
    let mut angle = 0i64;
    let mut last: Option<String> = None;
    for t in &header[slice_start..] {
        match &t.tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Ident(w) if w == "where" && angle == 0 => break,
            Tok::Ident(w)
                if angle == 0 && !matches!(w.as_str(), "mut" | "dyn" | "const" | "for") =>
            {
                last = Some(w.clone());
            }
            _ => {}
        }
        if is_impl && angle == 0 && matches!(t.tok, Tok::Punct('{')) {
            break;
        }
    }
    last
}

/// Render tokens back to normalized text (deterministic spacing).
#[must_use]
pub fn render_tokens(toks: &[Token]) -> String {
    let mut out = String::new();
    for t in toks {
        let piece = match &t.tok {
            Tok::Ident(s) => s.as_str(),
            Tok::PathSep => "::",
            Tok::Arrow => "->",
            Tok::Punct(c) => {
                out.push_str(match c {
                    ',' => ", ",
                    _ => {
                        // Single chars handled below via push.
                        ""
                    }
                });
                if *c != ',' {
                    let no_space_before = matches!(
                        c,
                        ')' | ']' | '>' | ';' | '?' | '!' | '.' | ':' | '(' | '<' | '\''
                    );
                    if !no_space_before && !out.is_empty() && !out.ends_with(' ') {
                        let tight_after = out.ends_with(['(', '[', '<', '&', '*', '.', '\''])
                            || out.ends_with("::");
                        if !tight_after {
                            out.push(' ');
                        }
                    }
                    out.push(*c);
                }
                continue;
            }
        };
        if !out.is_empty()
            && !out.ends_with(['(', '[', '<', '&', '*', '.', '\''])
            && !out.ends_with("::")
            && !out.ends_with(' ')
        {
            out.push(' ');
        }
        out.push_str(piece);
    }
    // Collapse the few double spaces the simple joiner leaves behind.
    while out.contains("  ") {
        out = out.replace("  ", " ");
    }
    out.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_impls_and_calls_are_extracted() {
        let src = "pub struct FrameSim;\n\
                   impl FrameSim {\n\
                       pub fn try_run(x: u64) -> u64 {\n\
                           helper_a(x)\n\
                       }\n\
                       fn inner(&self) -> u64 {\n\
                           Self::try_run(1) + self.other()\n\
                       }\n\
                   }\n\
                   fn helper_a(x: u64) -> u64 {\n\
                       mem::replay(x)\n\
                   }\n";
        let p = parse_file("crates/pipeline/src/lib.rs", src, false);
        assert_eq!(p.fns.len(), 3);
        let try_run = &p.fns[0];
        assert_eq!(try_run.name, "try_run");
        assert_eq!(try_run.impl_type.as_deref(), Some("FrameSim"));
        assert!(try_run.is_pub);
        assert_eq!(try_run.calls.len(), 1);
        assert_eq!(try_run.calls[0].path, vec!["helper_a"]);
        assert!(!try_run.calls[0].method);

        let inner = &p.fns[1];
        assert_eq!(inner.calls.len(), 2);
        assert_eq!(
            inner.calls[0].path,
            vec!["FrameSim", "try_run"],
            "Self resolved"
        );
        assert!(inner.calls[1].method);
        assert_eq!(inner.calls[1].path, vec!["other"]);

        let helper = &p.fns[2];
        assert!(helper.impl_type.is_none());
        assert_eq!(helper.calls[0].path, vec!["mem", "replay"]);
        assert!(p
            .pub_items
            .iter()
            .any(|it| it.text == "pub struct FrameSim"));
        assert!(p
            .pub_items
            .iter()
            .any(|it| it.text.contains("pub fn FrameSim::try_run(x: u64) -> u64")));
    }

    #[test]
    fn struct_update_default_is_a_typed_call_not_a_method() {
        let src = "fn build() -> TileRecord {\n\
                       TileRecord {\n\
                           tile: (0, 0),\n\
                           ..TileRecord::default()\n\
                       }\n\
                   }\n";
        let p = parse_file("crates/pipeline/src/lib.rs", src, false);
        assert_eq!(p.fns.len(), 1);
        let calls = &p.fns[0].calls;
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].path, vec!["TileRecord", "default"]);
        assert!(
            !calls[0].method,
            "the `.` before a qualified path is struct-update syntax, not a method receiver"
        );
    }

    #[test]
    fn macros_keywords_and_test_code_produce_no_calls() {
        let src = "fn lib() {\n\
                       assert!(true);\n\
                       if (x) { return (y); }\n\
                       match (z) { _ => {} }\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { tainted_helper(); }\n\
                   }\n";
        let p = parse_file("crates/mem/src/lib.rs", src, false);
        let lib = &p.fns[0];
        assert!(lib.calls.is_empty(), "{:?}", lib.calls);
        let t = &p.fns[1];
        assert!(t.is_test);
        assert!(t.calls.is_empty(), "test bodies are not scanned");
    }

    #[test]
    fn unsafe_sites_need_safety_comments() {
        let src = "// SAFETY: delegates to System; never unwinds.\n\
                   unsafe impl Sync for Meter {}\n\
                   fn f() {\n\
                       unsafe { danger() }\n\
                   }\n\
                   // SAFETY: pointer proven live above.\n\
                   // (multi-line continuation)\n\
                   unsafe fn g() {}\n";
        let p = parse_file("crates/alloc/src/lib.rs", src, false);
        assert_eq!(p.unsafe_sites.len(), 3);
        let by_kind = |k: &str| p.unsafe_sites.iter().find(|u| u.kind == k).unwrap();
        assert!(by_kind("impl").justified);
        assert!(
            !by_kind("block").justified,
            "no SAFETY comment near the block"
        );
        assert!(by_kind("fn").justified, "comment run above the fn counts");
        assert_eq!(by_kind("block").context, "f");
    }

    #[test]
    fn fn_pointer_types_and_tuple_structs_are_not_items_or_calls() {
        let src = "pub struct Wrapper(pub u64);\n\
                   pub struct Opts { pub sleeper: fn(u64) }\n\
                   fn f(g: fn(u64) -> u64) -> u64 { g(1) }\n";
        let p = parse_file("crates/core/src/lib.rs", src, false);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "f");
        // `g(1)` resolves (or not) by name later; `Wrapper(` is not a call.
        assert!(p.pub_items.iter().any(|it| it.text == "pub struct Wrapper"));
    }

    #[test]
    fn trait_methods_get_the_trait_as_type_and_bodies_close() {
        let src = "pub trait Probe {\n\
                       fn enabled(&self) -> bool;\n\
                       fn record(&mut self) { self.enabled(); }\n\
                   }\n\
                   fn after() {}\n";
        let p = parse_file("crates/obs/src/lib.rs", src, false);
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Probe"));
        assert_eq!(p.fns[1].calls.len(), 1);
        assert!(p.fns[2].impl_type.is_none(), "trait scope closed");
        assert!(p.pub_items.iter().any(|it| it.text == "pub trait Probe"));
    }

    #[test]
    fn impl_headers_resolve_generic_and_for_forms() {
        let toks = tokenize(&["GlobalAlloc for CountingAlloc".to_string()]);
        assert_eq!(self_type_of(&toks, true).as_deref(), Some("CountingAlloc"));
        let toks = tokenize(&["Display for Vec<Foo>".to_string()]);
        assert_eq!(self_type_of(&toks, true).as_deref(), Some("Vec"));
        let toks = tokenize(&["FrameSim".to_string()]);
        assert_eq!(self_type_of(&toks, true).as_deref(), Some("FrameSim"));
    }

    #[test]
    fn pub_crate_items_stay_out_of_the_surface() {
        let src = "pub(crate) fn internal() {}\npub fn external() {}\n";
        let p = parse_file("crates/mem/src/lib.rs", src, false);
        assert_eq!(p.pub_items.len(), 1);
        assert!(p.pub_items[0].text.contains("external"));
    }
}
