//! `cargo xtask` entry point.
//!
//! ```text
//! cargo xtask lint [--format text|json] [--root <dir>] [--update-budgets]
//! cargo xtask deep-lint [--format text|json] [--root <dir>] [--why <symbol>]
//!                       [--update-surface] [--update-budgets]
//! cargo xtask bench-compare <current.json> <baseline.json>
//! ```
//!
//! Exit codes: 0 clean, 1 violations / perf regression, 2 usage/IO
//! error. `--update-budgets` ratchets the respective table of
//! `lint-budgets.toml` down to the current per-crate counts before
//! checking; `--update-surface` accepts API drift into
//! `api-surface.lock`; `--why <symbol>` explains a function's taint
//! status with the full offending call chain.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: cargo xtask lint [--format text|json] [--root <dir>] [--update-budgets]\n\
                     \u{20}      cargo xtask deep-lint [--format text|json] [--root <dir>] \
     [--why <symbol>] [--update-surface] [--update-budgets]\n\
                     \u{20}      cargo xtask bench-compare <current.json> <baseline.json>";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "lint" => cmd_lint(args),
        "deep-lint" => cmd_deep_lint(args),
        "bench-compare" => cmd_bench_compare(args),
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_lint(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut format = String::from("text");
    // Default to the workspace this binary was built from, so
    // `cargo xtask lint` works from any subdirectory.
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut update_budgets = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--format" => match args.next() {
                Some(v) if v == "text" || v == "json" => format = v,
                _ => {
                    eprintln!("--format takes `text` or `json`\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("--root takes a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--update-budgets" => update_budgets = true,
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let result = if update_budgets {
        xtask::update_budgets(&root)
    } else {
        xtask::lint_root(&root)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if format == "json" {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_deep_lint(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut format = String::from("text");
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut opts = xtask::deep::DeepOptions::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--format" => match args.next() {
                Some(v) if v == "text" || v == "json" => format = v,
                _ => {
                    eprintln!("--format takes `text` or `json`\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("--root takes a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--why" => match args.next() {
                Some(v) => opts.why = Some(v),
                None => {
                    eprintln!("--why takes a fn name or Type::name\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--update-surface" => opts.update_surface = true,
            "--update-budgets" => opts.update_budgets = true,
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match xtask::deep::deep_lint_root(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if format == "json" {
        print!("{}", report.render_json());
        if let Some(why) = &report.why {
            // --why output stays human-facing even under --format json.
            eprint!("{why}");
        }
    } else {
        print!("{}", report.render_text());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_bench_compare(mut args: impl Iterator<Item = String>) -> ExitCode {
    let (Some(current_path), Some(baseline_path), None) = (args.next(), args.next(), args.next())
    else {
        eprintln!("bench-compare takes exactly two report paths\n{USAGE}");
        return ExitCode::from(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("{path}: {e}"))
            .and_then(|text| xtask::bench::parse_report(&text).map_err(|e| format!("{path}: {e}")))
    };
    let (current, baseline) = match (read(&current_path), read(&baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let comparison = xtask::bench::compare(&current, &baseline);
    for line in &comparison.lines {
        println!("{line}");
    }
    if comparison.fail {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
