//! `cargo xtask` entry point.
//!
//! ```text
//! cargo xtask lint [--format text|json] [--root <dir>]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask lint [--format text|json] [--root <dir>]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd != "lint" {
        eprintln!("unknown command `{cmd}`\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut format = String::from("text");
    // Default to the workspace this binary was built from, so
    // `cargo xtask lint` works from any subdirectory.
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--format" => match args.next() {
                Some(v) if v == "text" || v == "json" => format = v,
                _ => {
                    eprintln!("--format takes `text` or `json`\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("--root takes a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match xtask::lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if format == "json" {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
