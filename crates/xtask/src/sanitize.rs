//! Lexer-level sanitizer: blank out comments and literals so rule
//! patterns only ever match real code, while collecting `// lint:`
//! annotations from the comments as they are skipped.
//!
//! The scanner is deliberately not a full Rust parser — it tracks just
//! enough token structure (line/block comments, string/char/byte/raw
//! literals, lifetimes, brace depth, `#[cfg(test)]` blocks) to make
//! substring rules sound on this workspace, with zero dependencies.

/// One `// lint: allow(<rule>) -- <justification>` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowAnnotation {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Rule id being allowed.
    pub rule: String,
    /// Free-text justification after `--` (empty when missing).
    pub justification: String,
}

/// One `// lint: typed-sibling(<fn>)` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiblingAnnotation {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Test function the annotation points at.
    pub test_fn: String,
}

/// One `// lint: taint-barrier(<why>)` annotation (consumed by the
/// deep-lint call-graph taint pass, docs/LINTS.md): on a source line
/// it suppresses that nondeterminism source; on (or up to three lines
/// above) a `fn` definition it stops taint from propagating out of
/// that function to its callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierAnnotation {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Why the boundary is sound (mandatory).
    pub why: String,
}

/// A source file after sanitization.
#[derive(Debug)]
pub struct Sanitized {
    /// Per-line code with comment and literal *contents* blanked to
    /// spaces (column positions preserved).
    pub code_lines: Vec<String>,
    /// Whether each line sits inside a `#[cfg(test)]` block.
    pub test_lines: Vec<bool>,
    /// All allow annotations, in line order.
    pub allows: Vec<AllowAnnotation>,
    /// All typed-sibling annotations, in line order.
    pub siblings: Vec<SiblingAnnotation>,
    /// All taint-barrier annotations, in line order.
    pub barriers: Vec<BarrierAnnotation>,
    /// Lines whose comment opens a `// SAFETY:` justification (used by
    /// the deep-lint unsafe audit).
    pub safety_lines: Vec<usize>,
    /// Malformed `// lint:` comments (line, problem).
    pub bad_annotations: Vec<(usize, String)>,
}

impl Sanitized {
    /// Whether `rule` is allowed on 1-based line `line`: an annotation
    /// on the line itself or alone on the line directly above.
    #[must_use]
    pub fn allow_for(&self, line: usize, rule: &str) -> Option<&AllowAnnotation> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

/// Sanitize `source`, blanking comments and literal contents and
/// collecting annotations.
#[must_use]
pub fn sanitize(source: &str) -> Sanitized {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments: Vec<(usize, String)> = Vec::new(); // (1-based line, text)
    let mut line = 1usize;
    let mut i = 0usize;

    // Emit `c` into the blanked stream, tracking line numbers.
    macro_rules! keep {
        ($c:expr) => {{
            let c = $c;
            if c == '\n' {
                line += 1;
            }
            out.push(c);
        }};
    }
    // Blank `c`: newlines survive, everything else becomes a space.
    macro_rules! blank {
        ($c:expr) => {{
            let c = $c;
            if c == '\n' {
                line += 1;
                out.push('\n');
            } else {
                out.push(' ');
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                // Line comment: blank it, but capture the text so
                // `// lint:` annotations survive.
                let start_line = line;
                let mut text = String::new();
                while i < chars.len() && chars[i] != '\n' {
                    text.push(chars[i]);
                    blank!(chars[i]);
                    i += 1;
                }
                comments.push((start_line, text));
            }
            '/' if next == Some('*') => {
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        blank!(chars[i]);
                        blank!(chars[i + 1]);
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        blank!(chars[i]);
                        blank!(chars[i + 1]);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        blank!(chars[i]);
                        i += 1;
                    }
                }
            }
            '"' => {
                // Ordinary string literal.
                keep!('"');
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        blank!(chars[i]);
                        blank!(chars[i + 1]);
                        i += 2;
                    } else if chars[i] == '"' {
                        keep!('"');
                        i += 1;
                        break;
                    } else {
                        blank!(chars[i]);
                        i += 1;
                    }
                }
            }
            'r' | 'b' if is_raw_string_start(&chars, i) => {
                // r"...", r#"..."#, br"...", b"..." — skip prefix, count
                // hashes, blank until the matching close.
                while chars[i] == 'r' || chars[i] == 'b' {
                    keep!(chars[i]);
                    i += 1;
                }
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    keep!('#');
                    hashes += 1;
                    i += 1;
                }
                keep!('"'); // opening quote (is_raw_string_start checked it)
                i += 1;
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            keep!('"');
                            i += 1;
                            for _ in 0..hashes {
                                keep!('#');
                                i += 1;
                            }
                            break 'raw;
                        }
                    }
                    blank!(chars[i]);
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime: a literal closes within a
                // few chars ('x', '\n', '\u{1F600}'); a lifetime does
                // not.
                if let Some(end) = char_literal_end(&chars, i) {
                    keep!('\'');
                    i += 1;
                    while i < end {
                        blank!(chars[i]);
                        i += 1;
                    }
                    keep!('\'');
                    i += 1;
                } else {
                    keep!('\'');
                    i += 1;
                }
            }
            c => {
                keep!(c);
                i += 1;
            }
        }
    }

    let code_lines: Vec<String> = out.lines().map(str::to_string).collect();
    let test_lines = mark_test_lines(&code_lines);

    let mut allows = Vec::new();
    let mut siblings = Vec::new();
    let mut barriers = Vec::new();
    let mut safety_lines = Vec::new();
    let mut bad = Vec::new();
    for (cline, text) in comments {
        let body = text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start();
        if body.starts_with("SAFETY:") {
            safety_lines.push(cline);
        }
        parse_annotation(
            cline,
            &text,
            &mut allows,
            &mut siblings,
            &mut barriers,
            &mut bad,
        );
    }

    Sanitized {
        code_lines,
        test_lines,
        allows,
        siblings,
        barriers,
        safety_lines,
        bad_annotations: bad,
    }
}

/// Does `chars[i..]` start a raw/byte string literal (`r"`, `r#"`,
/// `br"`, `b"`)? `i` points at the `r`/`b`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Not a prefix if glued to a preceding identifier (e.g. `var"`
    // cannot occur, but `numbr` followed by `"` could confuse us).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') && j - i < 2 {
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// If `chars[i]` (a `'`) opens a char literal, return the index of the
/// closing quote; `None` for lifetimes.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped: find the next unescaped quote within a small
            // window (covers \n, \u{...}, \x7f).
            let mut j = i + 2;
            while j < chars.len() && j - i < 12 {
                if chars[j] == '\'' {
                    return Some(j);
                }
                j += 1;
            }
            None
        }
        _ => {
            // 'x' — exactly one char then a quote. Anything else
            // (e.g. 'static) is a lifetime.
            (chars.get(i + 2) == Some(&'\'')).then_some(i + 2)
        }
    }
}

/// Mark every line inside a `#[cfg(test)]` block (attribute line
/// included) as test code by tracking brace depth.
fn mark_test_lines(code_lines: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    // While inside a test block: Some(depth the block closes at).
    let mut close_at: Option<i64> = None;
    let mut pending = false;
    for (idx, line) in code_lines.iter().enumerate() {
        if close_at.is_none() && line.contains("#[cfg(test)]") {
            pending = true;
        }
        if close_at.is_some() || pending {
            flags[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending {
                        // The block the attribute applies to.
                        close_at = Some(depth - 1);
                        pending = false;
                    }
                }
                '}' => {
                    depth -= 1;
                    if close_at == Some(depth) {
                        close_at = None;
                    }
                }
                _ => {}
            }
        }
    }
    flags
}

/// Parse a single comment's text for `lint:` annotations.
fn parse_annotation(
    line: usize,
    text: &str,
    allows: &mut Vec<AllowAnnotation>,
    siblings: &mut Vec<SiblingAnnotation>,
    barriers: &mut Vec<BarrierAnnotation>,
    bad: &mut Vec<(usize, String)>,
) {
    // Only comments whose body *starts* with `lint:` are annotations;
    // prose that merely mentions the syntax (docs, hints) is not.
    let stripped = text
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    let Some(rest) = stripped.strip_prefix("lint:") else {
        return;
    };
    let body = rest.trim();
    if let Some(rest) = body.strip_prefix("allow(") {
        let Some(close) = rest.find(')') else {
            bad.push((line, "unclosed allow(...)".into()));
            return;
        };
        let rule = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim();
        let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if rule.is_empty() {
            bad.push((line, "empty rule id in allow()".into()));
            return;
        }
        if justification.is_empty() {
            bad.push((
                line,
                format!("allow({rule}) needs a justification: `-- <why>`"),
            ));
            return;
        }
        allows.push(AllowAnnotation {
            line,
            rule,
            justification: justification.to_string(),
        });
    } else if let Some(rest) = body.strip_prefix("typed-sibling(") {
        let Some(close) = rest.find(')') else {
            bad.push((line, "unclosed typed-sibling(...)".into()));
            return;
        };
        let test_fn = rest[..close].trim().to_string();
        if test_fn.is_empty() {
            bad.push((line, "empty test name in typed-sibling()".into()));
            return;
        }
        siblings.push(SiblingAnnotation { line, test_fn });
    } else if let Some(rest) = body.strip_prefix("taint-barrier(") {
        // The why lives inside the parens; allow nested parens in the
        // prose by matching the *last* close on the line.
        let Some(close) = rest.rfind(')') else {
            bad.push((line, "unclosed taint-barrier(...)".into()));
            return;
        };
        let why = rest[..close].trim().to_string();
        if why.is_empty() {
            bad.push((
                line,
                "taint-barrier() needs a justification inside the parens".into(),
            ));
            return;
        }
        barriers.push(BarrierAnnotation { line, why });
    } else {
        bad.push((
            line,
            format!(
                "unknown lint annotation `{}`",
                body.chars().take(40).collect::<String>()
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"Instant::now\"; // Instant::now in comment\nlet b = 1;\n";
        let s = sanitize(src);
        assert!(!s.code_lines[0].contains("Instant::now"));
        assert!(s.code_lines[1].contains("let b = 1;"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_kept() {
        let src = "let r = r#\"panic!(\"x\")\"#;\nlet c = '\\n';\nfn f<'a>(x: &'a str) {}\n";
        let s = sanitize(src);
        assert!(!s.code_lines[0].contains("panic!"));
        assert!(s.code_lines[2].contains("&'a str"));
    }

    #[test]
    fn block_comments_nest() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let s = sanitize(src);
        assert!(!s.code_lines[0].contains("comment"));
        assert!(s.code_lines[0].contains("let x = 1;"));
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let s = sanitize(src);
        assert_eq!(s.test_lines, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn allow_annotations_are_parsed_and_require_justification() {
        let src = "x.unwrap(); // lint: allow(no-panic) -- index proven in bounds\n\
                   y.unwrap(); // lint: allow(no-panic)\n";
        let s = sanitize(src);
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].rule, "no-panic");
        assert_eq!(s.allows[0].justification, "index proven in bounds");
        assert_eq!(s.bad_annotations.len(), 1);
        assert!(s.bad_annotations[0].1.contains("justification"));
    }

    #[test]
    fn allow_applies_to_own_and_next_line() {
        let src = "// lint: allow(determinism-hash) -- order never observed\nuse std::collections::HashSet;\n";
        let s = sanitize(src);
        assert!(s.allow_for(2, "determinism-hash").is_some());
        assert!(s.allow_for(3, "determinism-hash").is_none());
        assert!(s.allow_for(2, "no-panic").is_none());
    }

    #[test]
    fn typed_sibling_annotations_are_parsed() {
        let src = "// lint: typed-sibling(bad_config_is_typed)\n#[test]\n";
        let s = sanitize(src);
        assert_eq!(s.siblings.len(), 1);
        assert_eq!(s.siblings[0].test_fn, "bad_config_is_typed");
    }

    #[test]
    fn taint_barrier_annotations_are_parsed_and_require_a_why() {
        let src = "// lint: taint-barrier(wall-clock hook (watchdog) only)\n\
                   std::thread::sleep(d);\n\
                   // lint: taint-barrier()\n";
        let s = sanitize(src);
        assert_eq!(s.barriers.len(), 1);
        assert_eq!(s.barriers[0].line, 1);
        assert_eq!(s.barriers[0].why, "wall-clock hook (watchdog) only");
        assert_eq!(s.bad_annotations.len(), 1);
        assert!(s.bad_annotations[0].1.contains("justification"));
    }

    #[test]
    fn safety_comment_openers_are_recorded() {
        let src = "// SAFETY: delegates to System unchanged; the slot\n\
                   // never dangles.\n\
                   unsafe { work() }\n\
                   let x = 1; // not a safety comment\n";
        let s = sanitize(src);
        assert_eq!(s.safety_lines, vec![1]);
    }
}
