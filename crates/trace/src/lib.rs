//! Binary frame traces: snapshot a [`Scene`] to disk and replay it.
//!
//! The original evaluation platform (TEAPOT) drives the simulator from
//! captured GLES traces of real games. This crate provides the
//! equivalent workflow for the reproduction: any frame — synthetic or
//! hand-built — can be serialized to a compact, versioned binary
//! format, shipped, diffed and replayed bit-identically.
//!
//! # Format
//!
//! Little-endian throughout:
//!
//! ```text
//! magic   "DTXL"            4 bytes
//! version u32               (currently 1)
//! counts  u32 × 3           textures, vertices, draws
//! textures: id u32, width u32, height u32, base u64, layout u8
//! vertices: pos f32×3, uv f32×2
//! draws:    first u32, count u32, tex u32,
//!           alu u32, samples u32, filter u8(+aniso u8),
//!           transform f32×16 (column-major),
//!           flags u8 (bit0 opaque, bit1 late-Z), uv_scale f32
//! ```
//!
//! # Examples
//!
//! ```
//! use dtexl_scene::{Game, SceneSpec};
//! use dtexl_trace::{read_trace, write_trace};
//!
//! let scene = Game::GravityTetris.scene(&SceneSpec::new(128, 64, 0));
//! let mut buf = Vec::new();
//! write_trace(&scene, &mut buf)?;
//! let replayed = read_trace(&mut buf.as_slice())?;
//! assert_eq!(scene, replayed);
//! # Ok::<(), dtexl_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dtexl_gmath::{Mat4, Vec2, Vec3, Vec4};
use dtexl_scene::{DepthMode, DrawCommand, Scene, ShaderProfile, Vertex};
use dtexl_texture::{Filter, TexelLayout, TextureDesc};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"DTXL";
const VERSION: u32 = 1;

/// Maximum texture count a trace header may declare (2^16).
pub const MAX_TEXTURES: usize = 1 << 16;
/// Maximum vertex count a trace header may declare (2^26, ~64M).
pub const MAX_VERTICES: usize = 1 << 26;
/// Maximum draw count a trace header may declare (2^20, ~1M).
pub const MAX_DRAWS: usize = 1 << 20;

/// Errors produced while reading or writing traces.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the `DTXL` magic.
    BadMagic([u8; 4]),
    /// The stream's version is not supported.
    UnsupportedVersion(u32),
    /// A field carried an invalid value.
    Corrupt(&'static str),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic(m) => write!(f, "bad trace magic {m:?}"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Corrupt(what) => write!(f, "corrupt trace field: {what}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Serialize `scene` into `w`.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on write failures.
pub fn write_trace<W: Write>(scene: &Scene, mut w: W) -> Result<(), TraceError> {
    w.write_all(MAGIC)?;
    put_u32(&mut w, VERSION)?;
    put_u32(&mut w, scene.textures.len() as u32)?;
    put_u32(&mut w, scene.vertices.len() as u32)?;
    put_u32(&mut w, scene.draws.len() as u32)?;

    for t in &scene.textures {
        put_u32(&mut w, t.id())?;
        put_u32(&mut w, t.width())?;
        put_u32(&mut w, t.height())?;
        put_u64(&mut w, t.base_addr())?;
        w.write_all(&[match t.layout() {
            TexelLayout::Morton => 0,
            TexelLayout::RowMajor => 1,
        }])?;
    }
    for v in &scene.vertices {
        for f in [v.pos.x, v.pos.y, v.pos.z, v.uv.x, v.uv.y] {
            put_f32(&mut w, f)?;
        }
    }
    for d in &scene.draws {
        put_u32(&mut w, d.first_vertex)?;
        put_u32(&mut w, d.vertex_count)?;
        put_u32(&mut w, d.texture)?;
        put_u32(&mut w, d.shader.alu_ops)?;
        put_u32(&mut w, d.shader.tex_samples)?;
        let (filter_tag, aniso) = match d.shader.filter {
            Filter::Bilinear => (0u8, 0u8),
            Filter::Trilinear => (1, 0),
            Filter::Anisotropic { max_ratio } => (2, max_ratio),
        };
        w.write_all(&[filter_tag, aniso])?;
        for c in 0..4 {
            let col = d.transform.col(c);
            for f in [col.x, col.y, col.z, col.w] {
                put_f32(&mut w, f)?;
            }
        }
        let flags = u8::from(d.opaque) | (u8::from(d.depth_mode == DepthMode::Late) << 1);
        w.write_all(&[flags])?;
        put_f32(&mut w, d.uv_scale)?;
    }
    Ok(())
}

/// Deserialize a scene from `r`.
///
/// # Errors
///
/// Returns a [`TraceError`] on malformed input; the resulting scene is
/// additionally checked with [`Scene::validate`].
pub fn read_trace<R: Read>(mut r: R) -> Result<Scene, TraceError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceError::BadMagic(magic));
    }
    let version = get_u32(&mut r)?;
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let n_tex = get_u32(&mut r)? as usize;
    let n_vtx = get_u32(&mut r)? as usize;
    let n_draw = get_u32(&mut r)? as usize;
    // Reject garbage headers before allocating anything: the largest
    // real frames are thousands of draws over tens of textures, so
    // these caps are generous but keep a corrupted header from
    // requesting gigabytes of `Vec` up front.
    if n_tex > MAX_TEXTURES || n_vtx > MAX_VERTICES || n_draw > MAX_DRAWS {
        return Err(TraceError::Corrupt("implausible counts"));
    }

    let mut scene = Scene::default();
    for _ in 0..n_tex {
        let id = get_u32(&mut r)?;
        let width = get_u32(&mut r)?;
        let height = get_u32(&mut r)?;
        let base = get_u64(&mut r)?;
        let mut layout = [0u8; 1];
        r.read_exact(&mut layout)?;
        if width == 0 || !width.is_power_of_two() || height == 0 || !height.is_power_of_two() {
            return Err(TraceError::Corrupt("texture dimensions"));
        }
        let layout = match layout[0] {
            0 => TexelLayout::Morton,
            1 => TexelLayout::RowMajor,
            _ => return Err(TraceError::Corrupt("texel layout tag")),
        };
        scene
            .textures
            .push(TextureDesc::with_layout(id, width, height, base, layout));
    }
    for _ in 0..n_vtx {
        let mut f = [0f32; 5];
        for slot in &mut f {
            *slot = get_f32(&mut r)?;
        }
        scene.vertices.push(Vertex::new(
            Vec3::new(f[0], f[1], f[2]),
            Vec2::new(f[3], f[4]),
        ));
    }
    for _ in 0..n_draw {
        let first_vertex = get_u32(&mut r)?;
        let vertex_count = get_u32(&mut r)?;
        let texture = get_u32(&mut r)?;
        let alu_ops = get_u32(&mut r)?;
        let tex_samples = get_u32(&mut r)?;
        let mut tag = [0u8; 2];
        r.read_exact(&mut tag)?;
        let filter = match tag[0] {
            0 => Filter::Bilinear,
            1 => Filter::Trilinear,
            2 => Filter::Anisotropic { max_ratio: tag[1] },
            _ => return Err(TraceError::Corrupt("filter tag")),
        };
        let mut cols = [Vec4::ZERO; 4];
        for col in &mut cols {
            let mut f = [0f32; 4];
            for slot in &mut f {
                *slot = get_f32(&mut r)?;
            }
            *col = Vec4::new(f[0], f[1], f[2], f[3]);
        }
        let mut flags = [0u8; 1];
        r.read_exact(&mut flags)?;
        let uv_scale = get_f32(&mut r)?;
        scene.draws.push(DrawCommand {
            first_vertex,
            vertex_count,
            texture,
            shader: ShaderProfile {
                alu_ops,
                tex_samples,
                filter,
            },
            transform: Mat4::from_cols(cols[0], cols[1], cols[2], cols[3]),
            opaque: flags[0] & 1 != 0,
            uv_scale,
            depth_mode: if flags[0] & 2 != 0 {
                DepthMode::Late
            } else {
                DepthMode::Early
            },
        });
    }
    scene
        .validate()
        .map_err(|_| TraceError::Corrupt("scene validation"))?;
    Ok(scene)
}

/// Write `scene` to a trace file at `path`.
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn save_trace(scene: &Scene, path: &std::path::Path) -> Result<(), TraceError> {
    write_trace(scene, std::io::BufWriter::new(std::fs::File::create(path)?))
}

/// Read a trace file from `path`.
///
/// # Errors
///
/// Propagates file and format errors.
pub fn load_trace(path: &std::path::Path) -> Result<Scene, TraceError> {
    read_trace(std::io::BufReader::new(std::fs::File::open(path)?))
}

fn put_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_f32<W: Write>(w: &mut W, v: f32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_f32<R: Read>(r: &mut R) -> std::io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtexl_scene::{Game, SceneSpec};

    fn roundtrip(scene: &Scene) -> Scene {
        let mut buf = Vec::new();
        write_trace(scene, &mut buf).unwrap();
        read_trace(buf.as_slice()).unwrap()
    }

    #[test]
    fn all_games_roundtrip_bit_identically() {
        for game in Game::ALL {
            let scene = game.scene(&SceneSpec::new(192, 96, 0));
            assert_eq!(roundtrip(&scene), scene, "{}", game.alias());
        }
    }

    #[test]
    fn empty_scene_roundtrips() {
        assert_eq!(roundtrip(&Scene::default()), Scene::default());
    }

    #[test]
    fn preserves_layouts_filters_and_flags() {
        let mut scene = Game::TempleRun.scene(&SceneSpec::new(128, 64, 0));
        let scene2 = scene.relayout(TexelLayout::RowMajor);
        scene = scene2;
        scene.draws[0].depth_mode = DepthMode::Late;
        scene.draws[0].shader.filter = Filter::Anisotropic { max_ratio: 7 };
        let back = roundtrip(&scene);
        assert_eq!(back.textures[0].layout(), TexelLayout::RowMajor);
        assert_eq!(back.draws[0].depth_mode, DepthMode::Late);
        assert_eq!(
            back.draws[0].shader.filter,
            Filter::Anisotropic { max_ratio: 7 }
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOPE\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic(_)));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&Scene::default(), &mut buf).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf = Vec::new();
        write_trace(&Game::ShootWar.scene(&SceneSpec::new(64, 64, 0)), &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(matches!(read_trace(buf.as_slice()), Err(TraceError::Io(_))));
    }

    #[test]
    fn truncated_header_is_io_error_at_every_cut() {
        // Cut the stream inside the magic, the version and each count:
        // all must surface as Io (unexpected EOF), never a panic or a
        // bogus empty scene.
        let mut buf = Vec::new();
        write_trace(&Game::ShootWar.scene(&SceneSpec::new(64, 64, 0)), &mut buf).unwrap();
        for cut in [0, 2, 4, 6, 8, 11, 14, 17, 19] {
            let short = &buf[..cut];
            assert!(
                matches!(read_trace(short), Err(TraceError::Io(_))),
                "cut at {cut} bytes"
            );
        }
    }

    #[test]
    fn huge_counts_are_rejected_before_allocation() {
        // A valid header whose counts claim gigabytes of payload: the
        // reader must fail fast with Corrupt, not try to allocate.
        for (tex, vtx, draw) in [
            (u32::MAX, 0, 0),
            (0, u32::MAX, 0),
            (0, 0, u32::MAX),
            (MAX_TEXTURES as u32 + 1, 0, 0),
            (0, MAX_VERTICES as u32 + 1, 0),
            (0, 0, MAX_DRAWS as u32 + 1),
        ] {
            let mut buf = Vec::new();
            buf.extend_from_slice(MAGIC);
            buf.extend_from_slice(&VERSION.to_le_bytes());
            buf.extend_from_slice(&tex.to_le_bytes());
            buf.extend_from_slice(&vtx.to_le_bytes());
            buf.extend_from_slice(&draw.to_le_bytes());
            assert!(
                matches!(
                    read_trace(buf.as_slice()),
                    Err(TraceError::Corrupt("implausible counts"))
                ),
                "counts ({tex}, {vtx}, {draw})"
            );
        }
    }

    #[test]
    fn counts_at_the_cap_are_not_rejected_as_implausible() {
        // Exactly at the cap: the bound check passes and the failure
        // (if any) comes from the truncated payload, not the header.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(MAX_TEXTURES as u32).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(read_trace(buf.as_slice()), Err(TraceError::Io(_))));
    }

    #[test]
    fn corrupt_texture_dims_rejected() {
        let scene = Scene {
            textures: vec![TextureDesc::new(0, 64, 64, 0x1000_0000)],
            ..Scene::default()
        };
        let mut buf = Vec::new();
        write_trace(&scene, &mut buf).unwrap();
        // Texture width field sits right after header + id.
        let w_off = 4 + 4 + 12 + 4;
        buf[w_off..w_off + 4].copy_from_slice(&100u32.to_le_bytes());
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(TraceError::Corrupt("texture dimensions"))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("dtexl_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frame.dtxl");
        let scene = Game::Maze.scene(&SceneSpec::new(128, 64, 2));
        save_trace(&scene, &path).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(loaded, scene);
        std::fs::remove_file(&path).ok();
    }
}
