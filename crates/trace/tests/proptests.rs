//! Property tests: arbitrary scenes roundtrip through the trace format.

use dtexl_gmath::{Mat4, Vec2, Vec3};
use dtexl_scene::{DepthMode, DrawCommand, Scene, ShaderProfile, Vertex};
use dtexl_texture::{Filter, TexelLayout, TextureDesc};
use dtexl_trace::{read_trace, write_trace, TraceError};
use proptest::prelude::*;

fn arb_scene() -> impl Strategy<Value = Scene> {
    let tex = (0u32..4, 2u32..9, 2u32..9, any::<bool>()).prop_map(|(i, lw, lh, rm)| {
        TextureDesc::with_layout(
            i,
            1 << lw,
            1 << lh,
            0x1000_0000 + u64::from(i) * 0x100_0000,
            if rm {
                TexelLayout::RowMajor
            } else {
                TexelLayout::Morton
            },
        )
    });
    let vert = (
        -100.0f32..100.0,
        -100.0f32..100.0,
        -100.0f32..100.0,
        -4.0f32..4.0,
        -4.0f32..4.0,
    )
        .prop_map(|(x, y, z, u, v)| Vertex::new(Vec3::new(x, y, z), Vec2::new(u, v)));
    (
        proptest::collection::vec(tex, 1..4),
        proptest::collection::vec(vert, 3..60),
        proptest::collection::vec(
            (
                0u32..4,
                1u32..60,
                0u8..3,
                any::<bool>(),
                any::<bool>(),
                0.1f32..4.0,
            ),
            0..20,
        ),
    )
        .prop_map(|(mut textures, vertices, draw_specs)| {
            // Unique, dense ids.
            for (i, t) in textures.iter_mut().enumerate() {
                *t = TextureDesc::with_layout(
                    i as u32,
                    t.width(),
                    t.height(),
                    t.base_addr(),
                    t.layout(),
                );
            }
            let n_tex = textures.len() as u32;
            let n_vtx = vertices.len() as u32;
            let draws = draw_specs
                .into_iter()
                .map(|(tex, tri_want, filter, opaque, late, uv_scale)| {
                    let max_tris = n_vtx / 3;
                    let tris = tri_want.clamp(1, max_tris);
                    DrawCommand {
                        first_vertex: 0,
                        vertex_count: tris * 3,
                        texture: tex % n_tex,
                        shader: ShaderProfile {
                            alu_ops: 10,
                            tex_samples: 2,
                            filter: match filter {
                                0 => Filter::Bilinear,
                                1 => Filter::Trilinear,
                                _ => Filter::Anisotropic { max_ratio: 4 },
                            },
                        },
                        transform: Mat4::IDENTITY,
                        opaque,
                        uv_scale,
                        depth_mode: if late {
                            DepthMode::Late
                        } else {
                            DepthMode::Early
                        },
                    }
                })
                .collect();
            Scene {
                textures,
                vertices,
                draws,
            }
        })
}

proptest! {
    #[test]
    fn roundtrip_is_identity(scene in arb_scene()) {
        prop_assume!(scene.validate().is_ok());
        let mut buf = Vec::new();
        write_trace(&scene, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(back, scene);
    }

    /// Flipping any single byte of the header region never panics —
    /// it either still parses (payload bytes) or returns an error.
    #[test]
    fn corrupted_headers_never_panic(scene in arb_scene(), pos in 0usize..16, bit in 0u8..8) {
        prop_assume!(scene.validate().is_ok());
        let mut buf = Vec::new();
        write_trace(&scene, &mut buf).unwrap();
        if pos < buf.len() {
            buf[pos] ^= 1 << bit;
        }
        match read_trace(buf.as_slice()) {
            Ok(s) => prop_assert!(s.validate().is_ok()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Truncation anywhere yields an error, never a panic or a
    /// half-read scene.
    #[test]
    fn truncation_is_an_error(scene in arb_scene(), frac in 0.0f64..1.0) {
        prop_assume!(scene.validate().is_ok());
        prop_assume!(!scene.draws.is_empty());
        let mut buf = Vec::new();
        write_trace(&scene, &mut buf).unwrap();
        let cut = (buf.len() as f64 * frac) as usize;
        prop_assume!(cut < buf.len());
        buf.truncate(cut);
        prop_assert!(matches!(
            read_trace(buf.as_slice()),
            Err(TraceError::Io(_) | TraceError::BadMagic(_) | TraceError::Corrupt(_) | TraceError::UnsupportedVersion(_))
        ));
    }

    /// Flipping bits *anywhere* in a valid trace — header, texture
    /// table, vertex payload, draw records — never panics: the reader
    /// either reproduces a scene that still validates or returns a
    /// typed [`TraceError`].
    #[test]
    fn any_byte_mutation_never_panics(
        scene in arb_scene(),
        mutations in proptest::collection::vec((0usize..4096, 0u8..8), 1..8),
    ) {
        prop_assume!(scene.validate().is_ok());
        let mut buf = Vec::new();
        write_trace(&scene, &mut buf).unwrap();
        for (pos, bit) in mutations {
            let len = buf.len();
            buf[pos % len] ^= 1 << bit;
        }
        match read_trace(buf.as_slice()) {
            Ok(s) => prop_assert!(s.validate().is_ok(), "Ok scenes must validate"),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Overwriting the three count fields with arbitrary values never
    /// allocates past the plausibility caps: implausible counts are
    /// rejected up front, plausible-but-wrong ones run out of bytes.
    /// Either way the scene that escapes is bounded by the caps.
    #[test]
    fn count_field_attacks_respect_plausibility_caps(
        scene in arb_scene(),
        n_tex in any::<u32>(),
        n_vtx in any::<u32>(),
        n_draw in any::<u32>(),
    ) {
        use dtexl_trace::{MAX_DRAWS, MAX_TEXTURES, MAX_VERTICES};
        prop_assume!(scene.validate().is_ok());
        let mut buf = Vec::new();
        write_trace(&scene, &mut buf).unwrap();
        buf[8..12].copy_from_slice(&n_tex.to_le_bytes());
        buf[12..16].copy_from_slice(&n_vtx.to_le_bytes());
        buf[16..20].copy_from_slice(&n_draw.to_le_bytes());
        let over_cap = n_tex as usize > MAX_TEXTURES
            || n_vtx as usize > MAX_VERTICES
            || n_draw as usize > MAX_DRAWS;
        match read_trace(buf.as_slice()) {
            Ok(s) => {
                prop_assert!(!over_cap);
                prop_assert!(s.textures.len() <= MAX_TEXTURES);
                prop_assert!(s.vertices.len() <= MAX_VERTICES);
                prop_assert!(s.draws.len() <= MAX_DRAWS);
            }
            Err(e) => {
                if over_cap {
                    prop_assert!(
                        matches!(e, TraceError::Corrupt("implausible counts")),
                        "cap rejection must fire before any parsing: {e}"
                    );
                }
            }
        }
    }

    /// Arbitrary garbage bytes are rejected with a typed error — the
    /// reader never panics on input it did not write.
    #[test]
    fn garbage_input_yields_typed_errors(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        match read_trace(bytes.as_slice()) {
            Ok(s) => prop_assert!(s.validate().is_ok()),
            Err(
                TraceError::Io(_)
                | TraceError::BadMagic(_)
                | TraceError::UnsupportedVersion(_)
                | TraceError::Corrupt(_),
            ) => {}
        }
    }

    /// The file-path entry point surfaces the same guarantees as the
    /// reader: a mutated on-disk trace loads as a typed error or a
    /// still-valid scene, never a panic.
    #[test]
    fn load_trace_of_a_mutated_file_never_panics(
        scene in arb_scene(),
        pos in 0usize..4096,
        bit in 0u8..8,
        case in 0u32..1_000_000,
    ) {
        use dtexl_trace::{load_trace, save_trace};
        prop_assume!(scene.validate().is_ok());
        let dir = std::env::temp_dir().join(format!(
            "dtexl_trace_fuzz_{}_{case}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dtxl");
        save_trace(&scene, &path).unwrap();
        let mut buf = std::fs::read(&path).unwrap();
        let len = buf.len();
        buf[pos % len] ^= 1 << bit;
        std::fs::write(&path, &buf).unwrap();
        let outcome = load_trace(&path);
        std::fs::remove_dir_all(&dir).ok();
        match outcome {
            Ok(s) => prop_assert!(s.validate().is_ok()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}
