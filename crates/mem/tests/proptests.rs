//! Property-based tests for the cache and hierarchy models.

use dtexl_mem::{
    CacheConfig, DramConfig, DramModel, SetAssocCache, TextureHierarchy, TextureHierarchyConfig,
};
use proptest::prelude::*;

fn small_cache() -> CacheConfig {
    CacheConfig {
        size_bytes: 1024,
        line_bytes: 64,
        ways: 4,
        latency: 1,
    }
}

/// A trivially-correct reference LRU: per set, a `Vec` ordered from
/// most- to least-recently used.
#[derive(Debug)]
struct RefLru {
    sets: usize,
    ways: usize,
    content: Vec<Vec<u64>>,
}

impl RefLru {
    fn new(cfg: &CacheConfig) -> Self {
        Self {
            sets: cfg.sets(),
            ways: cfg.ways,
            content: vec![Vec::new(); cfg.sets()],
        }
    }

    fn access(&mut self, line: u64) -> bool {
        let set = &mut self.content[(line % self.sets as u64) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.insert(0, line);
            true
        } else {
            set.insert(0, line);
            set.truncate(self.ways);
            false
        }
    }
}

proptest! {
    /// The production set-associative cache agrees hit-for-hit with a
    /// trivially-correct reference LRU model on arbitrary traces.
    #[test]
    fn cache_matches_reference_lru(addrs in proptest::collection::vec(0u64..256, 1..600)) {
        let cfg = small_cache();
        let mut cache = SetAssocCache::new(cfg);
        let mut reference = RefLru::new(&cfg);
        for (i, &a) in addrs.iter().enumerate() {
            let got = cache.access(a).hit;
            let want = reference.access(a);
            prop_assert_eq!(got, want, "divergence at access {} (line {})", i, a);
        }
    }

    /// A line just accessed is always resident immediately afterwards.
    #[test]
    fn access_makes_resident(addrs in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut c = SetAssocCache::new(small_cache());
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.probe(a));
        }
    }

    /// hits + misses == accesses, and evictions never exceed misses.
    #[test]
    fn stats_invariants(addrs in proptest::collection::vec(0u64..512, 0..300)) {
        let mut c = SetAssocCache::new(small_cache());
        for &a in &addrs {
            c.access(a);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(s.evictions <= s.misses);
        prop_assert!(c.resident_lines() <= 1024 / 64);
    }

    /// Accessing the same short sequence twice in a row: if the working
    /// set fits one set's ways, the second pass is all hits.
    #[test]
    fn rewalk_of_fitting_set_hits(start in 0u64..1000) {
        let cfg = small_cache();
        let sets = cfg.sets() as u64;
        let mut c = SetAssocCache::new(cfg);
        // Four lines mapping to the same set (ways = 4): they all fit.
        let lines: Vec<u64> = (0..4).map(|i| start + i * sets).collect();
        for &l in &lines {
            c.access(l);
        }
        for &l in &lines {
            prop_assert!(c.access(l).hit);
        }
    }

    /// Hierarchy invariant: L2 accesses == total L1 misses, DRAM accesses
    /// == L2 misses, for any access pattern over any core.
    #[test]
    fn hierarchy_flow_conservation(
        ops in proptest::collection::vec((0usize..4, 0u64..50_000), 0..500)
    ) {
        let mut h = TextureHierarchy::new(TextureHierarchyConfig::default());
        for &(sc, line) in &ops {
            h.access(sc, line);
        }
        let s = h.stats();
        prop_assert_eq!(s.l1_misses(), s.l2.accesses);
        prop_assert_eq!(s.l2.misses, s.dram_accesses);
        prop_assert_eq!(s.l1_accesses(), ops.len() as u64);
    }

    /// Replication degree is bounded by the number of private L1s.
    #[test]
    fn replication_bounded(
        ops in proptest::collection::vec((0usize..4, 0u64..64), 1..200)
    ) {
        let mut h = TextureHierarchy::new(TextureHierarchyConfig::default());
        for &(sc, line) in &ops {
            h.access(sc, line);
        }
        for line in 0..64 {
            prop_assert!(h.replication_of(line) <= 4);
        }
    }

    /// DRAM latencies always land in the configured window.
    #[test]
    fn dram_window(lo in 10u32..60, span in 0u32..80, lines in proptest::collection::vec(any::<u64>(), 1..100)) {
        let mut d = DramModel::new(DramConfig { min_latency: lo, max_latency: lo + span, ..DramConfig::default() });
        for &l in &lines {
            let lat = d.request(l);
            prop_assert!(lat >= lo && lat <= lo + span);
        }
    }

    /// The upper-bound configuration has one L1, so no line is ever
    /// replicated, and for traces whose working set fits the aggregated
    /// capacity every non-compulsory access hits.
    #[test]
    fn upper_bound_never_replicates(
        ops in proptest::collection::vec((0usize..4, 0u64..256), 1..400)
    ) {
        let cfg = TextureHierarchyConfig::default().upper_bound(4);
        let mut unified = TextureHierarchy::new(cfg);
        let mut distinct = std::collections::HashSet::new();
        for &(_sc, line) in &ops {
            unified.access(0, line);
            distinct.insert(line);
        }
        for line in 0..256 {
            prop_assert!(unified.replication_of(line) <= 1);
        }
        // 256 distinct 64 B lines = 16 KiB << 64 KiB: only compulsory misses.
        prop_assert_eq!(unified.stats().l2.accesses, distinct.len() as u64);
    }
}
