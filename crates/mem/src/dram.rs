//! Deterministic DRAM latency model (DRAMSim2 stand-in).
//!
//! Table II specifies a 50–100-cycle main-memory latency. The paper
//! reports that DTexL does not change the number of main-memory accesses,
//! so a full bank/row model is unnecessary; what matters is that misses
//! see a realistic, address-dependent latency in that window. We hash the
//! line address and a request counter into the window, which gives
//! reproducible per-run latencies with bank-conflict-like jitter.

use serde::{Deserialize, Serialize};

use crate::LineAddr;

/// DRAM latency window configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Minimum load-to-use latency in cycles.
    pub min_latency: u32,
    /// Maximum load-to-use latency in cycles.
    pub max_latency: u32,
    /// Deterministic fault injection: every `spike_period`-th request
    /// (1-based) pays `spike_extra` additional cycles, modeling
    /// contention spikes on the memory bus. `0` disables spikes.
    pub spike_period: u64,
    /// Extra latency cycles charged on spiked requests.
    pub spike_extra: u32,
}

impl Default for DramConfig {
    /// Table II: 50–100 cycles, no injected spikes.
    fn default() -> Self {
        Self {
            min_latency: 50,
            max_latency: 100,
            spike_period: 0,
            spike_extra: 0,
        }
    }
}

/// Deterministic DRAM model: every fill request gets a latency in
/// `[min_latency, max_latency]` derived from the address and request
/// order.
///
/// # Examples
///
/// ```
/// use dtexl_mem::{DramConfig, DramModel};
/// let mut dram = DramModel::new(DramConfig::default());
/// let lat = dram.request(0xdead);
/// assert!((50..=100).contains(&lat));
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    requests: u64,
    spikes: u64,
    total_latency: u64,
}

impl DramModel {
    /// Create the model.
    ///
    /// # Panics
    ///
    /// Panics if `min_latency > max_latency`.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        assert!(config.min_latency <= config.max_latency);
        Self {
            config,
            requests: 0,
            spikes: 0,
            total_latency: 0,
        }
    }

    /// Issue a fill request for `line`; returns its latency in cycles.
    pub fn request(&mut self, line: LineAddr) -> u32 {
        self.requests += 1;
        let span = u64::from(self.config.max_latency - self.config.min_latency) + 1;
        // splitmix64-style hash of (line, request index)
        let mut z = line
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.requests);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let mut lat = self.config.min_latency + (z % span) as u32;
        if self.config.spike_period > 0 && self.requests.is_multiple_of(self.config.spike_period) {
            lat += self.config.spike_extra;
            self.spikes += 1;
        }
        self.total_latency += u64::from(lat);
        lat
    }

    /// Number of fill requests served.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Number of requests that landed on an injected latency spike
    /// (always 0 with `spike_period == 0`).
    #[must_use]
    pub fn spikes(&self) -> u64 {
        self.spikes
    }

    /// Mean latency over all requests (0 when idle).
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_in_window() {
        let mut d = DramModel::new(DramConfig::default());
        for line in 0..1000 {
            let lat = d.request(line * 7919);
            assert!((50..=100).contains(&lat));
        }
        assert_eq!(d.requests(), 1000);
        let mean = d.mean_latency();
        assert!(
            (60.0..90.0).contains(&mean),
            "hash should spread latencies, mean = {mean}"
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = DramModel::new(DramConfig::default());
        let mut b = DramModel::new(DramConfig::default());
        for line in [1, 2, 3, 99, 12345] {
            assert_eq!(a.request(line), b.request(line));
        }
    }

    #[test]
    fn request_order_matters() {
        let mut a = DramModel::new(DramConfig::default());
        let first = a.request(42);
        let second = a.request(42);
        // Same address, different request index: latencies may differ,
        // and both remain in the window.
        assert!((50..=100).contains(&first));
        assert!((50..=100).contains(&second));
    }

    #[test]
    fn degenerate_window() {
        let mut d = DramModel::new(DramConfig {
            min_latency: 70,
            max_latency: 70,
            ..DramConfig::default()
        });
        assert_eq!(d.request(5), 70);
    }

    #[test]
    // lint: typed-sibling(degenerate_window)
    #[should_panic]
    fn inverted_window_panics() {
        let _ = DramModel::new(DramConfig {
            min_latency: 100,
            max_latency: 50,
            ..DramConfig::default()
        });
    }

    #[test]
    fn latency_spikes_hit_every_nth_request() {
        let cfg = DramConfig {
            min_latency: 70,
            max_latency: 70,
            spike_period: 3,
            spike_extra: 500,
        };
        let mut d = DramModel::new(cfg);
        let lats: Vec<u32> = (0..9).map(|line| d.request(line)).collect();
        // Requests are 1-based: the 3rd, 6th and 9th spike.
        assert_eq!(lats, [70, 70, 570, 70, 70, 570, 70, 70, 570]);
        assert_eq!(d.spikes(), 3);
    }

    #[test]
    fn zero_period_never_spikes() {
        let mut d = DramModel::new(DramConfig {
            spike_extra: 500,
            ..DramConfig::default()
        });
        for line in 0..100 {
            assert!((50..=100).contains(&d.request(line)));
        }
        assert_eq!(d.spikes(), 0);
    }
}
