//! Replacement policies for [`SetAssocCache`](crate::SetAssocCache).
//!
//! The baseline GPU uses LRU everywhere (Table II); [`Fifo`] and
//! [`PseudoRandom`] exist for the ablation benches, to show that DTexL's
//! gains are not an artifact of the replacement policy.

/// A per-set replacement policy.
///
/// The cache calls [`on_access`](ReplacementPolicy::on_access) on every
/// hit or fill and asks [`victim`](ReplacementPolicy::victim) which way
/// to evict when a set is full. Implementations keep whatever per-way
/// state they need; `ways` is fixed at construction.
pub trait ReplacementPolicy: std::fmt::Debug {
    /// Record that `way` in `set` was touched at logical time `tick`.
    fn on_access(&mut self, set: usize, way: usize, tick: u64);

    /// Choose the way to evict from `set` at logical time `tick`.
    fn victim(&mut self, set: usize, tick: u64) -> usize;
}

/// Least-recently-used replacement (the baseline policy).
#[derive(Debug, Clone)]
pub struct Lru {
    last_used: Vec<u64>,
    ways: usize,
}

impl Lru {
    /// Create LRU state for `sets × ways` lines.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            last_used: vec![0; sets * ways],
            ways,
        }
    }
}

impl ReplacementPolicy for Lru {
    #[inline]
    fn on_access(&mut self, set: usize, way: usize, tick: u64) {
        self.last_used[set * self.ways + way] = tick;
    }

    fn victim(&mut self, set: usize, tick: u64) -> usize {
        let _ = tick;
        let base = set * self.ways;
        let mut best = 0;
        let mut best_tick = u64::MAX;
        for w in 0..self.ways {
            let t = self.last_used[base + w];
            if t < best_tick {
                best_tick = t;
                best = w;
            }
        }
        best
    }
}

/// First-in-first-out replacement (ablation only).
#[derive(Debug, Clone)]
pub struct Fifo {
    filled_at: Vec<u64>,
    ways: usize,
}

impl Fifo {
    /// Create FIFO state for `sets × ways` lines.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            filled_at: vec![u64::MAX; sets * ways],
            ways,
        }
    }
}

impl ReplacementPolicy for Fifo {
    fn on_access(&mut self, set: usize, way: usize, tick: u64) {
        // FIFO only records the *fill* time: the first touch of a way.
        let slot = &mut self.filled_at[set * self.ways + way];
        if *slot == u64::MAX {
            *slot = tick;
        }
    }

    fn victim(&mut self, set: usize, tick: u64) -> usize {
        let _ = tick;
        let base = set * self.ways;
        let mut best = 0;
        let mut best_tick = u64::MAX;
        for w in 0..self.ways {
            let t = self.filled_at[base + w];
            if t < best_tick {
                best_tick = t;
                best = w;
            }
        }
        // The chosen way is being refilled: reset its fill time.
        self.filled_at[base + best] = u64::MAX;
        best
    }
}

/// Deterministic pseudo-random replacement (ablation only).
///
/// Uses a per-policy xorshift stream so runs stay reproducible.
#[derive(Debug, Clone)]
pub struct PseudoRandom {
    state: u64,
    ways: usize,
}

impl PseudoRandom {
    /// Create the policy with a fixed seed.
    #[must_use]
    pub fn new(ways: usize, seed: u64) -> Self {
        Self {
            state: seed | 1,
            ways,
        }
    }
}

impl ReplacementPolicy for PseudoRandom {
    fn on_access(&mut self, _set: usize, _way: usize, _tick: u64) {}

    fn victim(&mut self, set: usize, tick: u64) -> usize {
        let mut x = self.state ^ (set as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tick;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        (x % self.ways as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut lru = Lru::new(1, 4);
        for (tick, way) in [(1, 0), (2, 1), (3, 2), (4, 3)] {
            lru.on_access(0, way, tick);
        }
        lru.on_access(0, 0, 5); // refresh way 0
        assert_eq!(lru.victim(0, 6), 1, "way 1 is now the oldest");
    }

    #[test]
    fn lru_tracks_sets_independently() {
        let mut lru = Lru::new(2, 2);
        lru.on_access(0, 0, 10);
        lru.on_access(0, 1, 1);
        lru.on_access(1, 0, 1);
        lru.on_access(1, 1, 10);
        assert_eq!(lru.victim(0, 11), 1);
        assert_eq!(lru.victim(1, 11), 0);
    }

    #[test]
    fn fifo_ignores_rehits() {
        let mut fifo = Fifo::new(1, 2);
        fifo.on_access(0, 0, 1); // fill way 0
        fifo.on_access(0, 1, 2); // fill way 1
        fifo.on_access(0, 0, 99); // re-hit does not refresh
        assert_eq!(fifo.victim(0, 100), 0, "way 0 filled first");
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut a = PseudoRandom::new(4, 42);
        let mut b = PseudoRandom::new(4, 42);
        for tick in 0..100 {
            let va = a.victim(tick as usize % 8, tick);
            let vb = b.victim(tick as usize % 8, tick);
            assert_eq!(va, vb);
            assert!(va < 4);
        }
    }
}
