//! Statistics for caches and the texture hierarchy.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that found the line resident.
    pub hits: u64,
    /// Lookups that had to fill.
    pub misses: u64,
    /// Fills that displaced a valid line.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when there were no accesses).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Miss rate in `[0, 1]` (0 when there were no accesses).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.accesses += rhs.accesses;
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.evictions += rhs.evictions;
    }
}

/// Cheap monotone snapshot of the shared levels (L2 + DRAM), taken
/// before/after a replay window so observability probes can attribute
/// the delta to one fragment subtile without walking full
/// [`HierarchyStats`]. All counters are cumulative since construction;
/// subtract two snapshots to get a window's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemCounters {
    /// Shared-L2 lookups.
    pub l2_accesses: u64,
    /// Shared-L2 hits.
    pub l2_hits: u64,
    /// Shared-L2 misses (each becomes a DRAM request).
    pub l2_misses: u64,
    /// DRAM fill requests.
    pub dram_requests: u64,
    /// DRAM requests that landed on an injected latency spike.
    pub dram_spikes: u64,
}

impl MemCounters {
    /// Counter-wise difference `self - earlier` (saturating, so a
    /// mismatched pair degrades to zeros instead of wrapping).
    #[must_use]
    pub fn since(&self, earlier: &Self) -> Self {
        Self {
            l2_accesses: self.l2_accesses.saturating_sub(earlier.l2_accesses),
            l2_hits: self.l2_hits.saturating_sub(earlier.l2_hits),
            l2_misses: self.l2_misses.saturating_sub(earlier.l2_misses),
            dram_requests: self.dram_requests.saturating_sub(earlier.dram_requests),
            dram_spikes: self.dram_spikes.saturating_sub(earlier.dram_spikes),
        }
    }
}

/// Aggregated statistics for the texture memory hierarchy.
///
/// `l2.accesses` is the headline metric of the paper (Figs. 2, 11, 16):
/// every private-L1 miss becomes an L2 access.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Per-L1 statistics, indexed by shader core.
    pub l1: Vec<CacheStats>,
    /// Shared L2 statistics.
    pub l2: CacheStats,
    /// Number of DRAM fills (L2 misses).
    pub dram_accesses: u64,
    /// Distinct lines ever requested (compulsory-miss floor).
    pub distinct_lines: u64,
}

impl HierarchyStats {
    /// Sum of all L1 accesses (the texture request count).
    #[must_use]
    pub fn l1_accesses(&self) -> u64 {
        self.l1.iter().map(|s| s.accesses).sum()
    }

    /// Sum of all L1 misses — equals the L2 access count.
    #[must_use]
    pub fn l1_misses(&self) -> u64 {
        self.l1.iter().map(|s| s.misses).sum()
    }

    /// Mean requests per distinct line — the "reuse of texture memory
    /// blocks" the paper observes "varies greatly across different
    /// games" (§IV-B). Zero when nothing was accessed.
    #[must_use]
    pub fn reuse_factor(&self) -> f64 {
        if self.distinct_lines == 0 {
            0.0
        } else {
            self.l1_accesses() as f64 / self.distinct_lines as f64
        }
    }

    /// Mean L1 fills per distinct line — how often the *same* block was
    /// (re)fetched into private L1s. This is the paper's "memory block
    /// replication" made measurable: a fine-grained scheduler fetches
    /// each shared line into up to four private caches (plus capacity
    /// refetches); a locality scheduler approaches 1 fill per line.
    /// Zero when nothing was accessed.
    #[must_use]
    pub fn fill_redundancy(&self) -> f64 {
        if self.distinct_lines == 0 {
            0.0
        } else {
            self.l1_misses() as f64 / self.distinct_lines as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CacheStats {
            accesses: 10,
            hits: 7,
            misses: 3,
            evictions: 1,
        };
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn add_assign_sums_fields() {
        let mut a = CacheStats {
            accesses: 1,
            hits: 1,
            misses: 0,
            evictions: 0,
        };
        a += CacheStats {
            accesses: 2,
            hits: 0,
            misses: 2,
            evictions: 1,
        };
        assert_eq!(a.accesses, 3);
        assert_eq!(a.hits, 1);
        assert_eq!(a.misses, 2);
        assert_eq!(a.evictions, 1);
    }

    #[test]
    fn hierarchy_aggregates() {
        let h = HierarchyStats {
            l1: vec![
                CacheStats {
                    accesses: 10,
                    hits: 8,
                    misses: 2,
                    evictions: 0,
                },
                CacheStats {
                    accesses: 20,
                    hits: 15,
                    misses: 5,
                    evictions: 2,
                },
            ],
            l2: CacheStats {
                accesses: 7,
                hits: 6,
                misses: 1,
                evictions: 0,
            },
            dram_accesses: 1,
            distinct_lines: 10,
        };
        assert_eq!(h.l1_accesses(), 30);
        assert_eq!(h.l1_misses(), 7);
        assert_eq!(h.l1_misses(), h.l2.accesses);
    }
}
