//! Set-associative cache model.

use crate::replacement::{Lru, ReplacementPolicy};
use crate::stats::CacheStats;
use crate::{LineAddr, LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Geometry of a cache (Table II style: size, line, associativity,
/// access latency in cycles).
///
/// # Examples
///
/// ```
/// use dtexl_mem::CacheConfig;
/// let l1 = CacheConfig::texture_l1();
/// assert_eq!(l1.sets(), 16 * 1024 / 64 / 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Access latency in cycles (hit latency).
    pub latency: u32,
}

impl CacheConfig {
    /// The paper's 16 KiB, 4-way, 1-cycle private L1 texture cache.
    #[must_use]
    pub const fn texture_l1() -> Self {
        Self {
            size_bytes: 16 * 1024,
            line_bytes: LINE_BYTES,
            ways: 4,
            latency: 1,
        }
    }

    /// The paper's 8 KiB, 4-way, 1-cycle L1 vertex cache.
    #[must_use]
    pub const fn vertex_l1() -> Self {
        Self {
            size_bytes: 8 * 1024,
            line_bytes: LINE_BYTES,
            ways: 4,
            latency: 1,
        }
    }

    /// The paper's 64 KiB, 4-way, 1-cycle tile cache.
    #[must_use]
    pub const fn tile_cache() -> Self {
        Self {
            size_bytes: 64 * 1024,
            line_bytes: LINE_BYTES,
            ways: 4,
            latency: 1,
        }
    }

    /// The paper's 1 MiB, 8-way, 12-cycle shared L2.
    #[must_use]
    pub const fn l2() -> Self {
        Self {
            size_bytes: 1024 * 1024,
            line_bytes: LINE_BYTES,
            ways: 8,
            latency: 12,
        }
    }

    /// A copy of this configuration scaled to `factor ×` the capacity
    /// (used for the Fig. 16 upper bound: one SC with a 4× L1).
    #[must_use]
    pub fn scaled(mut self, factor: u64) -> Self {
        self.size_bytes *= factor;
        self
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero ways or a capacity
    /// that is not a multiple of `line_bytes × ways`).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0, "cache must have at least one way");
        let lines = self.size_bytes / self.line_bytes;
        let sets = lines as usize / self.ways;
        assert!(
            sets > 0 && sets * self.ways == lines as usize,
            "capacity {} not divisible into {} ways of {}-byte lines",
            self.size_bytes,
            self.ways,
            self.line_bytes,
        );
        sets
    }
}

/// Result of a single cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already resident.
    pub hit: bool,
    /// Line evicted to make room (misses only; `None` when an invalid
    /// way was filled).
    pub evicted: Option<LineAddr>,
}

/// Statically-dispatched replacement selector.
///
/// Every cache access calls [`ReplacementPolicy::on_access`]; going
/// through a `Box<dyn …>` put a virtual call on the hottest loop of
/// the simulator. The stock policies are a closed set, so they are
/// dispatched by `match` (which inlines); arbitrary external policies
/// still work through the boxed [`Custom`](PolicyImpl::Custom) arm.
#[derive(Debug)]
pub(crate) enum PolicyImpl {
    Lru(Lru),
    Fifo(crate::replacement::Fifo),
    Random(crate::replacement::PseudoRandom),
    Custom(Box<dyn ReplacementPolicy + Send>),
}

impl PolicyImpl {
    #[inline]
    fn on_access(&mut self, set: usize, way: usize, tick: u64) {
        match self {
            Self::Lru(p) => p.on_access(set, way, tick),
            Self::Fifo(p) => p.on_access(set, way, tick),
            Self::Random(p) => p.on_access(set, way, tick),
            Self::Custom(p) => p.on_access(set, way, tick),
        }
    }

    #[inline]
    fn victim(&mut self, set: usize, tick: u64) -> usize {
        match self {
            Self::Lru(p) => p.victim(set, tick),
            Self::Fifo(p) => p.victim(set, tick),
            Self::Random(p) => p.victim(set, tick),
            Self::Custom(p) => p.victim(set, tick),
        }
    }
}

/// Tag value marking an invalid (never filled) way. No real line can
/// take this value: line addresses are byte addresses divided by the
/// 64-byte line size, so they are bounded well below `u64::MAX`.
const INVALID_TAG: LineAddr = LineAddr::MAX;

/// A set-associative cache with pluggable replacement.
///
/// The model is *functional plus latency*: it tracks residency and
/// statistics; timing (latency stacking, MSHR contention) is handled by
/// the pipeline's shader-core model using [`CacheConfig::latency`].
///
/// # Examples
///
/// ```
/// use dtexl_mem::{CacheConfig, SetAssocCache};
/// let mut c = SetAssocCache::new(CacheConfig::texture_l1());
/// assert!(!c.access(42).hit);
/// assert!(c.access(42).hit);
/// assert_eq!(c.stats().accesses, 2);
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: usize,
    /// `sets - 1` when the set count is a power of two: `line % sets`
    /// is then a mask instead of a per-access 64-bit division (every
    /// standard geometry is power-of-two; the modulo fallback keeps
    /// arbitrary configs working, bit-identically).
    set_mask: Option<u64>,
    /// `tags[set * ways + way]`; [`INVALID_TAG`] = invalid. A bare
    /// sentinel keeps the hit scan to one 8-byte compare per way
    /// (an `Option<LineAddr>` doubles the tag array and the compare).
    tags: Vec<LineAddr>,
    policy: PolicyImpl,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Create a cache with LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if `config` is degenerate (see [`CacheConfig::sets`]).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Self::with_policy_impl(config, PolicyImpl::Lru(Lru::new(sets, config.ways)))
    }

    /// Create a cache with a custom replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if `config` is degenerate (see [`CacheConfig::sets`]).
    #[must_use]
    pub fn with_policy(config: CacheConfig, policy: Box<dyn ReplacementPolicy + Send>) -> Self {
        Self::with_policy_impl(config, PolicyImpl::Custom(policy))
    }

    pub(crate) fn with_policy_impl(config: CacheConfig, policy: PolicyImpl) -> Self {
        let sets = config.sets();
        Self {
            config,
            sets,
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
            tags: vec![INVALID_TAG; sets * config.ways],
            policy,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        match self.set_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.sets as u64) as usize,
        }
    }

    /// Look up `line`, filling it on a miss. Returns hit/miss and any
    /// eviction.
    #[inline]
    pub fn access(&mut self, line: LineAddr) -> AccessOutcome {
        debug_assert!(
            line != INVALID_TAG,
            "line address is the invalid-tag sentinel"
        );
        self.tick += 1;
        self.stats.accesses += 1;
        let set = self.set_of(line);
        let base = set * self.config.ways;

        // Hit?
        for way in 0..self.config.ways {
            if self.tags[base + way] == line {
                self.policy.on_access(set, way, self.tick);
                self.stats.hits += 1;
                return AccessOutcome {
                    hit: true,
                    evicted: None,
                };
            }
        }

        // Miss: fill an invalid way if there is one.
        self.stats.misses += 1;
        for way in 0..self.config.ways {
            if self.tags[base + way] == INVALID_TAG {
                self.tags[base + way] = line;
                self.policy.on_access(set, way, self.tick);
                return AccessOutcome {
                    hit: false,
                    evicted: None,
                };
            }
        }

        // Evict.
        let way = self.policy.victim(set, self.tick);
        debug_assert!(way < self.config.ways);
        let evicted = Some(self.tags[base + way]).filter(|&t| t != INVALID_TAG);
        self.tags[base + way] = line;
        self.policy.on_access(set, way, self.tick);
        self.stats.evictions += 1;
        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Whether `line` is currently resident (no state change).
    #[must_use]
    #[inline]
    pub fn probe(&self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        let base = set * self.config.ways;
        (0..self.config.ways).any(|w| self.tags[base + w] == line)
    }

    /// Invalidate all contents, keeping statistics.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID_TAG);
    }

    /// Number of resident lines.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::replacement::Fifo;

    fn tiny() -> CacheConfig {
        // 2 sets × 2 ways × 64 B = 256 B
        CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 2,
            latency: 1,
        }
    }

    #[test]
    fn table2_configs() {
        assert_eq!(CacheConfig::texture_l1().sets(), 64);
        assert_eq!(CacheConfig::vertex_l1().sets(), 32);
        assert_eq!(CacheConfig::tile_cache().sets(), 256);
        assert_eq!(CacheConfig::l2().sets(), 2048);
        assert_eq!(CacheConfig::texture_l1().scaled(4).size_bytes, 64 * 1024);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SetAssocCache::new(tiny());
        assert!(!c.access(0).hit);
        assert!(c.access(0).hit);
        assert!(c.probe(0));
        assert!(!c.probe(1));
    }

    #[test]
    fn conflict_eviction_lru() {
        let mut c = SetAssocCache::new(tiny());
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        c.access(0);
        c.access(2);
        let out = c.access(4);
        assert!(!out.hit);
        assert_eq!(out.evicted, Some(0), "LRU evicts line 0");
        assert!(c.probe(2) && c.probe(4) && !c.probe(0));
    }

    #[test]
    fn lru_refresh_changes_victim() {
        let mut c = SetAssocCache::new(tiny());
        c.access(0);
        c.access(2);
        c.access(0); // refresh 0
        let out = c.access(4);
        assert_eq!(out.evicted, Some(2));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = SetAssocCache::new(tiny());
        c.access(0); // set 0
        c.access(1); // set 1
        c.access(2); // set 0
        c.access(3); // set 1
        assert_eq!(c.resident_lines(), 4);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = SetAssocCache::new(tiny());
        for _ in 0..3 {
            c.access(7);
        }
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn flush_clears_content_keeps_stats() {
        let mut c = SetAssocCache::new(tiny());
        c.access(0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats().accesses, 1);
        assert!(!c.access(0).hit, "miss again after flush");
    }

    #[test]
    fn custom_policy_is_used() {
        let cfg = tiny();
        let mut c = SetAssocCache::with_policy(cfg, Box::new(Fifo::new(cfg.sets(), cfg.ways)));
        c.access(0);
        c.access(2);
        c.access(0); // FIFO ignores the re-hit
        let out = c.access(4);
        assert_eq!(out.evicted, Some(0), "FIFO still evicts first-filled");
    }

    #[test]
    fn divisible_config_is_accepted() {
        // The checked counterpart of `degenerate_config_panics`: a
        // geometry where size / (line * ways) divides evenly.
        let c = SetAssocCache::new(CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 4,
            latency: 1,
        });
        assert_eq!(c.config().sets(), 16);
    }

    #[test]
    // lint: typed-sibling(divisible_config_is_accepted)
    #[should_panic(expected = "not divisible")]
    fn degenerate_config_panics() {
        let _ = SetAssocCache::new(CacheConfig {
            size_bytes: 100,
            line_bytes: 64,
            ways: 3,
            latency: 1,
        });
    }

    #[test]
    fn working_set_equal_to_capacity_fits() {
        let cfg = tiny();
        let mut c = SetAssocCache::new(cfg);
        let lines = cfg.size_bytes / cfg.line_bytes;
        for l in 0..lines {
            c.access(l);
        }
        for l in 0..lines {
            assert!(c.access(l).hit, "line {l} should be resident");
        }
    }
}
