//! Memory hierarchy and energy models for the DTexL GPU simulator.
//!
//! The paper's baseline (Table II) has, per GPU:
//!
//! * one 8 KiB L1 **vertex cache** (geometry pipeline),
//! * four private 16 KiB L1 **texture caches** (one per shader core),
//! * one 64 KiB **tile cache** (tiling engine / parameter buffer),
//! * a shared 1 MiB, 8-way **L2** (12-cycle access),
//! * DRAM with a 50–100 cycle load-to-use latency.
//!
//! All caches use 64-byte lines. This crate provides:
//!
//! * [`SetAssocCache`] — a set-associative cache model with pluggable
//!   replacement ([`replacement`]), per-cache [`CacheStats`];
//! * [`TextureHierarchy`] — the private-L1s → shared-L2 → DRAM stack the
//!   shader cores see, which is what DTexL's scheduling manipulates;
//! * [`DramModel`] — deterministic 50–100-cycle latency model standing in
//!   for DRAMSim2;
//! * [`energy`] — an event-energy model standing in for McPAT.
//!
//! # Examples
//!
//! ```
//! use dtexl_mem::{TextureHierarchy, TextureHierarchyConfig};
//!
//! let mut hier = TextureHierarchy::new(TextureHierarchyConfig::default());
//! let first = hier.access(0, 0x1000);
//! assert!(!first.l1_hit, "cold miss");
//! let again = hier.access(0, 0x1000);
//! assert!(again.l1_hit, "now resident in SC0's L1");
//! // A different SC misses in its own private L1 but hits in shared L2:
//! let other = hier.access(1, 0x1000);
//! assert!(!other.l1_hit && other.l2_hit, "replicated across private L1s");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dram;
mod energy_impl;
mod hierarchy;
mod lane;
pub mod replacement;
mod stats;

pub use cache::{AccessOutcome, CacheConfig, SetAssocCache};
pub use dram::{DramConfig, DramModel};
pub use hierarchy::{AccessResult, ReplacementKind, TextureHierarchy, TextureHierarchyConfig};
pub use lane::{L1Lane, L2Request, ReplayOutcome, SharedL2};
pub use stats::{CacheStats, HierarchyStats, MemCounters};

/// Event-energy model (per-access energies plus leakage) standing in for
/// McPAT.
pub mod energy {
    pub use crate::energy_impl::{EnergyBreakdown, EnergyEvents, EnergyModel, EnergyParams};
}

/// A 64-byte cache-line address (byte address ≫ 6).
///
/// The whole simulator works at line granularity: texture sampling
/// produces line addresses directly.
pub type LineAddr = u64;

/// Number of bytes in a cache line throughout the modeled GPU.
pub const LINE_BYTES: u64 = 64;

/// Convert a byte address into a line address.
#[must_use]
pub fn line_of(byte_addr: u64) -> LineAddr {
    byte_addr / LINE_BYTES
}
