//! The private-L1s → shared-L2 → DRAM texture hierarchy.

use crate::cache::{CacheConfig, PolicyImpl, SetAssocCache};
use crate::dram::{DramConfig, DramModel};
use crate::lane::{L1Lane, L2Request, SharedL2};
use crate::replacement::{Fifo, Lru, PseudoRandom};
use crate::stats::HierarchyStats;
use crate::LineAddr;
use serde::{Deserialize, Serialize};

/// Replacement policy selector for the hierarchy's caches.
///
/// The baseline GPU uses LRU (Table II); the other policies exist for
/// ablation studies showing DTexL's gains are not LRU artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplacementKind {
    /// Least recently used (baseline).
    #[default]
    Lru,
    /// First in, first out.
    Fifo,
    /// Deterministic pseudo-random.
    Random,
}

impl ReplacementKind {
    /// Build the policy as a statically-dispatched [`PolicyImpl`]: the
    /// selector is a closed enum, so the per-access policy hook avoids
    /// a virtual call on the simulator's hottest path.
    fn build(self, config: &CacheConfig) -> PolicyImpl {
        let sets = config.sets();
        match self {
            ReplacementKind::Lru => PolicyImpl::Lru(Lru::new(sets, config.ways)),
            ReplacementKind::Fifo => PolicyImpl::Fifo(Fifo::new(sets, config.ways)),
            ReplacementKind::Random => PolicyImpl::Random(PseudoRandom::new(config.ways, 0x5eed)),
        }
    }
}

/// Configuration of the texture memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextureHierarchyConfig {
    /// Number of shader cores / private L1 texture caches.
    pub num_l1: usize,
    /// Geometry of each private L1.
    pub l1: CacheConfig,
    /// Geometry of the shared L2.
    pub l2: CacheConfig,
    /// DRAM latency window.
    pub dram: DramConfig,
    /// Replacement policy for the L1s and the L2.
    pub replacement: ReplacementKind,
    /// Next-line prefetch on L1 misses (the simple form of the
    /// decoupled-prefetching related work the paper cites). On a
    /// demand miss, line+1 is also brought into the missing L1;
    /// prefetch fills consume L2 bandwidth (counted in the L2
    /// statistics) but add no demand latency.
    pub prefetch_next_line: bool,
}

impl Default for TextureHierarchyConfig {
    /// Table II baseline: 4 × 16 KiB L1, 1 MiB L2, 50–100-cycle DRAM.
    fn default() -> Self {
        Self {
            num_l1: 4,
            l1: CacheConfig::texture_l1(),
            l2: CacheConfig::l2(),
            dram: DramConfig::default(),
            replacement: ReplacementKind::Lru,
            prefetch_next_line: false,
        }
    }
}

impl TextureHierarchyConfig {
    /// The Fig. 16 upper-bound arrangement: a single shader core whose L1
    /// is `factor ×` the private size (aggregating all private capacity,
    /// with no replication possible).
    #[must_use]
    pub fn upper_bound(mut self, factor: u64) -> Self {
        self.l1 = self.l1.scaled(factor);
        self.num_l1 = 1;
        self
    }
}

/// Result of one texture access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Hit in the requesting core's private L1.
    pub l1_hit: bool,
    /// On L1 miss: hit in the shared L2.
    pub l2_hit: bool,
    /// Load-to-use latency in cycles, including lower levels.
    pub latency: u32,
}

/// The texture memory hierarchy of the modeled GPU: one private L1 per
/// shader core, a shared L2, and DRAM behind it.
///
/// This is the structure whose *aggregated capacity* DTexL's scheduling
/// protects: when adjacent quads land on different cores, the same line
/// is filled into several private L1s (replication), effectively
/// shrinking the total cache.
///
/// # Examples
///
/// ```
/// use dtexl_mem::{TextureHierarchy, TextureHierarchyConfig};
/// let mut h = TextureHierarchy::new(TextureHierarchyConfig::default());
/// h.access(0, 7);
/// h.access(1, 7);
/// // The same line now occupies space in two private L1s:
/// assert_eq!(h.stats().l2.accesses, 2);
/// ```
#[derive(Debug)]
pub struct TextureHierarchy {
    config: TextureHierarchyConfig,
    lanes: Vec<L1Lane>,
    shared: SharedL2,
    /// Scratch buffer for the trace-and-replay performed inside
    /// [`access`](Self::access), kept to avoid per-access allocation.
    sink: Vec<L2Request>,
}

impl TextureHierarchy {
    /// Build the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_l1 == 0` or any cache geometry is
    /// degenerate.
    #[must_use]
    pub fn new(config: TextureHierarchyConfig) -> Self {
        assert!(config.num_l1 > 0, "need at least one L1");
        Self {
            config,
            lanes: (0..config.num_l1)
                .map(|_| {
                    L1Lane::new(
                        SetAssocCache::with_policy_impl(
                            config.l1,
                            config.replacement.build(&config.l1),
                        ),
                        config.prefetch_next_line,
                    )
                })
                .collect(),
            shared: SharedL2::new(
                SetAssocCache::with_policy_impl(config.l2, config.replacement.build(&config.l2)),
                DramModel::new(config.dram),
            ),
            sink: Vec::with_capacity(2),
        }
    }

    /// The hierarchy's configuration.
    #[must_use]
    pub fn config(&self) -> &TextureHierarchyConfig {
        &self.config
    }

    /// Access `line` from shader core `sc`.
    ///
    /// Internally this traces the lane's L1 and immediately replays the
    /// emitted requests into the shared L2 — the same decomposition the
    /// parallel frame simulator uses, here degenerated to a replay
    /// window of one access.
    ///
    /// # Panics
    ///
    /// Panics if `sc >= num_l1`.
    #[inline]
    pub fn access(&mut self, sc: usize, line: LineAddr) -> AccessResult {
        self.sink.clear();
        let l1_latency = self.lanes[sc].l1_latency();
        if self.lanes[sc].access(line, &mut self.sink) {
            return AccessResult {
                l1_hit: true,
                l2_hit: false,
                latency: l1_latency,
            };
        }
        // The demand request precedes the optional prefetch, matching
        // the order a monolithic hierarchy would touch the L2 in.
        let mut demand = None;
        for i in 0..self.sink.len() {
            let req = self.sink[i];
            let out = self.shared.replay(req);
            if !req.prefetch {
                demand = Some(out);
            }
        }
        // lint: allow(no-panic) -- L1Lane::access pushes the demand request before any prefetch on every miss
        let out = demand.expect("an L1 miss always emits a demand request");
        AccessResult {
            l1_hit: false,
            l2_hit: out.l2_hit,
            latency: l1_latency + out.latency,
        }
    }

    /// Borrow lane `sc` for independent L1 simulation (tracing).
    ///
    /// # Panics
    ///
    /// Panics if `sc >= num_l1`.
    pub fn lane_mut(&mut self, sc: usize) -> &mut L1Lane {
        &mut self.lanes[sc]
    }

    /// Replay a trace of shared-L2 requests in order, returning the
    /// below-L1 latency of each demand request (see
    /// [`SharedL2::replay_demand`]).
    pub fn replay_demand(&mut self, requests: &[L2Request]) -> Vec<u32> {
        self.shared.replay_demand(requests)
    }

    /// Decompose into independently simulable per-SC lanes plus the
    /// shared levels. Each [`L1Lane`] can be moved to its own worker
    /// thread; the [`SharedL2`] must stay with the (serial) replay
    /// pass. [`join`](Self::join) reassembles the hierarchy.
    #[must_use]
    pub fn split(self) -> (TextureHierarchyConfig, Vec<L1Lane>, SharedL2) {
        (self.config, self.lanes, self.shared)
    }

    /// Reassemble a hierarchy previously taken apart by
    /// [`split`](Self::split).
    ///
    /// # Panics
    ///
    /// Panics if the lane count does not match `config.num_l1`.
    #[must_use]
    pub fn join(config: TextureHierarchyConfig, lanes: Vec<L1Lane>, shared: SharedL2) -> Self {
        assert_eq!(lanes.len(), config.num_l1, "lane count must match config");
        Self {
            config,
            lanes,
            shared,
            sink: Vec::with_capacity(2),
        }
    }

    /// Cumulative shared-level counters (constant-time; see
    /// [`SharedL2::counters`]).
    #[must_use]
    pub fn shared_counters(&self) -> crate::stats::MemCounters {
        self.shared.counters()
    }

    /// Snapshot of all statistics.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: self.lanes.iter().map(|l| *l.l1().stats()).collect(),
            l2: *self.shared.l2().stats(),
            dram_accesses: self.shared.dram().requests(),
            distinct_lines: self.distinct_lines(),
        }
    }

    /// Number of distinct lines ever requested (the compulsory-miss
    /// floor; `l1_accesses / distinct_lines` is the paper's
    /// "texture memory block reuse" characterization of §IV-B).
    #[must_use]
    pub fn distinct_lines(&self) -> u64 {
        if self.lanes.len() == 1 {
            return self.lanes[0].seen().len();
        }
        let sets: Vec<_> = self.lanes.iter().map(|l| l.seen()).collect();
        crate::lane::LineSet::union_len(&sets)
    }

    /// How many private L1s currently hold `line` — the replication
    /// degree the paper's schedulers minimize.
    #[must_use]
    pub fn replication_of(&self, line: LineAddr) -> usize {
        self.lanes.iter().filter(|l| l.probe(line)).count()
    }

    /// Invalidate every cache (e.g. between frames in sensitivity
    /// studies). Statistics are preserved.
    pub fn flush(&mut self) {
        for lane in &mut self.lanes {
            lane.l1_mut().flush();
        }
        self.shared.l2_mut().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> TextureHierarchy {
        TextureHierarchy::new(TextureHierarchyConfig::default())
    }

    #[test]
    fn miss_path_latencies() {
        let mut h = hier();
        let cold = h.access(0, 100);
        assert!(!cold.l1_hit && !cold.l2_hit);
        assert!(cold.latency >= 1 + 12 + 50 && cold.latency <= 1 + 12 + 100);

        let warm = h.access(0, 100);
        assert!(warm.l1_hit);
        assert_eq!(warm.latency, 1);

        let sibling = h.access(2, 100);
        assert!(!sibling.l1_hit && sibling.l2_hit);
        assert_eq!(sibling.latency, 1 + 12);
    }

    #[test]
    fn replication_counts_private_copies() {
        let mut h = hier();
        assert_eq!(h.replication_of(5), 0);
        h.access(0, 5);
        h.access(1, 5);
        h.access(3, 5);
        assert_eq!(h.replication_of(5), 3);
    }

    #[test]
    fn l2_accesses_equal_l1_misses() {
        let mut h = hier();
        for i in 0..100 {
            h.access((i % 4) as usize, i * 3);
            h.access((i % 4) as usize, i * 3); // re-hit in L1
        }
        let s = h.stats();
        assert_eq!(s.l1_misses(), s.l2.accesses);
        assert_eq!(s.l2.misses, s.dram_accesses);
        assert_eq!(s.l1_accesses(), 200);
    }

    #[test]
    fn upper_bound_config_aggregates_capacity() {
        let ub = TextureHierarchyConfig::default().upper_bound(4);
        assert_eq!(ub.num_l1, 1);
        assert_eq!(ub.l1.size_bytes, 64 * 1024);
        let mut h = TextureHierarchy::new(ub);
        // Upper bound never replicates: one access per line.
        h.access(0, 9);
        h.access(0, 9);
        assert_eq!(h.stats().l2.accesses, 1);
    }

    #[test]
    fn flush_preserves_stats() {
        let mut h = hier();
        h.access(0, 1);
        h.flush();
        assert_eq!(h.stats().l1_accesses(), 1);
        assert!(!h.access(0, 1).l1_hit);
    }

    #[test]
    fn replacement_kinds_all_work_and_differ() {
        let mut l2_accesses = Vec::new();
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::Fifo,
            ReplacementKind::Random,
        ] {
            let cfg = TextureHierarchyConfig {
                replacement: kind,
                ..TextureHierarchyConfig::default()
            };
            let mut h = TextureHierarchy::new(cfg);
            // A classic LRU-adversarial loop: 6 lines that all map to
            // one 4-way set, walked cyclically. LRU/FIFO thrash (miss
            // every access after warm-up); random keeps some residents.
            for _pass in 0..200 {
                for i in 0..6u64 {
                    h.access(0, i * 64);
                }
            }
            let s = h.stats();
            assert_eq!(s.l1_misses(), s.l2.accesses, "{kind:?}");
            l2_accesses.push(s.l2.accesses);
        }
        // The policies must actually change behavior on this pattern.
        let distinct: std::collections::HashSet<_> = l2_accesses.iter().collect();
        assert!(
            distinct.len() >= 2,
            "policies all identical: {l2_accesses:?}"
        );
    }

    #[test]
    fn prefetch_brings_in_the_next_line() {
        let cfg = TextureHierarchyConfig {
            prefetch_next_line: true,
            ..TextureHierarchyConfig::default()
        };
        let mut h = TextureHierarchy::new(cfg);
        let miss = h.access(0, 100);
        assert!(!miss.l1_hit);
        // Line 101 was prefetched: the demand access hits.
        let next = h.access(0, 101);
        assert!(next.l1_hit, "next line must be resident");
        // Prefetch traffic is visible in the statistics.
        let plain = {
            let mut h2 = TextureHierarchy::new(TextureHierarchyConfig::default());
            h2.access(0, 100);
            h2.access(0, 101);
            h2.stats()
        };
        assert!(h.stats().l2.accesses <= plain.l2.accesses);
    }

    type Stats = crate::stats::HierarchyStats;

    #[test]
    fn prefetch_helps_sequential_hurts_nothing_on_strided() {
        let run = |prefetch: bool, stride: u64| {
            let cfg = TextureHierarchyConfig {
                prefetch_next_line: prefetch,
                ..TextureHierarchyConfig::default()
            };
            let mut h = TextureHierarchy::new(cfg);
            for i in 0..512u64 {
                h.access(0, i * stride);
            }
            h.stats()
        };
        // Sequential walk: every other demand access now hits (the L1
        // stats also count the prefetch fills themselves, so compare
        // demand *hits*, which prefetches never inflate).
        let seq_off = run(false, 1);
        let seq_on = run(true, 1);
        let hits = |s: &Stats| -> u64 { s.l1.iter().map(|c| c.hits).sum() };
        assert_eq!(hits(&seq_off), 0, "cold sequential walk never hits");
        assert!(
            hits(&seq_on) >= 250,
            "prefetch should convert ~half the accesses to hits, got {}",
            hits(&seq_on)
        );
        // Large stride: prefetches are useless and convert nothing.
        let str_on = run(true, 64);
        assert_eq!(hits(&str_on), 0);
    }

    #[test]
    fn split_trace_replay_matches_monolithic_access() {
        // Trace each lane independently, replay the request streams in
        // the serial order, and compare every statistic and latency to
        // the monolithic access path.
        let pattern: Vec<(usize, u64)> = (0..400u64)
            .map(|i| ((i % 4) as usize, (i * 37) % 97))
            .collect();

        let mut serial = hier();
        let serial_lat: Vec<u32> = pattern
            .iter()
            .map(|&(sc, line)| serial.access(sc, line).latency)
            .collect();

        let (cfg, mut lanes, mut shared) = hier().split();
        // Trace: per-lane request streams plus per-access hit flags, as
        // the parallel fragment stage would produce them. The pattern
        // interleaves lanes, so replay must interleave identically.
        let mut traced_lat = Vec::new();
        for &(sc, line) in &pattern {
            let mut sink = Vec::new();
            let l1_latency = lanes[sc].l1_latency();
            if lanes[sc].access(line, &mut sink) {
                traced_lat.push(l1_latency);
            } else {
                let lat = shared.replay_demand(&sink);
                traced_lat.push(l1_latency + lat[0]);
            }
        }
        assert_eq!(serial_lat, traced_lat);
        let rejoined = TextureHierarchy::join(cfg, lanes, shared);
        assert_eq!(serial.stats(), rejoined.stats());
        assert_eq!(serial.distinct_lines(), rejoined.distinct_lines());
    }

    #[test]
    fn split_join_roundtrip_preserves_state() {
        let mut h = hier();
        h.access(0, 1);
        h.access(1, 1);
        let (cfg, lanes, shared) = h.split();
        let mut h = TextureHierarchy::join(cfg, lanes, shared);
        assert_eq!(h.stats().l2.accesses, 2);
        assert!(h.access(0, 1).l1_hit, "residency survives the roundtrip");
    }

    #[test]
    fn single_l1_is_accepted() {
        let cfg = TextureHierarchyConfig {
            num_l1: 1,
            ..TextureHierarchyConfig::default()
        };
        let h = TextureHierarchy::new(cfg);
        assert_eq!(h.config().num_l1, 1, "one L1 is the accepted floor");
    }

    #[test]
    // lint: typed-sibling(single_l1_is_accepted)
    #[should_panic]
    fn zero_l1_panics() {
        let cfg = TextureHierarchyConfig {
            num_l1: 0,
            ..TextureHierarchyConfig::default()
        };
        let _ = TextureHierarchy::new(cfg);
    }
}
