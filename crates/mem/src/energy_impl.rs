//! Event-energy model (McPAT stand-in).
//!
//! Total GPU energy is modeled as
//!
//! ```text
//! E = Σ (event_count × per-event energy)  +  P_static × T
//! ```
//!
//! with per-event energies chosen to be representative of a 32 nm
//! low-power GPU (same technology node as Table II). The absolute values
//! are calibration constants — the paper's energy result (Fig. 18) is a
//! *relative* 6.3% decrease driven by (a) fewer L2 accesses and (b)
//! shorter execution time × leakage, and both terms are captured exactly
//! by this event model.

use crate::stats::HierarchyStats;
use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Per-event energies (picojoules) and static power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy per L1 cache access (any L1: texture, vertex, tile).
    pub l1_access_pj: f64,
    /// Energy per shared-L2 access.
    pub l2_access_pj: f64,
    /// Energy per DRAM 64-byte fill.
    pub dram_access_pj: f64,
    /// Energy per shader-core ALU instruction (register file + ALU).
    pub alu_op_pj: f64,
    /// Energy per quad through a fixed-function stage (raster, early-Z,
    /// blend).
    pub fixed_stage_pj: f64,
    /// Static (leakage) power of the whole GPU in picojoules per cycle.
    /// At 600 MHz, 1 pJ/cycle = 0.6 mW.
    pub static_pj_per_cycle: f64,
}

impl Default for EnergyParams {
    /// 32 nm-class constants (see module docs; calibration values).
    fn default() -> Self {
        Self {
            l1_access_pj: 12.0,
            l2_access_pj: 48.0,
            dram_access_pj: 2600.0,
            alu_op_pj: 4.5,
            fixed_stage_pj: 8.0,
            static_pj_per_cycle: 45.0,
        }
    }
}

/// Event counts accumulated over a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyEvents {
    /// Total L1 accesses (texture + vertex + tile caches).
    pub l1_accesses: u64,
    /// Shared-L2 accesses.
    pub l2_accesses: u64,
    /// DRAM 64-byte transfers.
    pub dram_accesses: u64,
    /// Shader-core ALU instructions executed.
    pub alu_ops: u64,
    /// Quads processed by fixed-function stages.
    pub fixed_stage_quads: u64,
    /// Total execution cycles (for leakage).
    pub cycles: u64,
}

impl EnergyEvents {
    /// Fold a texture-hierarchy statistics snapshot into the event
    /// counts.
    pub fn add_hierarchy(&mut self, stats: &HierarchyStats) {
        self.l1_accesses += stats.l1_accesses();
        self.l2_accesses += stats.l2.accesses;
        self.dram_accesses += stats.dram_accesses;
    }
}

impl AddAssign for EnergyEvents {
    fn add_assign(&mut self, rhs: Self) {
        self.l1_accesses += rhs.l1_accesses;
        self.l2_accesses += rhs.l2_accesses;
        self.dram_accesses += rhs.dram_accesses;
        self.alu_ops += rhs.alu_ops;
        self.fixed_stage_quads += rhs.fixed_stage_quads;
        self.cycles = self.cycles.max(rhs.cycles);
    }
}

/// Energy totals in picojoules, by component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// L1 dynamic energy.
    pub l1_pj: f64,
    /// L2 dynamic energy.
    pub l2_pj: f64,
    /// DRAM dynamic energy.
    pub dram_pj: f64,
    /// Shader-core dynamic energy.
    pub core_pj: f64,
    /// Fixed-function dynamic energy.
    pub fixed_pj: f64,
    /// Leakage energy.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.l1_pj + self.l2_pj + self.dram_pj + self.core_pj + self.fixed_pj + self.static_pj
    }

    /// Total energy in millijoules (convenience for reports).
    #[must_use]
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1e-9
    }
}

/// The energy model: applies [`EnergyParams`] to [`EnergyEvents`].
///
/// # Examples
///
/// ```
/// use dtexl_mem::energy::{EnergyEvents, EnergyModel};
/// let model = EnergyModel::default();
/// let mut ev = EnergyEvents::default();
/// ev.l2_accesses = 1000;
/// ev.cycles = 10_000;
/// let e = model.evaluate(&ev);
/// assert!(e.l2_pj > 0.0 && e.static_pj > 0.0);
/// assert_eq!(e.l1_pj, 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Create a model with custom parameters.
    #[must_use]
    pub fn new(params: EnergyParams) -> Self {
        Self { params }
    }

    /// The model's parameters.
    #[must_use]
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Compute the energy breakdown for a set of event counts.
    #[must_use]
    pub fn evaluate(&self, ev: &EnergyEvents) -> EnergyBreakdown {
        let p = &self.params;
        EnergyBreakdown {
            l1_pj: ev.l1_accesses as f64 * p.l1_access_pj,
            l2_pj: ev.l2_accesses as f64 * p.l2_access_pj,
            dram_pj: ev.dram_accesses as f64 * p.dram_access_pj,
            core_pj: ev.alu_ops as f64 * p.alu_op_pj,
            fixed_pj: ev.fixed_stage_quads as f64 * p.fixed_stage_pj,
            static_pj: ev.cycles as f64 * p.static_pj_per_cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CacheStats;

    #[test]
    fn breakdown_sums() {
        let model = EnergyModel::default();
        let ev = EnergyEvents {
            l1_accesses: 10,
            l2_accesses: 5,
            dram_accesses: 1,
            alu_ops: 100,
            fixed_stage_quads: 20,
            cycles: 1000,
        };
        let e = model.evaluate(&ev);
        let p = model.params();
        assert_eq!(e.l1_pj, 10.0 * p.l1_access_pj);
        assert_eq!(e.l2_pj, 5.0 * p.l2_access_pj);
        assert_eq!(e.dram_pj, p.dram_access_pj);
        assert_eq!(e.core_pj, 100.0 * p.alu_op_pj);
        assert_eq!(e.fixed_pj, 20.0 * p.fixed_stage_pj);
        assert_eq!(e.static_pj, 1000.0 * p.static_pj_per_cycle);
        let sum = e.l1_pj + e.l2_pj + e.dram_pj + e.core_pj + e.fixed_pj + e.static_pj;
        assert_eq!(e.total_pj(), sum);
        assert!((e.total_mj() - sum * 1e-9).abs() < 1e-15);
    }

    #[test]
    fn fewer_l2_accesses_and_cycles_reduce_energy() {
        let model = EnergyModel::default();
        let base = EnergyEvents {
            l1_accesses: 1000,
            l2_accesses: 500,
            dram_accesses: 50,
            alu_ops: 10_000,
            fixed_stage_quads: 400,
            cycles: 100_000,
        };
        let mut improved = base;
        improved.l2_accesses = 250; // DTexL halves replication misses
        improved.cycles = 85_000; // and runs faster
        assert!(model.evaluate(&improved).total_pj() < model.evaluate(&base).total_pj());
    }

    #[test]
    fn hierarchy_stats_fold_in() {
        let mut ev = EnergyEvents::default();
        let stats = HierarchyStats {
            l1: vec![CacheStats {
                accesses: 8,
                hits: 6,
                misses: 2,
                evictions: 0,
            }],
            l2: CacheStats {
                accesses: 2,
                hits: 1,
                misses: 1,
                evictions: 0,
            },
            dram_accesses: 1,
            distinct_lines: 3,
        };
        ev.add_hierarchy(&stats);
        assert_eq!(ev.l1_accesses, 8);
        assert_eq!(ev.l2_accesses, 2);
        assert_eq!(ev.dram_accesses, 1);
    }

    #[test]
    fn add_assign_merges_and_keeps_max_cycles() {
        let mut a = EnergyEvents {
            l1_accesses: 1,
            cycles: 500,
            ..Default::default()
        };
        a += EnergyEvents {
            l1_accesses: 2,
            cycles: 300,
            ..Default::default()
        };
        assert_eq!(a.l1_accesses, 3);
        assert_eq!(a.cycles, 500, "cycles are wall-clock, not additive");
    }
}
