//! Decoupled L1-lane / shared-L2 halves of the texture hierarchy.
//!
//! The serial [`TextureHierarchy::access`](crate::TextureHierarchy::access)
//! interleaves private-L1 state updates with shared-L2/DRAM accesses.
//! For parallel frame simulation the two halves are pulled apart:
//!
//! * each shader core's [`L1Lane`] is simulated independently (it only
//!   reads and writes its own private cache), emitting the stream of
//!   [`L2Request`]s that would have reached the shared levels;
//! * a serial replay pass drives those requests into the [`SharedL2`]
//!   in the exact order the serial simulator would have issued them.
//!
//! Because the DRAM latency hash depends on the global request index,
//! the replay order is what makes parallel runs bit-identical to the
//! serial reference: same L2 access sequence, same DRAM latencies,
//! same statistics.

use crate::cache::SetAssocCache;
use crate::dram::DramModel;
use crate::stats::MemCounters;
use crate::LineAddr;
use std::collections::BTreeSet;

/// Lines that would not fit the dense bitmap (1 bit per line up to
/// this address) spill to a `BTreeSet`. Texture heaps are packed from
/// address zero, so in practice everything is dense; the limit only
/// guards against a pathological scene putting the bitmap allocation
/// itself out of budget (2²⁶ lines = 4 GiB of texture = an 8 MiB map).
const DENSE_LINE_LIMIT: LineAddr = 1 << 26;

/// A set of line addresses, tuned for the L1 miss path: inserts into a
/// growable bitmap (one test-and-set) instead of a search tree. Only
/// membership and cardinality are needed — [`TextureHierarchy::stats`]
/// consumes it via [`len`](Self::len) and a cross-lane union count.
///
/// [`TextureHierarchy::stats`]: crate::TextureHierarchy::stats
#[derive(Debug, Default)]
pub(crate) struct LineSet {
    /// Bit `line` of the map ⇔ `line` is present (lines below
    /// [`DENSE_LINE_LIMIT`] only).
    bits: Vec<u64>,
    dense_len: u64,
    /// Lines at or above [`DENSE_LINE_LIMIT`].
    sparse: BTreeSet<LineAddr>,
}

impl LineSet {
    #[inline]
    pub(crate) fn insert(&mut self, line: LineAddr) {
        if line < DENSE_LINE_LIMIT {
            let word = (line / 64) as usize;
            if word >= self.bits.len() {
                // Doubling growth keeps repeated inserts amortized O(1).
                self.bits.resize((word + 1).max(self.bits.len() * 2), 0);
            }
            let mask = 1u64 << (line % 64);
            if self.bits[word] & mask == 0 {
                self.bits[word] |= mask;
                self.dense_len += 1;
            }
        } else {
            self.sparse.insert(line);
        }
    }

    pub(crate) fn len(&self) -> u64 {
        self.dense_len + self.sparse.len() as u64
    }

    /// Cardinality of the union of `sets` (distinct lines across all
    /// lanes).
    pub(crate) fn union_len(sets: &[&Self]) -> u64 {
        let words = sets.iter().map(|s| s.bits.len()).max().unwrap_or(0);
        let mut dense = 0u64;
        for w in 0..words {
            let mut or = 0u64;
            for s in sets {
                or |= s.bits.get(w).copied().unwrap_or(0);
            }
            dense += u64::from(or.count_ones());
        }
        let mut sparse = BTreeSet::new();
        for s in sets {
            sparse.extend(s.sparse.iter().copied());
        }
        dense + sparse.len() as u64
    }
}

/// One request bound for the shared L2, recorded while tracing a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Request {
    /// Line address.
    pub line: LineAddr,
    /// `true` for next-line prefetch fills: charged to the bandwidth
    /// statistics but carrying no demand latency.
    pub prefetch: bool,
}

/// A private L1 texture cache plus the per-lane bookkeeping needed to
/// simulate it in isolation from the shared levels.
#[derive(Debug)]
pub struct L1Lane {
    l1: SetAssocCache,
    prefetch_next_line: bool,
    seen: LineSet,
}

impl L1Lane {
    pub(crate) fn new(l1: SetAssocCache, prefetch_next_line: bool) -> Self {
        Self {
            l1,
            prefetch_next_line,
            seen: LineSet::default(),
        }
    }

    /// L1 hit latency in cycles.
    #[must_use]
    pub fn l1_latency(&self) -> u32 {
        self.l1.config().latency
    }

    /// Access `line`, appending any shared-L2 requests (the demand miss
    /// first, then an optional next-line prefetch) to `sink`. Returns
    /// whether the access hit in the private L1.
    ///
    /// The L1 state transition is identical to the serial hierarchy's:
    /// prefetch decisions probe only this lane's cache, so they can be
    /// made without consulting the L2.
    #[inline]
    pub fn access(&mut self, line: LineAddr, sink: &mut Vec<L2Request>) -> bool {
        if self.l1.access(line).hit {
            // A hit means the line is resident, and every resident line
            // was recorded in `seen` when it was filled (demand or
            // prefetch below) — skipping the set insert here keeps the
            // hot path cheap without changing the set.
            return true;
        }
        self.seen.insert(line);
        sink.push(L2Request {
            line,
            prefetch: false,
        });
        if self.prefetch_next_line {
            let next = line + 1;
            if !self.l1.probe(next) {
                self.seen.insert(next);
                self.l1.access(next);
                sink.push(L2Request {
                    line: next,
                    prefetch: true,
                });
            }
        }
        false
    }

    /// Whether `line` is currently resident (no state change).
    #[must_use]
    pub fn probe(&self, line: LineAddr) -> bool {
        self.l1.probe(line)
    }

    pub(crate) fn l1(&self) -> &SetAssocCache {
        &self.l1
    }

    pub(crate) fn l1_mut(&mut self) -> &mut SetAssocCache {
        &mut self.l1
    }

    pub(crate) fn seen(&self) -> &LineSet {
        &self.seen
    }
}

/// Outcome of replaying one [`L2Request`] into the shared levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Hit in the shared L2.
    pub l2_hit: bool,
    /// Latency below the L1 in cycles: the L2 hit latency, plus the
    /// DRAM fill latency on an L2 miss.
    pub latency: u32,
}

/// The shared half of the texture hierarchy: the L2 and the DRAM model
/// behind it. Requests must be replayed in the serial issue order —
/// the DRAM latency depends on the global request index.
#[derive(Debug)]
pub struct SharedL2 {
    l2: SetAssocCache,
    dram: DramModel,
}

impl SharedL2 {
    pub(crate) fn new(l2: SetAssocCache, dram: DramModel) -> Self {
        Self { l2, dram }
    }

    /// Replay one request: an L2 lookup, plus a DRAM fill on a miss.
    #[inline]
    pub fn replay(&mut self, req: L2Request) -> ReplayOutcome {
        let l2_latency = self.l2.config().latency;
        if self.l2.access(req.line).hit {
            ReplayOutcome {
                l2_hit: true,
                latency: l2_latency,
            }
        } else {
            let dram_latency = self.dram.request(req.line);
            ReplayOutcome {
                l2_hit: false,
                latency: l2_latency + dram_latency,
            }
        }
    }

    /// Replay a trace of requests in order, returning the below-L1
    /// latency of each *demand* request (one entry per non-prefetch
    /// request, in trace order). Prefetches are replayed for their
    /// statistics but yield no latency entry.
    pub fn replay_demand(&mut self, requests: &[L2Request]) -> Vec<u32> {
        requests
            .iter()
            .filter_map(|&req| {
                let out = self.replay(req);
                (!req.prefetch).then_some(out.latency)
            })
            .collect()
    }

    /// Cumulative shared-level counters (see [`MemCounters`]): a
    /// constant-time snapshot meant to bracket replay windows.
    #[must_use]
    pub fn counters(&self) -> MemCounters {
        let l2 = self.l2.stats();
        MemCounters {
            l2_accesses: l2.accesses,
            l2_hits: l2.hits,
            l2_misses: l2.misses,
            dram_requests: self.dram.requests(),
            dram_spikes: self.dram.spikes(),
        }
    }

    pub(crate) fn l2(&self) -> &SetAssocCache {
        &self.l2
    }

    pub(crate) fn l2_mut(&mut self) -> &mut SetAssocCache {
        &mut self.l2
    }

    pub(crate) fn dram(&self) -> &DramModel {
        &self.dram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::dram::DramConfig;

    fn lane(prefetch: bool) -> L1Lane {
        L1Lane::new(SetAssocCache::new(CacheConfig::texture_l1()), prefetch)
    }

    fn shared() -> SharedL2 {
        SharedL2::new(
            SetAssocCache::new(CacheConfig::l2()),
            DramModel::new(DramConfig::default()),
        )
    }

    #[test]
    fn lane_emits_demand_requests_on_misses_only() {
        let mut l = lane(false);
        let mut sink = Vec::new();
        assert!(!l.access(7, &mut sink));
        assert!(l.access(7, &mut sink));
        assert_eq!(
            sink,
            vec![L2Request {
                line: 7,
                prefetch: false
            }]
        );
    }

    #[test]
    fn lane_prefetch_appends_after_the_demand() {
        let mut l = lane(true);
        let mut sink = Vec::new();
        l.access(100, &mut sink);
        assert_eq!(sink.len(), 2);
        assert!(!sink[0].prefetch && sink[0].line == 100);
        assert!(sink[1].prefetch && sink[1].line == 101);
        // The prefetched line is resident, so its demand access hits
        // and emits nothing.
        sink.clear();
        assert!(l.access(101, &mut sink));
        assert!(sink.is_empty());
    }

    #[test]
    fn replay_matches_a_direct_l2_walk() {
        // Replaying a trace must access the L2/DRAM in exactly the
        // recorded order: same hits, same latencies.
        let reqs = vec![
            L2Request {
                line: 1,
                prefetch: false,
            },
            L2Request {
                line: 2,
                prefetch: true,
            },
            L2Request {
                line: 1,
                prefetch: false,
            },
        ];
        let mut a = shared();
        let lat = a.replay_demand(&reqs);
        assert_eq!(lat.len(), 2, "one latency per demand request");
        let mut b = shared();
        let first = b.replay(reqs[0]);
        assert!(!first.l2_hit);
        assert_eq!(lat[0], first.latency);
        b.replay(reqs[1]);
        let third = b.replay(reqs[2]);
        assert!(third.l2_hit, "line 1 is now resident");
        assert_eq!(lat[1], third.latency);
    }

    #[test]
    fn replay_order_changes_dram_latencies() {
        // The DRAM hash depends on the request index, so replay order
        // is semantically meaningful — the property the serial replay
        // pass preserves.
        let r1 = L2Request {
            line: 11,
            prefetch: false,
        };
        let r2 = L2Request {
            line: 23,
            prefetch: false,
        };
        let mut fwd = shared();
        let a = fwd.replay_demand(&[r1, r2]);
        let mut rev = shared();
        let b = rev.replay_demand(&[r2, r1]);
        assert!(
            a[0] != b[1] || a[1] != b[0],
            "order-dependent latencies: {a:?} vs {b:?}"
        );
    }
}
