//! The ten benchmark games of Table I, as synthetic generators.

use crate::gen::{self, GenParams};
use crate::scene::{Scene, SceneSpec};
use serde::{Deserialize, Serialize};

/// Game genre (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Genre {
    /// Match-three and falling-block puzzles.
    Puzzle,
    /// Endless runners and mazes.
    Arcade,
    /// First/third-person shooters.
    Shooter,
    /// Driving games.
    Racing,
    /// Base-building strategy.
    Strategy,
}

/// Static description of a benchmark (the Table I row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GameInfo {
    /// Full title.
    pub title: &'static str,
    /// Paper alias (e.g. `"CCS"`).
    pub alias: &'static str,
    /// Play-store installs in millions (popularity proxy).
    pub installs_millions: u32,
    /// Genre.
    pub genre: Genre,
    /// Whether the game renders a 3-D scene (else layered 2-D).
    pub is_3d: bool,
    /// Texture footprint in MiB that the generator targets.
    pub texture_footprint_mib: f64,
}

/// The ten benchmark games (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Game {
    /// Candy Crush Saga — 2D puzzle, 2.4 MiB textures.
    CandyCrush,
    /// Sonic Dash — 3D arcade runner, 1.4 MiB.
    SonicDash,
    /// Temple Run — 3D arcade runner, 0.4 MiB.
    TempleRun,
    /// Shoot Strike War Fire — 3D shooter, 0.2 MiB.
    ShootWar,
    /// City Racing 3D — 3D racing, 2.8 MiB.
    CityRacing,
    /// Rise of Kingdoms — 2D strategy, 6.8 MiB.
    RiseOfKingdoms,
    /// Derby Destruction Simulator — 3D racing, 1.4 MiB.
    DerbyDestruction,
    /// Sniper 3D — 3D shooter, 1.8 MiB.
    Sniper3d,
    /// 3D Maze 2 — 3D arcade, 2.4 MiB.
    Maze,
    /// Gravitytetris — 3D puzzle, 0.7 MiB.
    GravityTetris,
}

impl Game {
    /// All ten games in Table I order.
    pub const ALL: [Self; 10] = [
        Self::CandyCrush,
        Self::SonicDash,
        Self::TempleRun,
        Self::ShootWar,
        Self::CityRacing,
        Self::RiseOfKingdoms,
        Self::DerbyDestruction,
        Self::Sniper3d,
        Self::Maze,
        Self::GravityTetris,
    ];

    /// Table I metadata.
    #[must_use]
    pub fn info(&self) -> GameInfo {
        match self {
            Self::CandyCrush => GameInfo {
                title: "Candy Crush Saga",
                alias: "CCS",
                installs_millions: 1000,
                genre: Genre::Puzzle,
                is_3d: false,
                texture_footprint_mib: 2.4,
            },
            Self::SonicDash => GameInfo {
                title: "Sonic Dash",
                alias: "SoD",
                installs_millions: 100,
                genre: Genre::Arcade,
                is_3d: true,
                texture_footprint_mib: 1.4,
            },
            Self::TempleRun => GameInfo {
                title: "Temple Run",
                alias: "TRu",
                installs_millions: 500,
                genre: Genre::Arcade,
                is_3d: true,
                texture_footprint_mib: 0.4,
            },
            Self::ShootWar => GameInfo {
                title: "Shoot Strike War Fire",
                alias: "SWa",
                installs_millions: 10,
                genre: Genre::Shooter,
                is_3d: true,
                texture_footprint_mib: 0.2,
            },
            Self::CityRacing => GameInfo {
                title: "City Racing 3D",
                alias: "CRa",
                installs_millions: 50,
                genre: Genre::Racing,
                is_3d: true,
                texture_footprint_mib: 2.8,
            },
            Self::RiseOfKingdoms => GameInfo {
                title: "Rise of Kingdoms: Lost Crusade",
                alias: "RoK",
                installs_millions: 10,
                genre: Genre::Strategy,
                is_3d: false,
                texture_footprint_mib: 6.8,
            },
            Self::DerbyDestruction => GameInfo {
                title: "Derby Destruction Simulator",
                alias: "DDS",
                installs_millions: 10,
                genre: Genre::Racing,
                is_3d: true,
                texture_footprint_mib: 1.4,
            },
            Self::Sniper3d => GameInfo {
                title: "Sniper 3D",
                alias: "Snp",
                installs_millions: 500,
                genre: Genre::Shooter,
                is_3d: true,
                texture_footprint_mib: 1.8,
            },
            Self::Maze => GameInfo {
                title: "3D Maze 2: Diamonds & Ghosts",
                alias: "Mze",
                installs_millions: 10,
                genre: Genre::Arcade,
                is_3d: true,
                texture_footprint_mib: 2.4,
            },
            Self::GravityTetris => GameInfo {
                title: "Gravitytetris",
                alias: "GTr",
                installs_millions: 5,
                genre: Genre::Puzzle,
                is_3d: true,
                texture_footprint_mib: 0.7,
            },
        }
    }

    /// Paper alias (`"CCS"`, `"GTr"`, …).
    #[must_use]
    pub fn alias(&self) -> &'static str {
        self.info().alias
    }

    /// Deterministic per-game RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        // Stable across runs; derived from the alias bytes.
        self.alias().bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        })
    }

    /// Generator tuning for this game (scene structure knobs beyond the
    /// Table I metadata).
    #[must_use]
    pub(crate) fn gen_params(&self) -> GenParams {
        let info = self.info();
        let base = GenParams::for_info(&info);
        match self {
            // CCS: big board of candy sprites + heavy effect bursts.
            Self::CandyCrush => GenParams {
                sprite_cells: 9,
                overdraw_layers: 3,
                heavy_fraction: 0.25,
                transparent_fraction: 0.45,
                texel_density: 1.5,
                uv_rotation_fraction: 0.65,
                ..base
            },
            // RoK: dense 2D map with many UI layers and big textures.
            Self::RiseOfKingdoms => GenParams {
                sprite_cells: 12,
                overdraw_layers: 4,
                heavy_fraction: 0.15,
                transparent_fraction: 0.35,
                texture_reuse: 0.6,
                texel_density: 1.5,
                uv_rotation_fraction: 0.65,
                ..base
            },
            // TRu: narrow corridor, few small textures, strong overdraw
            // clustering (the paper's worst imbalance case in Fig. 14).
            Self::TempleRun => GenParams {
                ground_rows: 10,
                prop_count: 70,
                hotspot_strength: 3.0,
                heavy_fraction: 0.35,
                ..base
            },
            // SWa: tiny texture set → everything fits in L1s.
            Self::ShootWar => GenParams {
                ground_rows: 6,
                prop_count: 40,
                heavy_fraction: 0.1,
                ..base
            },
            // CRa: road + buildings, big texture set.
            Self::CityRacing => GenParams {
                ground_rows: 12,
                prop_count: 90,
                hotspot_strength: 2.0,
                ..base
            },
            // DDS: arena racing, mid-size textures.
            Self::DerbyDestruction => GenParams {
                ground_rows: 10,
                prop_count: 60,
                heavy_fraction: 0.3,
                ..base
            },
            // Snp: scope overlays → transparent full-screen layers.
            Self::Sniper3d => GenParams {
                ground_rows: 8,
                prop_count: 50,
                transparent_fraction: 0.4,
                overdraw_layers: 3,
                ..base
            },
            // Mze: corridors with repeated wall textures.
            Self::Maze => GenParams {
                ground_rows: 9,
                prop_count: 80,
                texture_reuse: 0.7,
                ..base
            },
            // GTr: falling blocks over a background — the paper's best
            // DTexL speedup (≈1.4×): high reuse, mid overdraw.
            Self::GravityTetris => GenParams {
                ground_rows: 6,
                prop_count: 160,
                texture_reuse: 0.8,
                heavy_fraction: 0.15,
                overdraw_layers: 2,
                // Dense 1:1 texel mapping, few rotated mappings and
                // texture-dominated materials: maximum inter-quad
                // sharing → DTexL's best case.
                texel_density: 1.0,
                uv_rotation_fraction: 0.2,
                texture_rich_fraction: 0.8,
                ..base
            },
            // SoD: default runner tuning.
            Self::SonicDash => base,
        }
    }

    /// Generate the frame described by `spec` for this game.
    ///
    /// Deterministic: the same `(game, spec)` always yields the same
    /// scene.
    #[must_use]
    pub fn scene(&self, spec: &SceneSpec) -> Scene {
        gen::generate(*self, spec)
    }
}

impl std::fmt::Display for Game {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.alias())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_complete() {
        assert_eq!(Game::ALL.len(), 10);
        let total: f64 = Game::ALL
            .iter()
            .map(|g| g.info().texture_footprint_mib)
            .sum();
        assert!((total - 20.3).abs() < 1e-9, "Table I sums to 20.3 MiB");
        assert_eq!(Game::RiseOfKingdoms.info().texture_footprint_mib, 6.8);
        assert_eq!(Game::ShootWar.info().texture_footprint_mib, 0.2);
    }

    #[test]
    fn aliases_unique() {
        let mut aliases: Vec<_> = Game::ALL.iter().map(Game::alias).collect();
        aliases.sort_unstable();
        aliases.dedup();
        assert_eq!(aliases.len(), 10);
    }

    #[test]
    fn seeds_unique_and_stable() {
        let seeds: std::collections::HashSet<_> = Game::ALL.iter().map(Game::seed).collect();
        assert_eq!(seeds.len(), 10);
        assert_eq!(Game::CandyCrush.seed(), Game::CandyCrush.seed());
    }

    #[test]
    fn dimensionality_matches_table1() {
        assert!(!Game::CandyCrush.info().is_3d);
        assert!(!Game::RiseOfKingdoms.info().is_3d);
        for g in Game::ALL {
            if g != Game::CandyCrush && g != Game::RiseOfKingdoms {
                assert!(g.info().is_3d, "{} should be 3D", g.alias());
            }
        }
    }

    #[test]
    fn display_uses_alias() {
        assert_eq!(Game::GravityTetris.to_string(), "GTr");
    }

    #[test]
    fn genre_drives_scene_structure() {
        use crate::scene::SceneSpec;
        let spec = SceneSpec::new(512, 256, 0);
        // The big-map strategy game carries more texture assets than
        // the tiny-footprint shooter.
        let rok = Game::RiseOfKingdoms.scene(&spec);
        let swa = Game::ShootWar.scene(&spec);
        assert!(
            rok.textures.len() > swa.textures.len(),
            "RoK {} vs SWa {}",
            rok.textures.len(),
            swa.textures.len()
        );
        // 2D games are sprite boards: every vertex sits at z > 0 planes
        // under the orthographic transform (negative view z).
        let ccs = Game::CandyCrush.scene(&spec);
        assert!(ccs.vertices.iter().all(|v| v.pos.z < 0.0));
        // 3D games include ground geometry on the y = 0 plane.
        let sod = Game::SonicDash.scene(&spec);
        assert!(sod.vertices.iter().any(|v| v.pos.y == 0.0));
    }

    #[test]
    fn hotspot_band_concentrates_draws_2d() {
        use crate::scene::SceneSpec;
        // The §V-A overdraw clustering: the 2D hotspot band (y in
        // [0.55h, 0.85h]) receives disproportionally many draw centers.
        let (w, h) = (512.0f32, 256.0f32);
        let scene = Game::CandyCrush.scene(&SceneSpec::new(w as u32, h as u32, 0));
        let mut band = 0usize;
        let mut total = 0usize;
        for d in &scene.draws {
            // Centroid of the draw's vertices.
            let verts = &scene.vertices
                [d.first_vertex as usize..(d.first_vertex + d.vertex_count) as usize];
            let cy = verts.iter().map(|v| v.pos.y).sum::<f32>() / verts.len() as f32;
            let cw = verts.iter().map(|v| v.pos.x).fold(f32::MAX, f32::min);
            if cw > w {
                continue; // skip anything odd
            }
            total += 1;
            if cy > h * 0.5 && cy < h * 0.9 {
                band += 1;
            }
        }
        let frac = band as f64 / total as f64;
        assert!(
            frac > 0.45,
            "hotspot band holds {frac:.2} of draws; band height is only 0.4 of the screen"
        );
    }
}
