//! Scene generation: layered 2-D boards and perspective 3-D scenes.

use crate::games::{Game, GameInfo};
use crate::scene::{DepthMode, DrawCommand, Scene, SceneSpec, Vertex};
use crate::shader::ShaderProfile;
use crate::TEXTURE_BASE_ADDR;
use dtexl_gmath::{Mat4, Vec2, Vec3};
use dtexl_texture::TextureDesc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scene-structure knobs per game (beyond Table I metadata).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GenParams {
    /// Target total texture footprint in bytes.
    pub footprint_bytes: u64,
    /// 3-D perspective scene (else layered 2-D sprites).
    pub is_3d: bool,
    /// 2-D: board cells per screen width.
    pub sprite_cells: u32,
    /// Full-screen background/overlay layers.
    pub overdraw_layers: u32,
    /// 3-D: terrain strip rows.
    pub ground_rows: u32,
    /// 3-D: scattered props (billboards).
    pub prop_count: u32,
    /// Fraction of draws using the heavy shader profile.
    pub heavy_fraction: f64,
    /// Fraction of non-background draws that blend (never z-culled).
    pub transparent_fraction: f64,
    /// Probability that a draw reuses an already-used texture.
    pub texture_reuse: f64,
    /// Multiplier on sprite density inside the horizontal overdraw
    /// hotspot band.
    pub hotspot_strength: f64,
    /// Texel:pixel density multiplier. 1.0 means adjacent quads share
    /// most texture lines (maximum inter-quad locality); higher values
    /// dilute sharing — the calibration lever for the absolute size of
    /// the CG-vs-FG L2 gap.
    pub texel_density: f32,
    /// Fraction of draws whose UV mapping is rotated relative to the
    /// screen. Rotated mappings cut diagonally across Morton texel
    /// blocks, so fewer screen-adjacent quads share a line — as in real
    /// content (rotated sprites, perspective surfaces).
    pub uv_rotation_fraction: f64,
    /// Small heavy-shader "particle" quads scattered per frame
    /// (sparks, pickups, UI glyphs): 1–2 quads each, they land on a
    /// single SC and create the intra-tile workload lumps behind the
    /// paper's execution-time deviation (Fig. 14).
    pub particle_count: u32,
    /// Fraction of draws using the texture-dominated profile
    /// (multi-layer materials); these benefit most from locality.
    pub texture_rich_fraction: f64,
    /// Fraction of 3-D draws whose shader modifies depth, forcing the
    /// Late-Z path (always shaded, culled after the fragment stage).
    /// Zero for all Table I stand-ins; exercised by tests/ablations.
    pub late_z_fraction: f64,
}

impl GenParams {
    pub(crate) fn for_info(info: &GameInfo) -> Self {
        Self {
            footprint_bytes: (info.texture_footprint_mib * 1024.0 * 1024.0) as u64,
            is_3d: info.is_3d,
            sprite_cells: 8,
            overdraw_layers: 2,
            ground_rows: 8,
            prop_count: 60,
            heavy_fraction: 0.2,
            transparent_fraction: 0.3,
            texture_reuse: 0.4,
            hotspot_strength: 1.5,
            texel_density: 1.4,
            uv_rotation_fraction: 0.5,
            particle_count: 250,
            texture_rich_fraction: 0.2,
            late_z_fraction: 0.0,
        }
    }
}

/// Generate the scene for `game` at `spec`.
pub(crate) fn generate(game: Game, spec: &SceneSpec) -> Scene {
    let params = game.gen_params();
    let mut rng = StdRng::seed_from_u64(
        game.seed() ^ (u64::from(spec.frame)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    let mut b = Builder::new(*spec, params, &mut rng);
    if params.is_3d {
        b.build_3d();
    } else {
        b.build_2d();
    }
    let scene = b.finish();
    debug_assert_eq!(scene.validate(), Ok(()));
    scene
}

/// Incremental scene builder.
struct Builder<'r> {
    spec: SceneSpec,
    params: GenParams,
    rng: &'r mut StdRng,
    scene: Scene,
    /// Orthographic screen-space transform (pixels → NDC).
    ortho: Mat4,
}

impl<'r> Builder<'r> {
    fn new(spec: SceneSpec, params: GenParams, rng: &'r mut StdRng) -> Self {
        let ortho = Mat4::orthographic(0.0, spec.width as f32, spec.height as f32, 0.0, 0.1, 10.0);
        let mut b = Self {
            spec,
            params,
            rng,
            scene: Scene::default(),
            ortho,
        };
        b.make_textures();
        b
    }

    fn finish(self) -> Scene {
        self.scene
    }

    /// Build the texture set approximating the Table I footprint.
    fn make_textures(&mut self) {
        let target = self.params.footprint_bytes;
        let mut base = TEXTURE_BASE_ADDR;
        let mut id = 0u32;
        let mut total = 0u64;
        // Greedy: largest power-of-two square that still fits, with a
        // floor of 64 so even tiny budgets get a usable texture.
        while total < target || self.scene.textures.is_empty() {
            let remaining = target.saturating_sub(total);
            let mut side = 1024u32;
            while side > 64 {
                let fp = TextureDesc::new(id, side, side, base).footprint_bytes();
                if fp <= remaining {
                    break;
                }
                side /= 2;
            }
            let tex = TextureDesc::new(id, side, side, base);
            // Align the next allocation to a line boundary. The raw
            // footprint is NOT a multiple of 64 — the mip tail ends in
            // 16- and 4-byte levels — so without rounding up, every
            // texture after the first starts mid-line and no mip level
            // is line-aligned (this comment used to claim footprints
            // were already 64-byte multiples; they never were).
            base += tex.footprint_bytes().next_multiple_of(64);
            total += tex.footprint_bytes();
            self.scene.textures.push(tex);
            id += 1;
            if side == 64 && total >= target {
                break;
            }
        }
    }

    /// Pick a texture id: with probability `texture_reuse` one that was
    /// already returned, else the next unused (wrapping).
    fn pick_texture(&mut self, used: &mut usize) -> u32 {
        let n = self.scene.textures.len();
        if *used > 0 && self.rng.gen_bool(self.params.texture_reuse) {
            let bound = (*used).min(n);
            self.scene.textures[self.rng.gen_range(0..bound)].id()
        } else {
            let idx = *used % n;
            *used = (*used + 1).min(n);
            self.scene.textures[idx].id()
        }
    }

    /// UV corners for a quad sampling `uv_repeat` texture periods,
    /// rotated around their centroid for a random fraction of draws
    /// (see `GenParams::uv_rotation_fraction`).
    fn uv_corners(&mut self, uv_repeat: f32) -> [Vec2; 4] {
        let base = [
            Vec2::new(0.0, 0.0),
            Vec2::new(uv_repeat, 0.0),
            Vec2::new(0.0, uv_repeat),
            Vec2::new(uv_repeat, uv_repeat),
        ];
        if !self.rng.gen_bool(self.params.uv_rotation_fraction) {
            return base;
        }
        let angle: f32 = self.rng.gen_range(0.0..std::f32::consts::TAU);
        let (s, c) = dtexl_gmath::trig::sin_cos(angle);
        let center = Vec2::new(uv_repeat / 2.0, uv_repeat / 2.0);
        base.map(|uv| {
            let d = uv - center;
            center + Vec2::new(c * d.x - s * d.y, s * d.x + c * d.y)
        })
    }

    /// Scatter small heavy "particle" quads (sparks, glyphs, pickups):
    /// 1–2 quads each, biased toward the hotspot band.
    fn push_particles(&mut self, used: &mut usize) {
        let (w, h) = (self.spec.width as f32, self.spec.height as f32);
        for _ in 0..self.params.particle_count {
            let tex = self.pick_texture(used);
            let size = self.rng.gen_range(3.0f32..9.0);
            let x = self.rng.gen_range(0.0..(w - size).max(1.0));
            let in_band = self.rng.gen_bool(0.5);
            let y = if in_band {
                self.rng
                    .gen_range(h * 0.5..(h * 0.85 - size).max(h * 0.5 + 1.0))
            } else {
                self.rng.gen_range(0.0..(h - size).max(1.0))
            };
            let z = self.rng.gen_range(0.05..0.5);
            let shader = if self.rng.gen_bool(0.6) {
                ShaderProfile::heavy()
            } else {
                ShaderProfile::standard()
            };
            self.push_sprite(x, y, size, size, z, 0.05, tex, shader, false);
        }
    }

    fn pick_shader(&mut self) -> ShaderProfile {
        if self.rng.gen_bool(self.params.heavy_fraction) {
            ShaderProfile::heavy()
        } else if self.rng.gen_bool(self.params.texture_rich_fraction) {
            ShaderProfile::texture_rich()
        } else if self.rng.gen_bool(0.5) {
            ShaderProfile::standard()
        } else {
            ShaderProfile::simple()
        }
    }

    /// Append a screen-space quad (two triangles) as one draw.
    #[allow(clippy::too_many_arguments)]
    fn push_sprite(
        &mut self,
        x: f32,
        y: f32,
        w: f32,
        h: f32,
        z: f32,
        uv_repeat: f32,
        texture: u32,
        shader: ShaderProfile,
        opaque: bool,
    ) {
        let uv_repeat = uv_repeat * self.params.texel_density;
        let uvs = self.uv_corners(uv_repeat);
        let first = self.scene.vertices.len() as u32;
        let p = |px: f32, py: f32| Vec3::new(px, py, -z);
        let corners = [
            (p(x, y), uvs[0]),
            (p(x + w, y), uvs[1]),
            (p(x, y + h), uvs[2]),
            (p(x + w, y + h), uvs[3]),
        ];
        for &i in &[0usize, 1, 2, 2, 1, 3] {
            self.scene
                .vertices
                .push(Vertex::new(corners[i].0, corners[i].1));
        }
        self.scene.draws.push(DrawCommand {
            first_vertex: first,
            vertex_count: 6,
            texture,
            shader,
            transform: self.ortho,
            opaque,
            uv_scale: 1.0,
            depth_mode: DepthMode::Early,
        });
    }

    /// Append a world-space quad under a perspective transform.
    #[allow(clippy::too_many_arguments)]
    fn push_quad_3d(
        &mut self,
        corners: [Vec3; 4],
        uv_repeat: f32,
        texture: u32,
        shader: ShaderProfile,
        opaque: bool,
        view_proj: Mat4,
    ) {
        let uv_repeat = uv_repeat * self.params.texel_density;
        let uvs = self.uv_corners(uv_repeat);
        let first = self.scene.vertices.len() as u32;
        for &i in &[0usize, 1, 2, 2, 1, 3] {
            self.scene.vertices.push(Vertex::new(corners[i], uvs[i]));
        }
        self.scene.draws.push(DrawCommand {
            first_vertex: first,
            vertex_count: 6,
            texture,
            shader,
            transform: view_proj,
            opaque,
            uv_scale: 1.0,
            // Guarded so a zero fraction leaves the RNG stream (and
            // hence every calibrated scene) untouched.
            depth_mode: if self.params.late_z_fraction > 0.0
                && self.rng.gen_bool(self.params.late_z_fraction)
            {
                DepthMode::Late
            } else {
                DepthMode::Early
            },
        });
    }

    /// Layered 2-D game: backgrounds, a sprite board, and a horizontal
    /// effects hotspot.
    fn build_2d(&mut self) {
        let (w, h) = (self.spec.width as f32, self.spec.height as f32);
        let mut used = 0usize;

        // Background layers, far to near; the first is opaque, the rest
        // blend (parallax layers, vignettes).
        for layer in 0..self.params.overdraw_layers {
            let tex_id = self.pick_texture(&mut used);
            // lint: allow(no-panic) -- the generator registered tex_id in this same builder before any draw references it
            let side = self.scene.texture(tex_id).unwrap().width() as f32;
            self.push_sprite(
                0.0,
                0.0,
                w,
                h,
                9.0 - layer as f32 * 0.5,
                w / side, // ≈1:1 texel:pixel tiling
                tex_id,
                if layer == 0 {
                    ShaderProfile::simple()
                } else {
                    ShaderProfile::standard()
                },
                layer == 0,
            );
        }

        // The board: a grid of sprites (candy, map icons, …).
        let cells_x = self.params.sprite_cells;
        let cell = w / cells_x as f32;
        let cells_y = (h / cell).ceil() as u32;
        for cy in 0..cells_y {
            for cx in 0..cells_x {
                let x = cx as f32 * cell;
                let y = cy as f32 * cell;
                if self.rng.gen_bool(0.8) {
                    let tex = self.pick_texture(&mut used);
                    // lint: allow(no-panic) -- the generator registered this texture in the same builder before any draw references it
                    let side = self.scene.texture(tex).unwrap().width() as f32;
                    let opaque = !self.rng.gen_bool(self.params.transparent_fraction);
                    let shader = self.pick_shader();
                    let z = self.rng.gen_range(1.0..8.0);
                    self.push_sprite(x, y, cell, cell, z, cell / side, tex, shader, opaque);
                }
            }
        }

        // Horizontal hotspot band: stacked effect sprites concentrated
        // in one band of rows (overdraw clustering, §V-A).
        let band_y = h * 0.55;
        let band_h = h * 0.25;
        let extra = (self.params.hotspot_strength * cells_x as f64) as u32 * 2;
        for _ in 0..extra {
            let tex = self.pick_texture(&mut used);
            // lint: allow(no-panic) -- the generator registered this texture in the same builder before any draw references it
            let side = self.scene.texture(tex).unwrap().width() as f32;
            let sw = cell * self.rng.gen_range(0.8..2.0);
            let x = self.rng.gen_range(0.0..(w - sw).max(1.0));
            let y = band_y + self.rng.gen_range(0.0..band_h);
            let z = self.rng.gen_range(0.3..0.9);
            self.push_sprite(
                x,
                y,
                sw,
                sw * 0.6,
                z,
                sw / side,
                tex,
                ShaderProfile::heavy(),
                false,
            );
        }

        self.push_particles(&mut used);
    }

    /// Perspective 3-D game: skybox, terrain strip, props, UI overlay.
    fn build_3d(&mut self) {
        let (w, h) = (self.spec.width as f32, self.spec.height as f32);
        let aspect = w / h;
        let t = self.spec.frame as f32 * 0.15;
        let eye = Vec3::new(dtexl_gmath::trig::sin(t * 0.3) * 1.5, 2.5, 6.0);
        let view = Mat4::look_at(eye, Vec3::new(0.0, 1.0, -10.0), Vec3::new(0.0, 1.0, 0.0));
        let proj = Mat4::perspective(60f32.to_radians(), aspect, 0.5, 200.0);
        let vp = proj * view;
        let mut used = 0usize;

        // Skybox: one huge far quad behind everything.
        let sky = self.pick_texture(&mut used);
        self.push_quad_3d(
            [
                Vec3::new(-150.0, -20.0, -180.0),
                Vec3::new(150.0, -20.0, -180.0),
                Vec3::new(-150.0, 120.0, -180.0),
                Vec3::new(150.0, 120.0, -180.0),
            ],
            2.0,
            sky,
            ShaderProfile::simple(),
            true,
            vp,
        );

        // Terrain: strips of ground quads receding into the distance.
        // These cover the bottom half of the screen — the horizontal
        // overdraw/workload band.
        let rows = self.params.ground_rows;
        let ground_tex = self.pick_texture(&mut used);
        for r in 0..rows {
            let z0 = 4.0 - (r as f32) * 6.0;
            let z1 = z0 - 6.0;
            for c in 0..6 {
                let x0 = -18.0 + c as f32 * 6.0;
                self.push_quad_3d(
                    [
                        Vec3::new(x0, 0.0, z0),
                        Vec3::new(x0 + 6.0, 0.0, z0),
                        Vec3::new(x0, 0.0, z1),
                        Vec3::new(x0 + 6.0, 0.0, z1),
                    ],
                    6.0,
                    ground_tex,
                    ShaderProfile::standard(),
                    true,
                    vp,
                );
            }
        }

        // Props: billboards clustered around the corridor the camera
        // looks down (x ≈ 0), random depth. Random draw order → real
        // overdraw that early-Z only partially removes.
        for _ in 0..self.params.prop_count {
            let tex = self.pick_texture(&mut used);
            let x = {
                // Approximate normal clustering via sum of uniforms.
                let s: f32 = (0..4).map(|_| self.rng.gen_range(-1.0f32..1.0)).sum();
                s * 3.0
            };
            let z = self.rng.gen_range(-45.0f32..0.0);
            let size = self.rng.gen_range(0.8f32..3.5);
            let y0 = 0.0;
            let shader = self.pick_shader();
            let opaque = !self.rng.gen_bool(self.params.transparent_fraction);
            self.push_quad_3d(
                [
                    Vec3::new(x - size / 2.0, y0, z),
                    Vec3::new(x + size / 2.0, y0, z),
                    Vec3::new(x - size / 2.0, y0 + size, z),
                    Vec3::new(x + size / 2.0, y0 + size, z),
                ],
                1.0,
                tex,
                shader,
                opaque,
                vp,
            );
        }

        // UI overlay: a few screen-space sprites on top (transparent).
        for i in 0..4 {
            let tex = self.pick_texture(&mut used);
            // lint: allow(no-panic) -- the generator registered this texture in the same builder before any draw references it
            let side = self.scene.texture(tex).unwrap().width() as f32;
            let sw = w * 0.12;
            self.push_sprite(
                w * 0.02 + i as f32 * sw * 1.1,
                h * 0.02,
                sw,
                sw * 0.5,
                0.2,
                sw / side,
                tex,
                ShaderProfile::simple(),
                false,
            );
        }

        self.push_particles(&mut used);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtexl_texture::Filter;

    fn spec() -> SceneSpec {
        SceneSpec::new(640, 360, 0)
    }

    #[test]
    fn all_games_generate_valid_scenes() {
        for game in Game::ALL {
            let scene = game.scene(&spec());
            assert_eq!(scene.validate(), Ok(()), "{}", game.alias());
            assert!(!scene.draws.is_empty(), "{}", game.alias());
            assert!(scene.triangle_count() > 10, "{}", game.alias());
        }
    }

    #[test]
    fn footprints_track_table1() {
        for game in Game::ALL {
            let scene = game.scene(&spec());
            let target = game.info().texture_footprint_mib;
            let actual = scene.texture_footprint_bytes() as f64 / (1024.0 * 1024.0);
            assert!(
                actual >= target * 0.7 && actual <= target * 1.6,
                "{}: target {target} MiB, got {actual:.2} MiB",
                game.alias()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Game::SonicDash.scene(&spec());
        let b = Game::SonicDash.scene(&spec());
        assert_eq!(a, b);
    }

    #[test]
    fn frames_differ() {
        let a = Game::SonicDash.scene(&SceneSpec::new(640, 360, 0));
        let b = Game::SonicDash.scene(&SceneSpec::new(640, 360, 5));
        assert_ne!(a, b, "animation must change the scene");
    }

    #[test]
    fn games_differ_from_each_other() {
        let a = Game::CandyCrush.scene(&spec());
        let b = Game::RiseOfKingdoms.scene(&spec());
        assert_ne!(a, b);
    }

    #[test]
    fn scenes_mix_opaque_and_transparent() {
        for game in [Game::CandyCrush, Game::Sniper3d] {
            let scene = game.scene(&spec());
            let opaque = scene.draws.iter().filter(|d| d.opaque).count();
            let blended = scene.draws.len() - opaque;
            assert!(opaque > 0 && blended > 0, "{}", game.alias());
        }
    }

    #[test]
    fn scenes_mix_shader_intensities() {
        for game in Game::ALL {
            let scene = game.scene(&spec());
            let slots: std::collections::HashSet<u32> =
                scene.draws.iter().map(|d| d.shader.issue_slots()).collect();
            assert!(
                slots.len() >= 2,
                "{} must have heterogeneous shaders",
                game.alias()
            );
        }
    }

    #[test]
    fn texture_allocations_do_not_overlap() {
        let scene = Game::RiseOfKingdoms.scene(&spec());
        let mut ranges: Vec<(u64, u64)> = scene
            .textures
            .iter()
            .map(|t| (t.base_addr(), t.base_addr() + t.footprint_bytes()))
            .collect();
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "allocations overlap");
        }
    }

    #[test]
    fn trilinear_filter_used_by_heavy_draws() {
        let scene = Game::TempleRun.scene(&spec());
        assert!(scene
            .draws
            .iter()
            .any(|d| d.shader.filter == Filter::Trilinear));
    }
}
