//! Fragment-shader cost profiles.

use dtexl_texture::Filter;
use serde::{Deserialize, Serialize};

/// Cost profile of a draw call's fragment shader.
///
/// The simulator does not interpret shader programs; what matters for
/// the paper's effects is the *instruction mix*: how many ALU cycles a
/// quad occupies a shader core, and how many texture lookups (each of
/// which may stall the warp) it performs. Adjacent quads of the same
/// primitive share the profile, which is exactly the workload-intensity
/// correlation that makes coarse-grained grouping imbalanced (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShaderProfile {
    /// ALU instructions executed per quad (includes interpolation
    /// setup, lighting math, etc.).
    pub alu_ops: u32,
    /// Texture sample instructions per fragment.
    pub tex_samples: u32,
    /// Filtering mode of the samples.
    #[serde(skip)]
    pub filter: Filter,
}

impl ShaderProfile {
    /// A minimal pass-through shader (UI / sprite blit).
    #[must_use]
    pub const fn simple() -> Self {
        Self {
            alu_ops: 6,
            tex_samples: 1,
            filter: Filter::Bilinear,
        }
    }

    /// A typical lit, textured material.
    #[must_use]
    pub const fn standard() -> Self {
        Self {
            alu_ops: 14,
            tex_samples: 2,
            filter: Filter::Bilinear,
        }
    }

    /// A heavy effect shader (multiple lookups, long math) — the "heavy
    /// workload" primitive of Fig. 9.
    #[must_use]
    pub const fn heavy() -> Self {
        Self {
            alu_ops: 96,
            tex_samples: 3,
            filter: Filter::Trilinear,
        }
    }

    /// A texture-dominated material (multi-layer blending, light ALU)
    /// — the profile that benefits most from texture locality.
    #[must_use]
    pub const fn texture_rich() -> Self {
        Self {
            alu_ops: 10,
            tex_samples: 3,
            filter: Filter::Trilinear,
        }
    }

    /// Total shader-core instruction slots a quad occupies (ALU plus
    /// one issue slot per texture sample).
    #[must_use]
    pub fn issue_slots(&self) -> u32 {
        self.alu_ops + self.tex_samples
    }
}

impl Default for ShaderProfile {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_ordered_by_cost() {
        assert!(ShaderProfile::simple().issue_slots() < ShaderProfile::standard().issue_slots());
        assert!(ShaderProfile::standard().issue_slots() < ShaderProfile::heavy().issue_slots());
    }

    #[test]
    fn issue_slots_counts_tex() {
        let p = ShaderProfile {
            alu_ops: 10,
            tex_samples: 3,
            filter: Filter::Bilinear,
        };
        assert_eq!(p.issue_slots(), 13);
    }

    #[test]
    fn default_is_standard() {
        assert_eq!(ShaderProfile::default(), ShaderProfile::standard());
    }
}
