//! Scene description: vertices, textures and draw commands.

use crate::shader::ShaderProfile;
use crate::VERTEX_BASE_ADDR;
use dtexl_gmath::{Mat4, Vec2, Vec3};
use dtexl_texture::{TextureDesc, TextureId};

/// Stride of one vertex in the vertex buffer, in bytes
/// (position `3×f32` + UV `2×f32`, padded to 32 for alignment).
pub const VERTEX_STRIDE: u64 = 32;

/// One vertex: object-space position and texture coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vertex {
    /// Object-space position.
    pub pos: Vec3,
    /// Texture coordinates (interpolated perspective-correctly).
    pub uv: Vec2,
}

impl Vertex {
    /// Create a vertex.
    #[must_use]
    pub const fn new(pos: Vec3, uv: Vec2) -> Self {
        Self { pos, uv }
    }

    /// Byte address of vertex `index` in the shared vertex buffer
    /// (used by the L1 vertex cache model).
    #[must_use]
    pub fn address_of(index: u32) -> u64 {
        VERTEX_BASE_ADDR + u64::from(index) * VERTEX_STRIDE
    }
}

/// Which depth test a draw uses.
///
/// The paper (§II): "Some rendering techniques require that the SC
/// changes the depth of fragments, in which case the Early Z-Test is
/// disabled and the Late Z-Test is employed" — late-Z fragments are
/// always shaded and only culled after the fragment stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DepthMode {
    /// Depth is tested before shading (the common, cheap path).
    #[default]
    Early,
    /// The shader may modify depth: test after shading.
    Late,
}

/// A draw command: a triangle list with a texture, a shader profile and
/// a model-view-projection transform.
#[derive(Debug, Clone, PartialEq)]
pub struct DrawCommand {
    /// Index of the first vertex in the scene's vertex buffer.
    pub first_vertex: u32,
    /// Number of vertices (a multiple of 3; every 3 form a triangle).
    pub vertex_count: u32,
    /// Texture sampled by the fragment shader.
    pub texture: TextureId,
    /// Fragment shader cost profile.
    pub shader: ShaderProfile,
    /// Model-view-projection matrix applied by the vertex stage.
    pub transform: Mat4,
    /// Whether fragments write depth and occlude (false = blended
    /// transparency, which can never be culled by early-Z).
    pub opaque: bool,
    /// Texture-coordinate multiplier applied at sampling time (controls
    /// the texel:pixel ratio and hence the LOD).
    pub uv_scale: f32,
    /// Early or late depth testing (see [`DepthMode`]).
    pub depth_mode: DepthMode,
}

impl DrawCommand {
    /// Number of triangles in the draw.
    #[must_use]
    pub fn triangle_count(&self) -> u32 {
        self.vertex_count / 3
    }
}

/// Frame-generation parameters shared by all game generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneSpec {
    /// Screen width in pixels.
    pub width: u32,
    /// Screen height in pixels.
    pub height: u32,
    /// Frame number (animates the camera / sprites).
    pub frame: u32,
}

impl SceneSpec {
    /// Create a spec.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; see
    /// [`try_new`](Self::try_new) for the fallible variant.
    #[must_use]
    pub fn new(width: u32, height: u32, frame: u32) -> Self {
        // lint: allow(no-panic) -- documented panicking convenience wrapper over try_new
        Self::try_new(width, height, frame).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Create a spec, rejecting degenerate resolutions.
    ///
    /// # Errors
    ///
    /// Returns a message if either dimension is zero.
    pub fn try_new(width: u32, height: u32, frame: u32) -> Result<Self, String> {
        if width == 0 || height == 0 {
            return Err(format!("resolution must be non-zero, got {width}x{height}"));
        }
        Ok(Self {
            width,
            height,
            frame,
        })
    }

    /// The paper's screen resolution (Table II: 1960×768).
    #[must_use]
    pub fn table2(frame: u32) -> Self {
        Self::new(1960, 768, frame)
    }
}

/// A complete frame description fed to the graphics pipeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scene {
    /// All textures referenced by draws.
    pub textures: Vec<TextureDesc>,
    /// The shared vertex buffer.
    pub vertices: Vec<Vertex>,
    /// Draw commands in submission order (API order must be respected
    /// by the pipeline).
    pub draws: Vec<DrawCommand>,
}

impl Scene {
    /// Total texture allocation in bytes (the Table I footprint).
    #[must_use]
    pub fn texture_footprint_bytes(&self) -> u64 {
        self.textures.iter().map(TextureDesc::footprint_bytes).sum()
    }

    /// Look up a texture by id.
    #[must_use]
    pub fn texture(&self, id: TextureId) -> Option<&TextureDesc> {
        self.textures.iter().find(|t| t.id() == id)
    }

    /// Total triangles over all draws.
    #[must_use]
    pub fn triangle_count(&self) -> u32 {
        self.draws.iter().map(DrawCommand::triangle_count).sum()
    }

    /// A copy of the scene whose textures use `layout` (same ids,
    /// sizes and base addresses) — the lever for the texture-layout
    /// ablation.
    #[must_use]
    pub fn relayout(&self, layout: dtexl_texture::TexelLayout) -> Self {
        let mut out = self.clone();
        out.textures = self
            .textures
            .iter()
            .map(|t| TextureDesc::with_layout(t.id(), t.width(), t.height(), t.base_addr(), layout))
            .collect();
        out
    }

    /// Check internal consistency: draw ranges inside the vertex
    /// buffer, referenced textures present, triangle-list counts.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        for (i, d) in self.draws.iter().enumerate() {
            if d.vertex_count % 3 != 0 {
                return Err(format!(
                    "draw {i}: vertex count {} not a multiple of 3",
                    d.vertex_count
                ));
            }
            let end = u64::from(d.first_vertex) + u64::from(d.vertex_count);
            if end > self.vertices.len() as u64 {
                return Err(format!(
                    "draw {i}: vertex range ends at {end}, buffer has {}",
                    self.vertices.len()
                ));
            }
            if self.texture(d.texture).is_none() {
                return Err(format!("draw {i}: texture {} not in scene", d.texture));
            }
            if !(d.uv_scale.is_finite() && d.uv_scale > 0.0) {
                return Err(format!("draw {i}: invalid uv scale {}", d.uv_scale));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtexl_texture::TextureDesc;

    fn tiny_scene() -> Scene {
        Scene {
            textures: vec![TextureDesc::new(0, 64, 64, crate::TEXTURE_BASE_ADDR)],
            vertices: vec![
                Vertex::new(Vec3::new(0.0, 0.0, 0.0), Vec2::new(0.0, 0.0)),
                Vertex::new(Vec3::new(1.0, 0.0, 0.0), Vec2::new(1.0, 0.0)),
                Vertex::new(Vec3::new(0.0, 1.0, 0.0), Vec2::new(0.0, 1.0)),
            ],
            draws: vec![DrawCommand {
                first_vertex: 0,
                vertex_count: 3,
                texture: 0,
                shader: ShaderProfile::standard(),
                transform: Mat4::IDENTITY,
                opaque: true,
                uv_scale: 1.0,
                depth_mode: DepthMode::Early,
            }],
        }
    }

    #[test]
    fn valid_scene_passes() {
        assert_eq!(tiny_scene().validate(), Ok(()));
        assert_eq!(tiny_scene().triangle_count(), 1);
    }

    #[test]
    fn bad_vertex_range_fails() {
        let mut s = tiny_scene();
        s.draws[0].vertex_count = 6;
        assert!(s.validate().is_err());
    }

    #[test]
    fn non_triangle_count_fails() {
        let mut s = tiny_scene();
        s.draws[0].vertex_count = 2;
        assert!(s.validate().unwrap_err().contains("multiple of 3"));
    }

    #[test]
    fn missing_texture_fails() {
        let mut s = tiny_scene();
        s.draws[0].texture = 42;
        assert!(s.validate().unwrap_err().contains("texture"));
    }

    #[test]
    fn invalid_uv_scale_fails() {
        let mut s = tiny_scene();
        s.draws[0].uv_scale = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn vertex_addresses_use_stride() {
        assert_eq!(Vertex::address_of(0), VERTEX_BASE_ADDR);
        assert_eq!(Vertex::address_of(2), VERTEX_BASE_ADDR + 64);
    }

    #[test]
    fn footprint_sums_textures() {
        let s = tiny_scene();
        assert_eq!(s.texture_footprint_bytes(), s.textures[0].footprint_bytes());
    }

    #[test]
    fn zero_resolution_is_a_typed_error() {
        let err = SceneSpec::try_new(0, 100, 0).unwrap_err();
        assert!(
            err.contains("non-zero"),
            "typed path names the invariant: {err}"
        );
    }

    #[test]
    // lint: typed-sibling(zero_resolution_is_a_typed_error)
    #[should_panic(expected = "non-zero")]
    fn zero_resolution_panics() {
        let _ = SceneSpec::new(0, 100, 0);
    }

    #[test]
    fn relayout_preserves_everything_but_layout() {
        use dtexl_texture::TexelLayout;
        let s = tiny_scene();
        let r = s.relayout(TexelLayout::RowMajor);
        assert_eq!(r.draws, s.draws);
        assert_eq!(r.vertices, s.vertices);
        assert_eq!(r.textures[0].layout(), TexelLayout::RowMajor);
        assert_eq!(
            r.textures[0].footprint_bytes(),
            s.textures[0].footprint_bytes()
        );
        assert_eq!(r.textures[0].base_addr(), s.textures[0].base_addr());
        assert_eq!(r.validate(), Ok(()));
    }
}
