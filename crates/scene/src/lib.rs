//! Synthetic game workloads for the DTexL GPU simulator.
//!
//! The paper evaluates DTexL on GLES traces of ten commercial Android
//! games (Table I). Those traces are proprietary, so this crate builds
//! the closest synthetic equivalents: for each game, a deterministic
//! generator that produces a [`Scene`] (vertex buffers, textures, draw
//! commands) whose *characteristics* match the paper's description:
//!
//! * **texture footprint** — total mip-chain bytes per Table I
//!   (0.2 MiB for SWa up to 6.8 MiB for RoK);
//! * **2D vs 3D** — 2D games are layered orthographic sprites, 3D games
//!   are perspective meshes (terrain strips, boxes, billboards);
//! * **overdraw clustering** — depth complexity concentrates in
//!   horizontally-biased regions ("gravity forces objects to be more
//!   horizontally shaped", §V-A), which is what makes coarse-grained
//!   quad grouping load-imbalanced;
//! * **shader heterogeneity** — draws carry different
//!   [`ShaderProfile`]s (ALU length, texture lookups), so quads of the
//!   same primitive have correlated workload intensity (Fig. 9).
//!
//! All generation is seeded per game: a scene is a pure function of
//! `(game, resolution, frame)`.
//!
//! # Examples
//!
//! ```
//! use dtexl_scene::{Game, SceneSpec};
//!
//! let scene = Game::GravityTetris.scene(&SceneSpec::new(256, 256, 0));
//! assert!(!scene.draws.is_empty());
//! // Footprint lands near Table I's 0.7 MiB:
//! let mib = scene.texture_footprint_bytes() as f64 / (1024.0 * 1024.0);
//! assert!((0.3..1.4).contains(&mib));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod games;
mod gen;
mod scene;
mod shader;

pub use games::{Game, GameInfo, Genre};
pub use scene::{DepthMode, DrawCommand, Scene, SceneSpec, Vertex, VERTEX_STRIDE};
pub use shader::ShaderProfile;

/// Base byte address of texture allocations.
pub const TEXTURE_BASE_ADDR: u64 = 0x1000_0000;
/// Base byte address of the shared vertex buffer.
pub const VERTEX_BASE_ADDR: u64 = 0x2000_0000;
/// Base byte address of the frame buffer in main memory.
pub const FRAMEBUFFER_BASE_ADDR: u64 = 0x3000_0000;
/// Base byte address of the parameter buffer (tiling engine).
pub const PARAMETER_BUFFER_BASE_ADDR: u64 = 0x4000_0000;
