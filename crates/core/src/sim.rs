//! One-call simulation facade.

use dtexl_mem::energy::{EnergyBreakdown, EnergyModel};
use dtexl_pipeline::{BarrierMode, FrameResult, FrameSim, PipelineConfig};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::ScheduleConfig;
use serde::{Deserialize, Serialize};

/// The modeled GPU clock (Table II: 600 MHz).
pub const CLOCK_HZ: f64 = 600.0e6;

/// Everything needed to simulate one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Which benchmark to run.
    pub game: Game,
    /// Screen width in pixels.
    pub width: u32,
    /// Screen height in pixels.
    pub height: u32,
    /// Frame number (animation phase).
    pub frame: u32,
    /// Quad grouping / tile order / subtile assignment.
    pub schedule: ScheduleConfig,
    /// Hardware parameters.
    pub pipeline: PipelineConfig,
    /// Barrier organization used for the reported frame time.
    pub barrier: BarrierMode,
}

impl SimConfig {
    /// The paper's baseline: FG-xshift2, Z-order, coupled barriers, at
    /// Table II resolution.
    #[must_use]
    pub fn baseline(game: Game) -> Self {
        Self {
            game,
            width: 1960,
            height: 768,
            frame: 0,
            schedule: ScheduleConfig::baseline(),
            pipeline: PipelineConfig::default(),
            barrier: BarrierMode::Coupled,
        }
    }

    /// Full DTexL: CG-square + Hilbert + flp2 with decoupled barriers.
    #[must_use]
    pub fn dtexl(game: Game) -> Self {
        Self {
            schedule: ScheduleConfig::dtexl(),
            barrier: BarrierMode::Decoupled,
            ..Self::baseline(game)
        }
    }

    /// Same configuration at a different resolution (useful for quick
    /// runs and tests).
    #[must_use]
    pub fn with_resolution(mut self, width: u32, height: u32) -> Self {
        self.width = width;
        self.height = height;
        self
    }
}

/// Headline results of one simulated frame, plus the raw
/// [`FrameResult`] for deeper analysis.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The configuration simulated.
    pub config: SimConfig,
    /// Total execution cycles under `config.barrier`.
    pub cycles: u64,
    /// Frames per second at [`CLOCK_HZ`].
    pub fps: f64,
    /// Total L2 accesses.
    pub l2_accesses: u64,
    /// Quads shaded.
    pub quads_shaded: u64,
    /// Energy breakdown for the frame.
    pub energy: EnergyBreakdown,
    /// The full per-tile result.
    pub frame: FrameResult,
}

/// Aggregate results over a sequence of animated frames.
///
/// The paper's FPS numbers average over gameplay; this is the
/// equivalent for the synthetic stand-ins, whose camera/sprites move
/// with the frame index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceReport {
    /// Per-frame cycle counts.
    pub cycles: Vec<u64>,
    /// Per-frame L2 access counts.
    pub l2_accesses: Vec<u64>,
    /// Per-frame energy in picojoules.
    pub energy_pj: Vec<f64>,
}

impl SequenceReport {
    /// Number of frames simulated.
    #[must_use]
    pub fn frames(&self) -> usize {
        self.cycles.len()
    }

    /// Average frames per second at [`CLOCK_HZ`] (harmonic over
    /// per-frame times, i.e. total frames / total time).
    #[must_use]
    pub fn mean_fps(&self) -> f64 {
        let total: u64 = self.cycles.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.frames() as f64 * CLOCK_HZ / total as f64
        }
    }

    /// Mean L2 accesses per frame.
    #[must_use]
    pub fn mean_l2_accesses(&self) -> f64 {
        if self.l2_accesses.is_empty() {
            0.0
        } else {
            self.l2_accesses.iter().sum::<u64>() as f64 / self.frames() as f64
        }
    }

    /// Total energy over the sequence, in millijoules.
    #[must_use]
    pub fn total_energy_mj(&self) -> f64 {
        self.energy_pj.iter().sum::<f64>() * 1e-9
    }
}

/// The simulator facade.
#[derive(Debug)]
pub struct Simulator;

impl Simulator {
    /// Simulate one frame.
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations (zero resolution, inconsistent
    /// pipeline parameters).
    #[must_use]
    pub fn simulate(config: &SimConfig) -> SimReport {
        let scene = config
            .game
            .scene(&SceneSpec::new(config.width, config.height, config.frame));
        let frame = FrameSim::run_with_resolution(
            &scene,
            &config.schedule,
            &config.pipeline,
            config.width,
            config.height,
        );
        let cycles = frame.total_cycles(config.barrier);
        let events = frame.energy_events(config.barrier);
        let energy = EnergyModel::default().evaluate(&events);
        SimReport {
            config: *config,
            cycles,
            fps: CLOCK_HZ / cycles as f64,
            l2_accesses: frame.total_l2_accesses(),
            quads_shaded: frame.total_quads_shaded(),
            energy,
            frame,
        }
    }
}

impl Simulator {
    /// Simulate one frame of a *user-provided* scene (instead of a
    /// Table I generator) under `config`'s schedule and hardware. The
    /// `game` field of `config` is ignored.
    ///
    /// # Panics
    ///
    /// Panics if the scene fails [`dtexl_scene::Scene::validate`] or the
    /// configuration is invalid.
    #[must_use]
    pub fn simulate_scene(scene: &dtexl_scene::Scene, config: &SimConfig) -> SimReport {
        let frame = FrameSim::run_with_resolution(
            scene,
            &config.schedule,
            &config.pipeline,
            config.width,
            config.height,
        );
        let cycles = frame.total_cycles(config.barrier);
        let events = frame.energy_events(config.barrier);
        let energy = EnergyModel::default().evaluate(&events);
        SimReport {
            config: *config,
            cycles,
            fps: CLOCK_HZ / cycles as f64,
            l2_accesses: frame.total_l2_accesses(),
            quads_shaded: frame.total_quads_shaded(),
            energy,
            frame,
        }
    }

    /// Simulate `num_frames` consecutive frames of `config`'s game
    /// (frame indices `config.frame ..`), returning per-frame and
    /// aggregate metrics.
    ///
    /// With `config.pipeline.threads > 1` the frames are fanned out
    /// over that many worker threads (each frame then runs its pipeline
    /// serially, so the machine is not oversubscribed). Frames are
    /// independent and the report is assembled in frame order, so the
    /// result is identical to the serial loop.
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations, like [`simulate`](Self::simulate).
    #[must_use]
    pub fn simulate_sequence(config: &SimConfig, num_frames: u32) -> SequenceReport {
        let workers = config.pipeline.threads.min(num_frames as usize);
        let mut report = SequenceReport {
            cycles: Vec::with_capacity(num_frames as usize),
            l2_accesses: Vec::with_capacity(num_frames as usize),
            energy_pj: Vec::with_capacity(num_frames as usize),
        };
        if workers <= 1 {
            for f in 0..num_frames {
                let frame_cfg = SimConfig {
                    frame: config.frame + f,
                    ..*config
                };
                let r = Self::simulate(&frame_cfg);
                report.cycles.push(r.cycles);
                report.l2_accesses.push(r.l2_accesses);
                report.energy_pj.push(r.energy.total_pj());
            }
            return report;
        }

        let mut inner = *config;
        inner.pipeline.threads = 1;
        let next = std::sync::atomic::AtomicU32::new(0);
        let slots: Vec<parking_lot::Mutex<Option<(u64, u64, f64)>>> = (0..num_frames)
            .map(|_| parking_lot::Mutex::new(None))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let f = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if f >= num_frames {
                        break;
                    }
                    let frame_cfg = SimConfig {
                        frame: inner.frame + f,
                        ..inner
                    };
                    let r = Self::simulate(&frame_cfg);
                    *slots[f as usize].lock() =
                        Some((r.cycles, r.l2_accesses, r.energy.total_pj()));
                });
            }
        });
        for slot in slots {
            // lint: allow(no-panic) -- the scoped pool joins before this loop, so every slot was filled exactly once
            let (cycles, l2, energy) = slot.into_inner().expect("every frame simulated");
            report.cycles.push(cycles);
            report.l2_accesses.push(l2);
            report.energy_pj.push(energy);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mut c: SimConfig) -> SimReport {
        c.width = 256;
        c.height = 128;
        Simulator::simulate(&c)
    }

    #[test]
    fn baseline_and_dtexl_run() {
        let b = quick(SimConfig::baseline(Game::GravityTetris));
        let d = quick(SimConfig::dtexl(Game::GravityTetris));
        assert!(b.cycles > 0 && d.cycles > 0);
        assert!(d.l2_accesses < b.l2_accesses);
        assert!(b.fps > 0.0);
        assert!(b.energy.total_pj() > 0.0);
    }

    #[test]
    fn report_consistent_with_frame() {
        let r = quick(SimConfig::baseline(Game::CandyCrush));
        assert_eq!(r.cycles, r.frame.total_cycles(BarrierMode::Coupled));
        assert_eq!(r.l2_accesses, r.frame.total_l2_accesses());
        assert_eq!(r.quads_shaded, r.frame.total_quads_shaded());
    }

    #[test]
    fn custom_scenes_run_through_the_facade() {
        use dtexl_scene::SceneSpec;
        let scene = Game::Maze.scene(&SceneSpec::new(128, 64, 0));
        let cfg = SimConfig::baseline(Game::Maze).with_resolution(128, 64);
        let via_scene = Simulator::simulate_scene(&scene, &cfg);
        let via_game = Simulator::simulate(&cfg);
        assert_eq!(via_scene.cycles, via_game.cycles, "same scene, same result");
    }

    #[test]
    fn sequences_aggregate_and_vary() {
        let cfg = SimConfig::baseline(Game::SonicDash).with_resolution(256, 128);
        let seq = Simulator::simulate_sequence(&cfg, 3);
        assert_eq!(seq.frames(), 3);
        assert!(seq.mean_fps() > 0.0);
        assert!(seq.mean_l2_accesses() > 0.0);
        assert!(seq.total_energy_mj() > 0.0);
        // Animation makes frames differ.
        let distinct: std::collections::HashSet<_> = seq.cycles.iter().collect();
        assert!(distinct.len() > 1, "animated frames should differ");
        // The sequence's first frame equals a single-frame run.
        let single = Simulator::simulate(&cfg);
        assert_eq!(seq.cycles[0], single.cycles);
    }

    #[test]
    fn parallel_sequences_match_serial() {
        let serial = SimConfig::baseline(Game::SonicDash).with_resolution(256, 128);
        let mut threaded = serial;
        threaded.pipeline.threads = 4;
        let a = Simulator::simulate_sequence(&serial, 5);
        let b = Simulator::simulate_sequence(&threaded, 5);
        assert_eq!(a, b, "frame fan-out must not change any metric");
    }

    #[test]
    fn empty_sequence() {
        let cfg = SimConfig::baseline(Game::ShootWar).with_resolution(128, 64);
        let seq = Simulator::simulate_sequence(&cfg, 0);
        assert_eq!(seq.frames(), 0);
        assert_eq!(seq.mean_fps(), 0.0);
        assert_eq!(seq.mean_l2_accesses(), 0.0);
    }

    #[test]
    fn resolution_override() {
        let c = SimConfig::baseline(Game::ShootWar).with_resolution(128, 64);
        assert_eq!((c.width, c.height), (128, 64));
        let r = Simulator::simulate(&c);
        assert_eq!(r.frame.tiles.len(), 4 * 2);
    }
}
